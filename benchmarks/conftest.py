"""Benchmark-suite conftest: ensures this directory is importable so bench
modules can share DDL constants, and provides the paper environment."""

import pytest

from repro.devices.paper_example import build_paper_example


@pytest.fixture
def paper():
    return build_paper_example()
