"""Experiment X5 — steady-state tick cost: incremental vs naive engine,
and the row-vs-columnar backend sweep.

Part one (the point of the physical layer, :mod:`repro.exec`): on a
large, slowly changing environment the naive engine pays for the full
relation at every instant while the incremental engine pays only for the
churn.  A 10 000-tuple relation with 1% churn per instant is re-evaluated
through a selection + natural join + projection plan on both engines; the
measured per-tick speedup must be at least 5×.

Part two (the point of the columnar backend, :mod:`repro.exec.vectorized`):
once deltas are incremental, the floor is the per-row interpretation
itself.  A scan → select → join plan over an 8-attribute relation is
ticked on both backends at 10k/100k/1M rows, measuring

* the *cold* tick — the whole relation flows through the plan as one
  batch, exactly where batch evaluation (one compiled filter call per
  batch, key gathers without transposing, interned join probes) pays off;
  the columnar backend must be ≥5× faster at 100k rows and never slower
  at any size;
* the *steady* tick — 1% churn per instant; here the shared per-delta
  contract costs (journal fold, ``current`` maintenance, delta
  materialization) bound the ratio, so the columnar win is smaller; it
  is recorded, and the backend must again never be slower.

Results land in ``benchmarks/reports/tick_cost.txt`` /
``columnar_sweep.txt`` and, machine-readable, in ``BENCH_tick_cost.json``
at the repository root (the two tests merge into the one artifact).

Set ``BENCH_SMOKE=1`` to run a reduced configuration (CI smoke job): the
relations shrink, the sweep only runs its 10k point, and only the basic
speedups (incremental > 1.5×, columnar not slower than row) are asserted.
"""

import gc
import json
import os
from time import perf_counter

from repro.algebra import col, scan
from repro.algebra.context import EvaluationContext
from repro.bench.reporting import Report
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.exec.lowering import lower
from repro.model.attributes import Attribute
from repro.model.environment import PervasiveEnvironment
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

ROWS = 2_000 if SMOKE else 10_000
TICKS = 8 if SMOKE else 25
CHURN = 0.01
CATEGORIES = 50
MIN_SPEEDUP = 1.5 if SMOKE else 5.0


def _merge_artifact(update: dict) -> None:
    """Read-merge-write ``BENCH_tick_cost.json`` so the two benchmarks
    (engine comparison, backend sweep) share one artifact."""
    root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
    path = os.path.join(root, "BENCH_tick_cost.json")
    payload = {}
    if os.path.exists(path):
        with open(path) as f:
            payload = json.load(f)
    payload.update(update)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def items_schema():
    return ExtendedRelationSchema(
        "items",
        [
            Attribute("item", DataType.STRING),
            Attribute("category", DataType.STRING),
            Attribute("value", DataType.REAL),
        ],
    )


def categories_schema():
    return ExtendedRelationSchema(
        "categories",
        [
            Attribute("category", DataType.STRING),
            Attribute("label", DataType.STRING),
        ],
    )


def item_row(idx, instant=0):
    return (
        f"item{idx}",
        f"cat{idx % CATEGORIES}",
        float((idx + instant * 7) % 97),
    )


class Driver:
    """One engine's environment plus the deterministic churn script."""

    def __init__(self, engine):
        self.env = PervasiveEnvironment()
        self.items = XDRelation(items_schema())
        self.rows = {idx: item_row(idx) for idx in range(ROWS)}
        self.items.insert(self.rows.values(), instant=0)
        self.env.add_relation(self.items)
        categories = XDRelation(categories_schema())
        categories.insert(
            [(f"cat{c}", f"label{c}") for c in range(CATEGORIES)], instant=0
        )
        self.env.add_relation(categories)
        query = (
            scan(self.env, "items")
            .select(col("value").ge(5.0))
            .join(scan(self.env, "categories"))
            .project("item", "label")
            .query("tick-cost")
        )
        self.cq = ContinuousQuery(query, self.env, engine=engine)

    def tick(self, instant):
        """Churn 1% of the items, then evaluate; returns evaluation seconds."""
        batch = int(ROWS * CHURN)
        start = (instant - 1) * batch
        for offset in range(batch):
            idx = (start + offset) % ROWS
            replacement = item_row(idx, instant)
            if replacement != self.rows[idx]:
                self.items.delete([self.rows[idx]], instant=instant)
                self.items.insert([replacement], instant=instant)
                self.rows[idx] = replacement
        began = perf_counter()
        self.cq.evaluate_at(instant)
        return perf_counter() - began


def test_bench_tick_cost(benchmark):
    def run():
        drivers = {engine: Driver(engine) for engine in ("naive", "incremental")}
        seconds = {engine: 0.0 for engine in drivers}
        for engine, driver in drivers.items():
            driver.tick(1)  # warm-up: builds executor state / first result
            for instant in range(2, TICKS + 2):
                seconds[engine] += driver.tick(instant)
        # Both engines must still agree, or the speedup is meaningless.
        relations = {
            engine: driver.cq.last_result.relation.tuples
            for engine, driver in drivers.items()
        }
        assert relations["incremental"] == relations["naive"]
        return seconds

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = seconds["naive"] / seconds["incremental"]
    assert speedup >= MIN_SPEEDUP, (
        f"incremental engine only {speedup:.1f}× faster than naive "
        f"({ROWS} rows, {CHURN:.0%} churn, {TICKS} ticks)"
    )

    if not SMOKE:  # the committed artifact records the full configuration
        _merge_artifact(
            {
                "rows": ROWS,
                "churn": CHURN,
                "ticks": TICKS,
                "naive_seconds": round(seconds["naive"], 6),
                "incremental_seconds": round(seconds["incremental"], 6),
                "speedup": round(speedup, 2),
                "mode": "full",
            }
        )

    report = Report("tick_cost")
    report.table(
        ["engine", "total (s)", "per tick (ms)"],
        [
            [engine, f"{total:.4f}", f"{total / TICKS * 1000:.2f}"]
            for engine, total in seconds.items()
        ],
        title=(
            f"Steady-state tick cost: {ROWS} tuples, {CHURN:.0%} churn, "
            f"{TICKS} timed ticks"
        ),
    )
    report.add(f"Speedup (naive / incremental): {speedup:.1f}×")
    report.emit()


# ---------------------------------------------------------------------------
# Row-vs-columnar backend sweep (scan → select → join)
# ---------------------------------------------------------------------------

#: Sweep sizes; the ≥5× acceptance bar applies to the cold tick at 100k.
SWEEP_SIZES = [10_000] if SMOKE else [10_000, 100_000, 1_000_000]
SWEEP_TICKS = 6 if SMOKE else 8
SWEEP_CHURN = 0.01
#: Cold-tick timing rounds (min taken) per size; singletons keep 1M cheap.
SWEEP_ROUNDS = {10_000: 3, 100_000: 5, 1_000_000: 1}
#: Steady ticks are skipped above this size (cold is the 1M datapoint).
SWEEP_STEADY_MAX = 100_000
COLD_TARGET_ROWS = 100_000
COLD_TARGET = 5.0


def readings_schema():
    return ExtendedRelationSchema(
        "readings",
        [
            Attribute("device", DataType.STRING),
            Attribute("category", DataType.STRING),
            Attribute("zone", DataType.STRING),
            Attribute("flag", DataType.STRING),
            Attribute("value", DataType.REAL),
            Attribute("quality", DataType.REAL),
            Attribute("battery", DataType.REAL),
            Attribute("seq", DataType.INTEGER),
        ],
    )


def reading_row(idx, instant=0):
    return (
        f"dev{idx}",
        f"cat{idx % CATEGORIES}",
        f"z{idx % 7}",
        "ok",
        float((idx * 13 + instant * 7) % 97),
        float(idx % 10) / 10.0 + 0.05,
        float(idx % 5) + 1.0,
        idx,
    )


#: A dashboard-style conjunction: mostly-true guard terms first, the
#: selective threshold last — the interpreter walks the full AST per row
#: while the compiled filter evaluates twelve inline comparisons.
SWEEP_PREDICATE = (
    col("flag").ne("bad")
    & col("device").contains("dev")
    & col("zone").ne("z999")
    & col("quality").ge(0.01)
    & col("battery").gt(0.0)
    & col("seq").ge(0)
    & col("category").ne("catX")
    & col("quality").le(1.5)
    & col("battery").le(6.0)
    & col("zone").contains("z")
    & col("flag").eq("ok")
    & col("value").ge(90.0)
)


class SweepDriver:
    """One backend's environment, lowered plan and churn script."""

    def __init__(self, size, backend):
        self.size = size
        self.env = PervasiveEnvironment()
        self.readings = XDRelation(readings_schema())
        self.rows = {idx: reading_row(idx) for idx in range(size)}
        self.readings.insert(self.rows.values(), instant=0)
        self.env.add_relation(self.readings)
        categories = XDRelation(categories_schema())
        categories.insert(
            [(f"cat{c}", f"label{c}") for c in range(CATEGORIES)], instant=0
        )
        self.env.add_relation(categories)
        query = (
            scan(self.env, "readings")
            .select(SWEEP_PREDICATE)
            .join(scan(self.env, "categories"))
            .query("columnar-sweep")
        )
        self.root = lower(query.root, backend=backend)

    def tick(self, instant):
        """Advance the lowered plan one instant; returns seconds.

        Timing is at the executor level (``root.tick``) with the garbage
        collector paused, so the numbers isolate the backends' own work
        from engine-level result materialization and GC pauses."""
        ctx = EvaluationContext(
            self.env, instant, states={}, continuous=True
        )
        gc.disable()
        began = perf_counter()
        self.root.tick(ctx)
        elapsed = perf_counter() - began
        gc.enable()
        return elapsed

    def churn(self, instant):
        batch = int(self.size * SWEEP_CHURN)
        start = (instant - 1) * batch
        for offset in range(batch):
            idx = (start + offset) % self.size
            replacement = reading_row(idx, instant)
            if replacement != self.rows[idx]:
                self.readings.delete([self.rows[idx]], instant=instant)
                self.readings.insert([replacement], instant=instant)
                self.rows[idx] = replacement


def _cold_ms(size, backend):
    """Best-of-rounds first-tick cost: the whole relation as one batch."""
    best, result = None, None
    for _ in range(SWEEP_ROUNDS.get(size, 1)):
        gc.collect()
        driver = SweepDriver(size, backend)
        elapsed = driver.tick(1) * 1000
        best = elapsed if best is None else min(best, elapsed)
        result = frozenset(driver.root.current)
    return best, result


def _steady_ms(size, backend):
    """Per-tick cost under 1% churn, after a warm first tick."""
    gc.collect()
    driver = SweepDriver(size, backend)
    driver.churn(1)
    driver.tick(1)
    total = 0.0
    for instant in range(2, SWEEP_TICKS + 2):
        driver.churn(instant)
        total += driver.tick(instant)
    return total / SWEEP_TICKS * 1000, frozenset(driver.root.current)


def test_bench_columnar_sweep(benchmark):
    def run():
        points = []
        for size in SWEEP_SIZES:
            cold = {}
            for backend in ("row", "columnar"):
                cold[backend], result = _cold_ms(size, backend)
                cold[f"{backend}_result"] = result
            # Identical output, or the speedup is meaningless.
            assert cold["row_result"] == cold["columnar_result"]
            point = {
                "rows": size,
                "cold": {
                    "row_ms": round(cold["row"], 3),
                    "columnar_ms": round(cold["columnar"], 3),
                    "speedup": round(cold["row"] / cold["columnar"], 2),
                },
                "steady": None,
            }
            if size <= SWEEP_STEADY_MAX:
                steady = {}
                for backend in ("row", "columnar"):
                    steady[backend], result = _steady_ms(size, backend)
                    steady[f"{backend}_result"] = result
                assert steady["row_result"] == steady["columnar_result"]
                point["steady"] = {
                    "ticks": SWEEP_TICKS,
                    "churn": SWEEP_CHURN,
                    "row_ms_per_tick": round(steady["row"], 3),
                    "columnar_ms_per_tick": round(steady["columnar"], 3),
                    "speedup": round(steady["row"] / steady["columnar"], 2),
                }
            points.append(point)
        return points

    points = benchmark.pedantic(run, rounds=1, iterations=1)

    for point in points:
        # The columnar backend must never be slower than row (CI smoke
        # gate), cold or steady.
        assert point["cold"]["speedup"] >= 1.0, point
        if point["steady"] is not None:
            assert point["steady"]["speedup"] >= 1.0, point
        if not SMOKE and point["rows"] == COLD_TARGET_ROWS:
            assert point["cold"]["speedup"] >= COLD_TARGET, (
                f"columnar backend only {point['cold']['speedup']}× faster "
                f"than row on the cold {COLD_TARGET_ROWS}-row batch"
            )

    if not SMOKE:
        _merge_artifact(
            {
                "columnar_sweep": {
                    "plan": "scan(readings) . select(12-term) . join(categories)",
                    "predicate_terms": 12,
                    "schema_width": 8,
                    "points": points,
                }
            }
        )

    report = Report("columnar_sweep")
    rows = []
    for point in points:
        cold = point["cold"]
        rows.append(
            [
                f"{point['rows']:,}",
                "cold",
                f"{cold['row_ms']:.1f}",
                f"{cold['columnar_ms']:.1f}",
                f"{cold['speedup']:.2f}×",
            ]
        )
        if point["steady"] is not None:
            steady = point["steady"]
            rows.append(
                [
                    f"{point['rows']:,}",
                    "steady",
                    f"{steady['row_ms_per_tick']:.2f}",
                    f"{steady['columnar_ms_per_tick']:.2f}",
                    f"{steady['speedup']:.2f}×",
                ]
            )
    report.table(
        ["rows", "tick", "row (ms)", "columnar (ms)", "speedup"],
        rows,
        title=(
            "Row vs columnar backend: scan → select(12-term) → join, "
            f"cold batch and {SWEEP_CHURN:.0%}-churn steady ticks"
        ),
    )
    report.add(
        "Cold ticks push the whole relation through the compiled batch "
        "pipeline; steady ticks are bounded by shared per-delta contract "
        "costs, so the columnar margin is structurally smaller there."
    )
    report.emit()
