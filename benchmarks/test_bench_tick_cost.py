"""Experiment X5 — steady-state tick cost: incremental vs naive engine.

The point of the physical layer (:mod:`repro.exec`): on a large, slowly
changing environment the naive engine pays for the full relation at every
instant while the incremental engine pays only for the churn.  A
10 000-tuple relation with 1% churn per instant is re-evaluated through a
selection + natural join + projection plan on both engines; the measured
per-tick speedup must be at least 5×.

Results land in ``benchmarks/reports/tick_cost.txt`` and, machine-readable,
in ``BENCH_tick_cost.json`` at the repository root.

Set ``BENCH_SMOKE=1`` to run a reduced configuration (CI smoke job): the
relation shrinks and only a basic speedup (> 1.5×) is asserted.
"""

import json
import os
from time import perf_counter

from repro.algebra import col, scan
from repro.bench.reporting import Report
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.model.attributes import Attribute
from repro.model.environment import PervasiveEnvironment
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

ROWS = 2_000 if SMOKE else 10_000
TICKS = 8 if SMOKE else 25
CHURN = 0.01
CATEGORIES = 50
MIN_SPEEDUP = 1.5 if SMOKE else 5.0


def items_schema():
    return ExtendedRelationSchema(
        "items",
        [
            Attribute("item", DataType.STRING),
            Attribute("category", DataType.STRING),
            Attribute("value", DataType.REAL),
        ],
    )


def categories_schema():
    return ExtendedRelationSchema(
        "categories",
        [
            Attribute("category", DataType.STRING),
            Attribute("label", DataType.STRING),
        ],
    )


def item_row(idx, instant=0):
    return (
        f"item{idx}",
        f"cat{idx % CATEGORIES}",
        float((idx + instant * 7) % 97),
    )


class Driver:
    """One engine's environment plus the deterministic churn script."""

    def __init__(self, engine):
        self.env = PervasiveEnvironment()
        self.items = XDRelation(items_schema())
        self.rows = {idx: item_row(idx) for idx in range(ROWS)}
        self.items.insert(self.rows.values(), instant=0)
        self.env.add_relation(self.items)
        categories = XDRelation(categories_schema())
        categories.insert(
            [(f"cat{c}", f"label{c}") for c in range(CATEGORIES)], instant=0
        )
        self.env.add_relation(categories)
        query = (
            scan(self.env, "items")
            .select(col("value").ge(5.0))
            .join(scan(self.env, "categories"))
            .project("item", "label")
            .query("tick-cost")
        )
        self.cq = ContinuousQuery(query, self.env, engine=engine)

    def tick(self, instant):
        """Churn 1% of the items, then evaluate; returns evaluation seconds."""
        batch = int(ROWS * CHURN)
        start = (instant - 1) * batch
        for offset in range(batch):
            idx = (start + offset) % ROWS
            replacement = item_row(idx, instant)
            if replacement != self.rows[idx]:
                self.items.delete([self.rows[idx]], instant=instant)
                self.items.insert([replacement], instant=instant)
                self.rows[idx] = replacement
        began = perf_counter()
        self.cq.evaluate_at(instant)
        return perf_counter() - began


def test_bench_tick_cost(benchmark):
    def run():
        drivers = {engine: Driver(engine) for engine in ("naive", "incremental")}
        seconds = {engine: 0.0 for engine in drivers}
        for engine, driver in drivers.items():
            driver.tick(1)  # warm-up: builds executor state / first result
            for instant in range(2, TICKS + 2):
                seconds[engine] += driver.tick(instant)
        # Both engines must still agree, or the speedup is meaningless.
        relations = {
            engine: driver.cq.last_result.relation.tuples
            for engine, driver in drivers.items()
        }
        assert relations["incremental"] == relations["naive"]
        return seconds

    seconds = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = seconds["naive"] / seconds["incremental"]
    assert speedup >= MIN_SPEEDUP, (
        f"incremental engine only {speedup:.1f}× faster than naive "
        f"({ROWS} rows, {CHURN:.0%} churn, {TICKS} ticks)"
    )

    payload = {
        "rows": ROWS,
        "churn": CHURN,
        "ticks": TICKS,
        "naive_seconds": round(seconds["naive"], 6),
        "incremental_seconds": round(seconds["incremental"], 6),
        "speedup": round(speedup, 2),
        "mode": "smoke" if SMOKE else "full",
    }
    if not SMOKE:  # the committed artifact records the full configuration
        root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
        with open(os.path.join(root, "BENCH_tick_cost.json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    report = Report("tick_cost")
    report.table(
        ["engine", "total (s)", "per tick (ms)"],
        [
            [engine, f"{total:.4f}", f"{total / TICKS * 1000:.2f}"]
            for engine, total in seconds.items()
        ],
        title=(
            f"Steady-state tick cost: {ROWS} tuples, {CHURN:.0%} churn, "
            f"{TICKS} timed ticks"
        ),
    )
    report.add(f"Speedup (naive / incremental): {speedup:.1f}×")
    report.emit()
