"""City-scale scenario benchmark: devices × queries × churn sweep.

Generated cities (:mod:`repro.city`) on the real engines, measured as
steady-state seconds per tick — every tick polls the whole fleet through
the service registry (four telemetry feeders), maintains the standing
query pack and pays the fault machinery where scripted.  Four axes, all
recorded in ``BENCH_city.json``:

* **scale** — device count sweep on the incremental engine (the full
  configuration tops out above 2000 devices);
* **row vs columnar** — the same mid-size city under the shared engine's
  two physical delta backends;
* **1 vs 8 zones** — the same fleet on a single-shard federation vs
  zones scattered over eight shards (partition pruning on the per-zone
  pinned queries);
* **± cascade** — the scripted substation crash plus relay flicker vs a
  quiet grid, with the zero-missed-readings invariant checked on every
  tick of the cascade run;
* **churn** — meter failure-rate sweep at mid scale (quarantine and
  release machinery in the loop).

Set ``BENCH_SMOKE=1`` for the reduced CI configuration.
"""

import json
import os
import platform
from time import perf_counter

from repro.bench.reporting import Report
from repro.city.cascade import CascadeSpec
from repro.city.config import CityConfig
from repro.city.scenario import build_city

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

TICKS = 4 if SMOKE else 8
#: (meters, relays, stations, spares, weather) per zone, zone count.
SCALES = (
    [(4, 1, 1, 1, 1, 2), (12, 2, 1, 1, 1, 2)]
    if SMOKE
    else [(10, 2, 1, 1, 1, 2), (60, 4, 2, 1, 1, 4), (240, 8, 2, 1, 1, 8)]
)
MID = SCALES[-2] if len(SCALES) > 1 else SCALES[0]
CHURN_RATES = (0.0, 0.05) if SMOKE else (0.0, 0.05, 0.2)
CASCADE = CascadeSpec(zone=0, crash_at=3, flicker_ticks=3, stagger=1)


def city_config(scale, zones=None, churn=0.0, cascade=None, name="bench"):
    meters, relays, stations, spares, weather, zone_count = scale
    return CityConfig(
        name=name,
        seed=f"bench-{name}",
        zones=zones if zones is not None else zone_count,
        meters_per_zone=meters,
        relays_per_zone=relays,
        stations_per_zone=stations,
        spare_stations_per_zone=spares,
        weather_per_zone=weather,
        alert_sinks=1,
        churn_rate=churn,
        cascade=cascade,
    )


def timed_run(config, engine="incremental", backend="row", check_health=False):
    """Build, one warm tick, then TICKS timed ticks.  Returns seconds
    spent inside the timed ticks (and asserts the zero-missed-readings
    invariant when asked)."""
    scenario = build_city(config, engine=engine, backend=backend)
    stations = len(scenario.topology.stations)
    scenario.run(1)
    seconds = 0.0
    for _ in range(TICKS):
        began = perf_counter()
        scenario.run(1)
        seconds += perf_counter() - began
        if check_health:
            health = scenario.queries["station-health"].last_result.relation
            assert len(health.tuples) == stations, (
                f"missed station reading at instant {scenario.clock.now}"
            )
    shutdown = getattr(scenario.pems, "shutdown", None)
    if shutdown is not None:
        shutdown()
    return scenario, seconds


def test_bench_city(benchmark):
    def run():
        payload = {}

        scales = []
        for scale in SCALES:
            config = city_config(scale, name=f"scale{scale[0]}")
            scenario, seconds = timed_run(config)
            scales.append(
                {
                    "devices": config.device_count,
                    "zones": len(config.zones),
                    "queries": len(scenario.queries),
                    "seconds_per_tick": round(seconds / TICKS, 6),
                }
            )
        payload["scales"] = scales

        mid = city_config(MID, name="mid")
        _, row_seconds = timed_run(mid, engine="shared", backend="row")
        _, col_seconds = timed_run(mid, engine="shared", backend="columnar")
        payload["row_vs_columnar"] = {
            "devices": mid.device_count,
            "row_seconds_per_tick": round(row_seconds / TICKS, 6),
            "columnar_seconds_per_tick": round(col_seconds / TICKS, 6),
            "columnar_speedup": round(row_seconds / col_seconds, 2),
        }

        # Same total fleet, two shardings: everything in one zone vs the
        # same per-zone mix spread over eight.
        meters, relays, stations, spares, weather, _ = MID
        one = city_config(
            (8 * meters, 8 * relays, 8 * stations, 8 * spares, 8 * weather, 1),
            name="onezone",
        )
        eight = city_config(
            (meters, relays, stations, spares, weather, 8), name="eightzone"
        )
        assert one.device_count == eight.device_count
        _, one_seconds = timed_run(one, engine="federated")
        _, eight_seconds = timed_run(eight, engine="federated")
        payload["zones_1_vs_8"] = {
            "devices": one.device_count,
            "one_zone_seconds_per_tick": round(one_seconds / TICKS, 6),
            "eight_zone_seconds_per_tick": round(eight_seconds / TICKS, 6),
        }

        quiet = city_config(MID, name="quiet")
        stormy = city_config(MID, cascade=CASCADE, name="stormy")
        _, quiet_seconds = timed_run(quiet)
        cascade_scenario, stormy_seconds = timed_run(stormy, check_health=True)
        report = cascade_scenario.pems.erm.substitution_report()
        assert report["bindings"], "the benchmark cascade never engaged"
        payload["cascade"] = {
            "devices": stormy.device_count,
            "quiet_seconds_per_tick": round(quiet_seconds / TICKS, 6),
            "cascade_seconds_per_tick": round(stormy_seconds / TICKS, 6),
            "fault_overhead": round(stormy_seconds / quiet_seconds - 1.0, 4),
            "missed_station_readings": 0,
            "rebinds": len(report["history"]),
        }

        churn_axis = []
        for rate in CHURN_RATES:
            config = city_config(MID, churn=rate, name=f"churn{rate}")
            _, seconds = timed_run(config)
            churn_axis.append(
                {
                    "churn_rate": rate,
                    "seconds_per_tick": round(seconds / TICKS, 6),
                }
            )
        payload["churn"] = churn_axis
        return payload

    payload = benchmark.pedantic(run, rounds=1, iterations=1)
    top = payload["scales"][-1]
    if not SMOKE:
        assert top["devices"] >= 2000, top

    payload.update(
        {
            "ticks": TICKS,
            "cpus": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "mode": "smoke" if SMOKE else "full",
        }
    )
    if not SMOKE:  # the committed artifact records the full configuration
        root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
        with open(os.path.join(root, "BENCH_city.json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    report = Report("city")
    report.table(
        ["devices", "zones", "queries", "per tick (ms)"],
        [
            [
                str(s["devices"]),
                str(s["zones"]),
                str(s["queries"]),
                f"{s['seconds_per_tick'] * 1000:.2f}",
            ]
            for s in payload["scales"]
        ],
        title=f"City scale sweep ({TICKS} timed ticks, incremental engine)",
    )
    rvc = payload["row_vs_columnar"]
    report.add(
        f"Row vs columnar at {rvc['devices']} devices: "
        f"{rvc['row_seconds_per_tick'] * 1000:.2f}ms vs "
        f"{rvc['columnar_seconds_per_tick'] * 1000:.2f}ms per tick "
        f"({rvc['columnar_speedup']}×)"
    )
    z18 = payload["zones_1_vs_8"]
    report.add(
        f"Federation 1 vs 8 zones ({z18['devices']} devices): "
        f"{z18['one_zone_seconds_per_tick'] * 1000:.2f}ms vs "
        f"{z18['eight_zone_seconds_per_tick'] * 1000:.2f}ms per tick"
    )
    cascade = payload["cascade"]
    report.add(
        f"Cascade overhead at {cascade['devices']} devices: "
        f"{cascade['fault_overhead']:+.1%} per tick, "
        f"{cascade['rebinds']} rebind(s), 0 missed station readings"
    )
    report.table(
        ["churn", "per tick (ms)"],
        [
            [f"{c['churn_rate']:.2f}", f"{c['seconds_per_tick'] * 1000:.2f}"]
            for c in payload["churn"]
        ],
        title="Meter churn sweep (mid scale)",
    )
    report.emit()
