"""Experiment X4 — streaming binding patterns (β∞, the §7 future work).

Compares the two ways of producing the ``temperatures`` stream:

* **device feeder** (the paper's §5.2 setup, and our scenario default):
  an out-of-band process polls the sensors each tick and inserts into a
  journaled stream relation;
* **declarative β∞**: ``W[1](β∞_getTemperature(sensors))`` — the stream is
  a query over the discovery-maintained sensors table, with no feeder.

Both must produce the same per-instant readings; the bench measures the
per-tick cost of each and shows that β∞ follows discovery automatically.
"""

import pytest

from repro.algebra import col, scan
from repro.bench.reporting import Report
from repro.continuous.continuous_query import ContinuousQuery
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.devices.scenario import sensors_schema, temperatures_schema
from repro.devices.sensors import SensorStreamFeeder, TemperatureSensor
from repro.pems.pems import PEMS

SENSORS = 20


def build(declarative: bool):
    pems = PEMS()
    for prototype in STANDARD_PROTOTYPES:
        pems.environment.declare_prototype(prototype)
    pems.tables.create_relation(sensors_schema(with_timestamp=True))
    field = pems.create_local_erm("field")
    for i in range(SENSORS):
        field.register(
            TemperatureSensor(f"sensor{i:02d}", f"room{i % 4}", 20.0).as_service()
        )
    pems.queries.register_discovery("getTemperature", "sensors", "sensor")
    if declarative:
        stream_query = (
            scan(pems.environment, "sensors")
            .invoke_stream("getTemperature", timestamp="at")
            .window(1)
            .query("readings")
        )
        cq = pems.queries.register_continuous(stream_query)
        return pems, cq
    pems.tables.create_relation(temperatures_schema(), infinite=True)
    pems.add_stream_source(
        SensorStreamFeeder(
            pems.environment.registry,
            lambda rows: pems.tables.insert("temperatures", rows),
        )
    )
    windowed = (
        scan(pems.environment, "temperatures").window(1).query("readings")
    )
    cq = pems.queries.register_continuous(windowed)
    return pems, cq


@pytest.mark.parametrize("mode", ["feeder", "declarative"])
def test_bench_x4_stream_production(benchmark, mode):
    pems, cq = build(declarative=(mode == "declarative"))
    pems.run(2)  # warm up

    benchmark(pems.tick)
    assert cq.last_result is not None
    assert len(cq.last_result.relation) == SENSORS


def test_bench_x4_equivalent_readings(benchmark):
    """Same sensors, same instants → identical readings on both paths."""

    def compare():
        feeder_pems, feeder_cq = build(declarative=False)
        declarative_pems, declarative_cq = build(declarative=True)
        mismatches = 0
        for _ in range(10):
            feeder_pems.tick()
            declarative_pems.tick()
            feeder_rows = {
                (m["sensor"], m["location"], m["temperature"])
                for m in feeder_cq.last_result.relation.to_mappings()
            }
            declarative_rows = {
                (m["sensor"], m["location"], m["temperature"])
                for m in declarative_cq.last_result.relation.to_mappings()
            }
            if feeder_rows != declarative_rows:
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert mismatches == 0


def test_bench_x4_follows_discovery(benchmark):
    """β∞ picks up hot-plugged and crashed sensors with no extra plumbing."""

    def run():
        pems, cq = build(declarative=True)
        pems.run(2)
        counts = [len(cq.last_result.relation)]
        pems.create_local_erm("field").register(
            TemperatureSensor("sensor99", "room9").as_service()
        )
        pems.run(1)
        counts.append(len(cq.last_result.relation))
        pems.create_local_erm("field").deregister("sensor99")
        pems.run(1)
        counts.append(len(cq.last_result.relation))
        return counts

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counts == [SENSORS, SENSORS + 1, SENSORS]

    report = Report("x4_stream_binding")
    report.table(
        ["phase", "readings per instant"],
        [
            ["steady state", counts[0]],
            ["after hot-plugging sensor99", counts[1]],
            ["after sensor99 leaves", counts[2]],
        ],
        title="W[1](β∞ getTemperature(sensors)) follows service discovery",
    )
    report.add(
        "The declarative stream needs no feeder process: the §7 streaming\n"
        "binding pattern makes service-provided streams first-class in the\n"
        "algebra, and the discovery query keeps its operand table current."
    )
    report.emit()
