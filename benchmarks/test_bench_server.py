"""Subscription-server fan-out benchmark: thousands of mixed-speed clients.

One ``SubscriptionServer`` over the shared-engine PEMS, a bank of
distinct value-filtered queries, and ≥1000 in-process subscribers split
into speed classes — *fast* consumers drain their delivery queue every
instant, *medium* every 4th, *slow* every 16th (past the queue depth,
so every slow client exercises coalesce-on-overflow).  Subscribers are
in-process (``FakeSession`` + direct queue drains) rather than sockets:
that keeps the drain schedule deterministic and measures the server's
own costs — tick + fan-out on the clock thread, queue merge on
overflow — instead of loopback TCP.

Measured, into ``BENCH_server.json`` / ``benchmarks/reports/server.txt``:

* per-tick evaluation + fan-out cost with the full subscriber load,
* per-client delivery latency p50/p99 (publish → drain wall time),
  aggregated per speed class,
* coalesce/drop counts per class (slow > 0, fast == 0 by construction).

Every replica is replayed against the churn formula at the end — a
wrong state anywhere fails the bench.  ``BENCH_SMOKE=1`` runs the
reduced CI configuration.
"""

import asyncio
import json
import os
import platform
from time import perf_counter

from repro.bench.reporting import Report
from repro.server import SubscriptionServer

from tests.server.scenario import Churn, make_pems

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

SUBSCRIBERS = 160 if SMOKE else 1200
TICKS = 12 if SMOKE else 48
DEVICES = 64
QUEUE_DEPTH = 8

#: Speed classes: (name, drain cadence in instants, weight out of 10).
#: The slow cadence exceeds QUEUE_DEPTH, so slow queues must overflow
#: and coalesce between drains; fast and medium never can.
SPEED_CLASSES = (("fast", 1, 5), ("medium", 4, 3), ("slow", 16, 2))

#: Distinct continuous queries the subscribers share (4 registrations
#: total on the engine regardless of subscriber count).
THRESHOLDS = (25.0, 50.0, 75.0, None)


def query_sql(threshold):
    if threshold is None:
        return "SELECT device, value FROM readings"
    return f"SELECT device, value FROM readings WHERE value > {threshold}"


def expected(churn, threshold):
    return frozenset(
        (f"d{i}", v)
        for i, v in churn.state.items()
        if threshold is None or v > threshold
    )


class FakeSession:
    """The session shape ``SubscriptionServer.subscribe`` needs."""

    def __init__(self, client_id):
        self.client_id = client_id
        self.subscriptions = {}


class Client:
    """One simulated subscriber: a cadence, a replica, its latencies."""

    __slots__ = ("speed", "cadence", "threshold", "sub", "state", "latencies")

    def __init__(self, speed, cadence, threshold, sub):
        self.speed = speed
        self.cadence = cadence
        self.threshold = threshold
        self.sub = sub
        self.state = set()
        self.latencies = []


def percentile(samples, q):
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def build_clients(server):
    """Round-robin subscribers across speed classes (by weight) and the
    query bank; every (class, query) pair gets many clients."""
    weighted = [
        (name, cadence)
        for name, cadence, weight in SPEED_CLASSES
        for _ in range(weight)
    ]
    clients = []
    for i in range(SUBSCRIBERS):
        speed, cadence = weighted[i % len(weighted)]
        threshold = THRESHOLDS[i % len(THRESHOLDS)]
        sub = server.subscribe(
            FakeSession(f"bench{i}"), query_sql(threshold), f"b{i}"
        )
        clients.append(Client(speed, cadence, threshold, sub))
    return clients


async def drain(client):
    """Consume everything pending, checking the two-delta contract and
    recording publish→drain wall latency per entry."""
    queue = client.sub.queue
    while queue.lag:
        entry = await queue.get()
        client.latencies.append(perf_counter() - entry.published_at)
        state = client.state
        assert not entry.delta.inserted & state
        assert entry.delta.deleted <= state
        state -= entry.delta.deleted
        state |= entry.delta.inserted


def run():
    server = SubscriptionServer(make_pems(), queue_depth=QUEUE_DEPTH)
    churn = Churn(server.pems, devices=DEVICES)
    clients = build_clients(server)
    assert len(server.queries) == len(THRESHOLDS)
    tick_seconds = 0.0

    async def scenario():
        nonlocal tick_seconds
        for _ in range(TICKS):
            churn.step()
            began = perf_counter()
            instant = server.tick()
            tick_seconds += perf_counter() - began
            for client in clients:
                if instant % client.cadence == 0:
                    await drain(client)
        for client in clients:  # final catch-up drain
            await drain(client)
        await server.shutdown()

    asyncio.run(scenario())
    for client in clients:  # every replica replays to the true state
        assert client.state == expected(churn, client.threshold), (
            client.speed,
            client.threshold,
        )
    return server, clients, tick_seconds


def summarize(clients):
    """Per-speed-class aggregates of the per-client p50/p99 latencies."""
    classes = {}
    for name, cadence, _ in SPEED_CLASSES:
        members = [c for c in clients if c.speed == name]
        p50s = [percentile(c.latencies, 0.50) for c in members]
        p99s = [percentile(c.latencies, 0.99) for c in members]
        classes[name] = {
            "clients": len(members),
            "cadence": cadence,
            "delivered": sum(len(c.latencies) for c in members),
            "coalesced": sum(c.sub.queue.coalesced for c in members),
            "dropped": sum(c.sub.queue.dropped for c in members),
            "p50_ms_median": round(percentile(p50s, 0.50) * 1000, 3),
            "p99_ms_median": round(percentile(p99s, 0.50) * 1000, 3),
            "p99_ms_max": round(max(p99s) * 1000, 3),
        }
    return classes


def test_bench_server(benchmark):
    server, clients, tick_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    classes = summarize(clients)
    # Non-vacuous speed mix: slow consumers really overflowed and
    # coalesced; fast consumers never needed to.
    assert classes["slow"]["coalesced"] > 0
    assert classes["fast"]["coalesced"] == 0
    assert classes["fast"]["delivered"] > classes["slow"]["delivered"]
    delivered = sum(cls["delivered"] for cls in classes.values())
    every = [lat for c in clients for lat in c.latencies]

    payload = {
        "subscribers": SUBSCRIBERS,
        "queries": len(THRESHOLDS),
        "devices": DEVICES,
        "ticks": TICKS,
        "queue_depth": QUEUE_DEPTH,
        "tick_seconds": round(tick_seconds, 6),
        "tick_ms_mean": round(tick_seconds / TICKS * 1000, 3),
        "messages_delivered": delivered,
        "delivery_p50_ms": round(percentile(every, 0.50) * 1000, 3),
        "delivery_p99_ms": round(percentile(every, 0.99) * 1000, 3),
        "speed_classes": classes,
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "mode": "smoke" if SMOKE else "full",
    }
    if not SMOKE:  # the committed artifact records the full configuration
        root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
        with open(os.path.join(root, "BENCH_server.json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    report = Report("server")
    report.table(
        [
            "class",
            "clients",
            "cadence",
            "delivered",
            "coalesced",
            "dropped",
            "p50 (ms)",
            "p99 (ms)",
            "worst p99",
        ],
        [
            [
                name,
                cls["clients"],
                cls["cadence"],
                cls["delivered"],
                cls["coalesced"],
                cls["dropped"],
                f"{cls['p50_ms_median']:.3f}",
                f"{cls['p99_ms_median']:.3f}",
                f"{cls['p99_ms_max']:.3f}",
            ]
            for name, cls in classes.items()
        ],
        title=(
            f"Delivery by speed class: {SUBSCRIBERS} subscribers over "
            f"{len(THRESHOLDS)} shared queries, {TICKS} ticks, "
            f"queue depth {QUEUE_DEPTH}"
        ),
    )
    report.add(
        f"Tick + fan-out on the clock thread: {tick_seconds:.4f}s total, "
        f"{tick_seconds / TICKS * 1000:.2f} ms/tick with "
        f"{SUBSCRIBERS} subscriber queues"
    )
    report.add(
        f"Delivered {delivered} delta entries; overall delivery "
        f"p50 {percentile(every, 0.5) * 1000:.3f} ms / "
        f"p99 {percentile(every, 0.99) * 1000:.3f} ms "
        f"(slow-class latency is the drain cadence by design)"
    )
    report.emit()
