"""Experiment T3 — Table 3: the six operator families.

One benchmark per operator row of Table 3 (projection, selection,
renaming, natural join, assignment, invocation) plus the two continuous
operators of Section 4.2, each measured on a mid-sized relation; a summary
table restates the semantic contract checked by each micro-bench.
"""

import pytest

from repro.algebra import Query, col, relation, scan
from repro.bench.reporting import Report
from repro.bench.workloads import random_environment
from repro.continuous.xdrelation import XDRelation
from repro.devices.scenario import temperatures_schema
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation

ROWS = 2_000


@pytest.fixture(scope="module")
def env_handle():
    handle = random_environment(seed=1, num_items=ROWS)
    return handle


@pytest.fixture(scope="module")
def items(env_handle):
    return env_handle.environment.relation("items")


def evaluate(plan, env):
    return Query(plan.node).evaluate(env.environment).relation


def test_bench_t3a_projection(benchmark, env_handle, items):
    plan = relation(items).project("item", "category")
    result = benchmark(evaluate, plan, env_handle)
    assert result.schema.names == ("item", "category")


def test_bench_t3b_selection(benchmark, env_handle, items):
    plan = relation(items).select(col("category").eq("alpha") & col("size").lt(25))
    result = benchmark(evaluate, plan, env_handle)
    assert all(
        m["category"] == "alpha" and m["size"] < 25 for m in result.to_mappings()
    )


def test_bench_t3c_renaming(benchmark, env_handle, items):
    plan = relation(items).rename("size", "bulk")
    result = benchmark(evaluate, plan, env_handle)
    assert "bulk" in result.schema.real_names


def test_bench_t3d_natural_join(benchmark, env_handle, items):
    categories = env_handle.environment.relation("categories")
    plan = relation(items).join(relation(categories))
    result = benchmark(evaluate, plan, env_handle)
    assert len(result) == len(items)
    assert "priority" in result.schema.real_names


def test_bench_t3e_assignment(benchmark, env_handle, items):
    plan = relation(items).assign("done", True)
    result = benchmark(evaluate, plan, env_handle)
    assert "done" in result.schema.real_names


def test_bench_t3f_invocation(benchmark, env_handle, items):
    plan = relation(items).invoke("getScore")
    result = benchmark(evaluate, plan, env_handle)
    assert "score" in result.schema.real_names
    assert len(result) == len(items)


def _windowed_stream():
    env = PervasiveEnvironment()
    stream = XDRelation(temperatures_schema(), infinite=True)
    env.add_relation(stream)
    for instant in range(1, 101):
        stream.insert(
            [(f"s{i:03d}", "office", 20.0 + i, instant) for i in range(20)],
            instant=instant,
        )
    return env


def test_bench_t3_window(benchmark):
    env = _windowed_stream()
    query = scan(env, "temperatures").window(10).query()

    def run():
        return query.evaluate(env, instant=100).relation

    result = benchmark(run)
    assert len(result) == 200  # 10 instants x 20 sensors


def test_bench_t3_streaming(benchmark):
    env = _windowed_stream()
    query = scan(env, "temperatures").window(1).stream("insertion").query()

    def run():
        return query.evaluate(env, instant=100).relation

    result = benchmark(run)
    assert len(result) == 20


def test_bench_t3_summary(benchmark):
    report = Report("table3_operators")
    # Benchmark the cheapest pipeline stage (plan construction) so the
    # summary row appears alongside the operator rows in benchmark output.
    env_handle = random_environment(seed=1, num_items=100)
    items_relation = env_handle.environment.relation("items")
    benchmark(lambda: relation(items_relation).invoke("getScore").node.schema)
    report.table(
        ["op", "symbol", "semantic contract checked"],
        [
            ["projection", "π", "schema reduced; BPs dropped when attrs lost"],
            ["selection", "σ", "real-attribute formulas only; schema unchanged"],
            ["renaming", "ρ", "service attr follows; prototype attrs orphan BPs"],
            ["natural join", "⋈", "join on both-real attrs; implicit realization"],
            ["assignment", "α", "virtual→real with constant/attr value"],
            ["invocation", "β", "per-tuple invoke; 0..n outputs; actions if active"],
            ["window", "W[p]", "last p instants of insertions (finite output)"],
            ["streaming", "S[t]", "insertion/deletion/heartbeat deltas (stream)"],
        ],
        title=f"Table 3 operator matrix over {ROWS}-tuple operands",
    )
    report.emit()
