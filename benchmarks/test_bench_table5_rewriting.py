"""Experiment T5 / E7 — Table 5 rewriting rules and query equivalence.

Validates every rewriting rule against Definition 9 on randomized
environments, reproduces Example 7's verdicts (Q1 ≢ Q1', Q2 ≡ Q2'), and
measures what the rules buy: passive service invocations saved by the
selection-below-invocation pushdown as selectivity varies.
"""

from repro.algebra import Query, Selection, check_equivalence, col, scan
from repro.algebra.optimizer import _apply_everywhere
from repro.algebra.rewriting import DEFAULT_RULES, PUSHDOWN_RULES, rewrite_fixpoint
from repro.bench.reporting import Report
from repro.bench.workloads import build_surveillance_workload, random_environment
from repro.devices.paper_example import build_paper_example


def probe_plans(env):
    """Plans collectively exercising every rewrite rule."""
    return [
        # merge/push selections, projection/selection vs passive β
        scan(env, "items")
        .invoke("getScore")
        .select(col("category").ne("beta"))
        .select(col("size").lt(40))
        .project("item", "category", "size", "score")
        .query(),
        # assignment rules (α vs σ, π) + projection cascade
        scan(env, "items")
        .assign("done", True)
        .select(col("category").eq("alpha"))
        .project("item", "category", "size", "done")
        .project("item", "done")
        .query(),
        # join rules: σ/α/β pushed into the owning operand
        scan(env, "items")
        .invoke("getScore")
        .join(scan(env, "categories"))
        .select(col("priority").ge(2))
        .query(),
        scan(env, "items")
        .join(scan(env, "categories"))
        .assign("done", True)
        .query(),
        # reverse directions: α/β directly over σ; π directly over α/β
        scan(env, "items")
        .select(col("size").ge(10))
        .invoke("getScore")
        .project("item", "category", "score")
        .query(),
        scan(env, "items")
        .select(col("category").ne("gamma"))
        .assign("done", False)
        .project("item", "done")
        .query(),
        # passive β applied on top of a join (pushes into the owner side)
        scan(env, "items")
        .join(scan(env, "categories"))
        .invoke("getScore")
        .query(),
    ]


def validate_rules_on_random_envs(seeds=range(4)):
    """Apply every rule at every position of every probe plan on
    randomized environments; returns (rule name → validated applications)."""
    validated: dict[str, int] = {}
    for seed in seeds:
        handle = random_environment(seed)
        env = handle.environment
        for probe in probe_plans(env):
            for rule in DEFAULT_RULES:
                for root in _apply_everywhere(probe.root, rule.transform):
                    report = check_equivalence(probe, Query(root), env, instant=seed)
                    assert report.equivalent, rule.name
                    validated[rule.name] = validated.get(rule.name, 0) + 1
    return validated


def test_bench_table5_rule_validation(benchmark):
    validated = benchmark(validate_rules_on_random_envs)
    assert validated  # at least some rules fired
    report = Report("table5_rewriting_rules")
    report.table(
        ["rule", "validated applications (4 random envs)"],
        sorted(validated.items()),
        title="Every application preserved Definition 9 equivalence",
    )
    report.emit()


def test_bench_example7_verdicts(benchmark):
    def verdicts():
        paper = build_paper_example()
        env = paper.environment
        q1 = (
            scan(env, "contacts")
            .select(col("name").ne("Carla"))
            .assign("text", "Bonjour!")
            .invoke("sendMessage")
            .query("Q1")
        )
        q1p = Query(
            Selection(
                scan(env, "contacts")
                .assign("text", "Bonjour!")
                .invoke("sendMessage")
                .node,
                col("name").ne("Carla"),
            ),
            "Q1'",
        )
        q2 = (
            scan(env, "cameras")
            .select(col("area").eq("office"))
            .invoke("checkPhoto")
            .select(col("quality").ge(5))
            .invoke("takePhoto")
            .project("photo")
            .query("Q2")
        )
        q2p = (
            scan(env, "cameras")
            .invoke("checkPhoto")
            .select(col("quality").ge(5))
            .invoke("takePhoto")
            .select(col("area").eq("office"))
            .project("photo")
            .query("Q2'")
        )
        return (
            check_equivalence(q1, q1p, env),
            check_equivalence(q2, q2p, env),
        )

    r1, r2 = benchmark(verdicts)
    assert not r1.equivalent and r1.same_result and not r1.same_actions
    assert r2.equivalent

    report = Report("example7_equivalence")
    report.table(
        ["pair", "same result", "same actions", "equivalent (Def. 9)", "paper verdict"],
        [
            ["Q1 vs Q1'", r1.same_result, r1.same_actions, r1.equivalent, "NOT equivalent"],
            ["Q2 vs Q2'", r2.same_result, r2.same_actions, r2.equivalent, "equivalent"],
        ],
        title="Example 7 verdicts",
    )
    report.emit()


def test_bench_table5_invocation_savings(benchmark):
    """Invocations saved by σ-below-β pushdown vs selectivity."""

    def sweep():
        rows = []
        for selected_rooms in (1, 2, 4, 8):
            scenario = build_surveillance_workload(
                num_sensors=64, num_locations=8, with_queries=False
            )
            scenario.run(1)
            env = scenario.environment
            formula = col("location").eq("room00")
            for r in range(1, selected_rooms):
                formula = formula | col("location").eq(f"room0{r}")
            naive = (
                scan(env, "sensors").invoke("getTemperature").select(formula).query()
            )
            optimized = rewrite_fixpoint(naive, PUSHDOWN_RULES)
            registry = env.registry
            registry.reset_invocation_count()
            naive.evaluate(env, 1)
            naive_calls = registry.invocation_count
            registry.reset_invocation_count()
            optimized.evaluate(env, 1)
            optimized_calls = registry.invocation_count
            rows.append(
                [
                    f"{selected_rooms}/8",
                    naive_calls,
                    optimized_calls,
                    f"{100 * (1 - optimized_calls / naive_calls):.0f}%",
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    # Savings shrink as selectivity grows but never go negative.
    assert all(int(r[1]) >= int(r[2]) for r in rows)

    report = Report("table5_invocation_savings")
    report.table(
        ["rooms selected", "β calls (naive)", "β calls (pushed σ)", "saved"],
        rows,
        title="σ-below-β pushdown on 64 sensors over 8 rooms",
    )
    report.emit()
