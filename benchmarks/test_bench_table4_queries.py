"""Experiment T4 + E6 — Table 4 queries and Example 6 action sets.

Runs all six Table 4 queries (Q1, Q1', Q2, Q2' one-shot; Q3, Q4
continuous) against the paper's environment, printing results and action
sets; the one-shot ones are also timed end-to-end.
"""

import pytest

from repro.algebra import Query, Selection, col, scan
from repro.bench.reporting import Report
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.devices.paper_example import build_paper_example
from repro.devices.scenario import temperatures_schema


def q1(env):
    return (
        scan(env, "contacts")
        .select(col("name").ne("Carla"))
        .assign("text", "Bonjour!")
        .invoke("sendMessage")
        .query("Q1")
    )


def q1_prime(env):
    inner = (
        scan(env, "contacts").assign("text", "Bonjour!").invoke("sendMessage").node
    )
    return Query(Selection(inner, col("name").ne("Carla")), "Q1'")


def q2(env):
    return (
        scan(env, "cameras")
        .select(col("area").eq("office"))
        .invoke("checkPhoto")
        .select(col("quality").ge(5))
        .invoke("takePhoto")
        .project("photo")
        .query("Q2")
    )


def q2_prime(env):
    return (
        scan(env, "cameras")
        .invoke("checkPhoto")
        .select(col("quality").ge(5))
        .invoke("takePhoto")
        .select(col("area").eq("office"))
        .project("photo")
        .query("Q2'")
    )


def with_temperature_stream(env):
    stream = XDRelation(temperatures_schema(), infinite=True)
    env.add_relation(stream)
    return stream


def q3(env):
    """When a temperature exceeds 35.5°C, message the contacts 'Hot!'."""
    return (
        scan(env, "temperatures")
        .window(1)
        .select(col("temperature").gt(35.5))
        .project("location", "temperature")
        .join(scan(env, "contacts"))
        .assign("text", "Hot!")
        .invoke("sendMessage")
        .query("Q3")
    )


def q4(env):
    """When a temperature drops below 12.0°C, photograph the area."""
    return (
        scan(env, "temperatures")
        .window(1)
        .select(col("temperature").lt(12.0))
        .rename("location", "area")
        .join(scan(env, "cameras"))
        .invoke("checkPhoto", on_error="skip")
        .invoke("takePhoto", on_error="skip")
        .project("area", "photo", "at")
        .stream("insertion")
        .query("Q4")
    )


@pytest.mark.parametrize("make", [q1, q1_prime, q2, q2_prime], ids=lambda f: f.__name__)
def test_bench_table4_one_shot(benchmark, make):
    def run():
        paper = build_paper_example()
        query = make(paper.environment)
        return query.evaluate(paper.environment), paper

    (result, paper) = benchmark(run)
    assert result.relation is not None


def test_bench_example6_action_sets(benchmark):
    def run():
        paper = build_paper_example()
        r1 = q1(paper.environment).evaluate(paper.environment)
        paper2 = build_paper_example()
        r1p = q1_prime(paper2.environment).evaluate(paper2.environment)
        return r1, r1p

    r1, r1p = benchmark(run)
    assert len(r1.actions) == 2
    assert len(r1p.actions) == 3

    report = Report("table4_queries")
    paper = build_paper_example()
    env = paper.environment
    for make in (q1, q2):
        query = make(env)
        result = query.evaluate(env)
        report.add(
            f"{query.name}: {query.render()}\n{result.relation.to_table()}"
        )
    report.add(
        "Action set of Q1 (Example 6):\n" + r1.actions.describe()
    )
    report.add(
        "Action set of Q1' (Example 6): one extra message to Carla\n"
        + r1p.actions.describe()
    )
    report.emit()


def test_bench_table4_continuous(benchmark):
    """Q3 and Q4 over a scripted temperature stream."""

    def run():
        paper = build_paper_example()
        env = paper.environment
        stream = with_temperature_stream(env)
        cq3 = ContinuousQuery(q3(env), env)
        cq4 = ContinuousQuery(q4(env), env)
        for instant in range(1, 21):
            # Scripted readings: office heats up mid-run, roof goes cold.
            office = 30.0 + instant if instant > 5 else 22.0
            roof = 15.0 - instant if instant > 5 else 15.0
            stream.insert(
                [
                    ("sensor06", "office", office, instant),
                    ("sensor22", "roof", roof, instant),
                ],
                instant=instant,
            )
            cq3.evaluate_at(instant)
            cq4.evaluate_at(instant)
        return paper, cq3, cq4

    paper, cq3, cq4 = benchmark(run)
    # Q3: alerts fired once the office passed 35.5 (one reading per hot
    # instant × 3 contacts); the cumulative action *set* collapses to one
    # action per (service, address) pair because text is constant.
    assert len(paper.outbox) >= 3
    assert len(cq3.action_log) == len(paper.outbox)
    assert len(cq3.actions) == 3
    # Q4: the roof went below 12.0 from instant 9 on; webcam07 watches it.
    assert len(cq4.emitted) > 0
    schema = cq4.query.schema
    for _, values in cq4.emitted:
        assert schema.mapping_from_tuple(values)["area"] == "roof"
