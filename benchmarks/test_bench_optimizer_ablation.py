"""Experiment X2 — optimizer ablations for the design choices of
Section 3.3, Section 4.2 and Section 5.1 (see DESIGN.md §4).

Ablation 1 — σ-below-β pushdown: naive vs rewritten plan, service calls
and wall time, while the active-β case is verified to be left untouched.

Ablation 2 — "β only on newly inserted tuples": the continuous invocation
cache of Section 4.2 vs re-invoking every tuple at every instant.

Ablation 3 — synchronous vs asynchronous invocation (§5.1): end-to-end
alert latency as a function of the modeled service round-trip delay.
"""

import time

from repro.algebra import CostModel, Optimizer, col, optimize_heuristic, scan
from repro.algebra.query import Query
from repro.bench.reporting import Report
from repro.bench.workloads import build_surveillance_workload
from repro.continuous.continuous_query import ContinuousQuery


def test_bench_x2_pushdown_ablation(benchmark):
    def ablation():
        scenario = build_surveillance_workload(
            num_sensors=100, num_locations=10, with_queries=False
        )
        scenario.run(1)
        env = scenario.environment
        naive = (
            scan(env, "sensors")
            .invoke("getTemperature")
            .select(col("location").eq("room03"))
            .query()
        )
        optimized = optimize_heuristic(naive)
        registry = env.registry
        rows = []
        for label, query in (("naive", naive), ("pushed-down", optimized)):
            registry.reset_invocation_count()
            started = time.perf_counter()
            result = query.evaluate(env, 1)
            elapsed = time.perf_counter() - started
            rows.append(
                [label, registry.invocation_count, f"{1000 * elapsed:.2f}",
                 len(result.relation)]
            )
        return rows

    rows = benchmark.pedantic(ablation, rounds=3, iterations=1)
    naive_calls, optimized_calls = rows[0][1], rows[1][1]
    assert optimized_calls < naive_calls
    assert rows[0][3] == rows[1][3]  # identical results

    report = Report("x2_pushdown_ablation")
    report.table(
        ["plan", "β invocations", "latency (ms)", "result tuples"],
        rows,
        title="σ-below-β pushdown, 100 sensors / 10 rooms (passive β)",
    )
    report.emit()


def test_bench_x2_cost_based_search(benchmark):
    """The cost-based optimizer finds the same optimum as the heuristic on
    the canonical plan, within a bounded search."""
    scenario = build_surveillance_workload(
        num_sensors=50, num_locations=5, with_queries=False
    )
    scenario.run(1)
    env = scenario.environment
    naive = (
        scan(env, "sensors")
        .invoke("getTemperature")
        .select(col("location").eq("room01"))
        .project("sensor", "temperature")
        .query()
    )
    model = CostModel(env, service_costs={"getTemperature": 200.0}, instant=1)

    def optimize():
        return Optimizer(model).optimize(naive)

    result = benchmark(optimize)
    assert result.improvement > 1.5
    heuristic = optimize_heuristic(naive)
    assert model.cost(result.query).total <= model.cost(heuristic).total


def test_bench_x2_invocation_cache_ablation(benchmark):
    """Continuous refinement (Section 4.2): cached vs naive re-invocation.

    'Without' is emulated by re-evaluating one-shot (fresh context) at
    every instant; 'with' uses a ContinuousQuery's persistent context.
    """

    def ablation():
        rows = []
        for label in ("with-cache", "without-cache"):
            scenario = build_surveillance_workload(
                num_sensors=10, num_contacts=4, with_queries=False
            )
            env = scenario.environment
            query = (
                scan(env, "contacts")
                .assign("text", "ping")
                .invoke("sendMessage")
                .query()
            )
            registry = env.registry
            scenario.run(1)
            registry.reset_invocation_count()
            if label == "with-cache":
                continuous = ContinuousQuery(query, env)
                for _ in range(20):
                    scenario.run(1)
                    continuous.evaluate_at(scenario.clock.now)
            else:
                for _ in range(20):
                    scenario.run(1)
                    query.evaluate(env, scenario.clock.now)
            sensor_calls = 20 * 10  # stream feeder overhead, both modes
            rows.append([label, registry.invocation_count - sensor_calls])
        return rows

    rows = benchmark.pedantic(ablation, rounds=3, iterations=1)
    cached, uncached = rows[0][1], rows[1][1]
    assert cached == 4  # one sendMessage per contact, ever
    assert uncached == 4 * 20  # every contact, every instant

    report = Report("x2_invocation_cache_ablation")
    report.table(
        ["mode", "sendMessage invocations over 20 instants (4 contacts)"],
        rows,
        title='Section 4.2 refinement: "β invoked only for newly inserted tuples"',
    )
    report.add(
        "Without the cache, the continuous query would re-send every alert\n"
        "at every instant — 20x the messages, and 20x the active side effects."
    )
    report.emit()


def test_bench_x2_async_latency(benchmark):
    """End-to-end alert latency vs invocation delay (§5.1 asynchrony).

    A threshold-crossing reading inserted at instant τ triggers a message
    at τ + delay; the measured latency must track the modeled round-trip.
    """
    from repro.continuous.xdrelation import XDRelation
    from repro.devices.paper_example import build_paper_example
    from repro.devices.scenario import temperatures_schema

    def sweep():
        rows = []
        for delay in (0, 1, 3):
            paper = build_paper_example()
            env = paper.environment
            stream = XDRelation(temperatures_schema(), infinite=True)
            env.add_relation(stream)
            # The window must out-live the round-trip: an in-flight request
            # whose operand tuple expires is dropped (the algebra's result
            # at τ only extends tuples present at τ), so W[delay+1] keeps
            # the hot reading visible until its response lands.
            query = (
                scan(env, "temperatures")
                .window(delay + 1)
                .select(col("temperature").gt(35.5))
                .join(scan(env, "contacts").select(col("name").eq("Carla")))
                .assign("text", "Hot!")
                .invoke("sendMessage", on_error="skip", delay=delay)
                .query()
            )
            continuous = ContinuousQuery(query, env)
            hot_instant = 5
            latencies = []
            for instant in range(1, 15):
                temperature = 40.0 if instant == hot_instant else 20.0
                stream.insert(
                    [("sensor06", "office", temperature, instant)], instant=instant
                )
                continuous.evaluate_at(instant)
                for message in paper.outbox.messages[len(latencies):]:
                    latencies.append(message.instant - hot_instant)
            assert latencies, f"no alert for delay={delay}"
            rows.append([delay, latencies[0], len(paper.outbox)])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert [r[1] for r in rows] == [0, 1, 3]  # latency == modeled delay
    assert all(r[2] == 1 for r in rows)  # exactly one alert per reading

    report = Report("x2_async_latency")
    report.table(
        ["invocation delay (instants)", "alert latency (instants)", "messages"],
        rows,
        title="Synchronous vs asynchronous invocation (§5.1)",
    )
    report.emit()
