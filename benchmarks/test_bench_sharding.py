"""Sharded federation benchmark: devices × shards × queries sweep.

A grid workload on the federated PEMS: ``readings(device, sector, value)``
partitioned by ``sector`` across the zone shards, with a bank of
zone-pinned continuous selections (``sector = 'sector-k'``).  Partition
pruning routes each pinned query's scattered chain to the single zone
owning its sector, so per-query work shrinks with the shard count —
that, not OS parallelism, is what buys near-linear steady-state scaling
on this box (the committed numbers come from a 1-CPU container under the
GIL; ``cpus`` in the JSON records the truth).

Measured, into ``BENCH_sharding.json`` / ``benchmarks/reports/sharding.txt``:

* steady-state seconds per tick for shards ∈ {1, 2, 4, 8} (lockstep),
* lockstep overhead vs the single-node ``shared`` engine on the same
  workload (1-zone federation — the cost of the federation machinery),
* the threads shard executor at 4 shards (honest: ≈1× under the GIL).

Set ``BENCH_SMOKE=1`` for the reduced CI configuration.
"""

import json
import os
import platform
from time import perf_counter

from repro.algebra import col, scan
from repro.bench.reporting import Report
from repro.fed import FederatedPEMS
from repro.model.attributes import Attribute
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.pems import PEMS

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

DEVICES = 256 if SMOKE else 4096
SECTORS = 32
QUERIES = 16 if SMOKE else 32
TICKS = 4 if SMOKE else 8
SHARD_COUNTS = (1, 2, 4) if SMOKE else (1, 2, 4, 8)
CHURN_BATCH = DEVICES // 2  # half the grid rewritten per tick
MIN_SCALING = 1.1 if SMOKE else 3.0  # speedup at max shards vs 1 shard
MAX_OVERHEAD = 0.35 if SMOKE else 0.10  # 1-zone lockstep vs shared


def readings_schema():
    return ExtendedRelationSchema(
        "readings",
        [
            Attribute("device", DataType.SERVICE),
            Attribute("sector", DataType.STRING),
            Attribute("value", DataType.REAL),
        ],
    )


def reading(idx, version=0):
    return (
        f"device-{idx}",
        f"sector-{idx % SECTORS}",
        float((idx * 13 + version * 7) % 97),
    )


class Driver:
    """One configuration: a PEMS, the grid rows and the pinned queries."""

    def __init__(self, pems):
        self.pems = pems
        pems.tables.create_relation(readings_schema())
        self.relation = pems.tables.relation("readings")
        self.rows = {idx: reading(idx) for idx in range(DEVICES)}
        self.relation.insert(self.rows.values(), instant=0)
        self.queries = {}
        for q in range(QUERIES):
            sector = f"sector-{(q * SECTORS) // QUERIES}"
            self.queries[f"pin{q}"] = pems.queries.register_continuous(
                scan(pems.environment, "readings")
                .select(col("sector").eq(sector))
                .select(col("value").ge(90.0))
                .project("device", "value")
                .query(),
                name=f"pin{q}",
            )

    def churn(self, instant):
        start = (instant - 1) * CHURN_BATCH
        for offset in range(CHURN_BATCH):
            idx = (start + offset) % DEVICES
            replacement = reading(idx, version=instant)
            if replacement != self.rows[idx]:
                self.relation.delete([self.rows[idx]], instant=instant)
                self.relation.insert([replacement], instant=instant)
                self.rows[idx] = replacement

    def run(self):
        """Warm tick, then TICKS churned ticks; returns the seconds spent
        *inside* the ticks — churn writes (validation + hash routing) are
        per-write costs paid outside the engine and excluded."""
        self.pems.tick()
        seconds = 0.0
        for _ in range(TICKS):
            self.churn(self.pems.clock.now + 1)
            began = perf_counter()
            self.pems.tick()
            seconds += perf_counter() - began
        self.results = {
            name: cq.last_result.relation.tuples
            for name, cq in self.queries.items()
        }
        shutdown = getattr(self.pems, "shutdown", None)
        if shutdown is not None:
            shutdown()
        return seconds


def federated(shards, parallelism=None):
    return Driver(
        FederatedPEMS(
            zones=shards,
            parallelism=parallelism,
            partition_by={"readings": "sector"},
        )
    )


def test_bench_sharding(benchmark):
    def run():
        seconds = {}
        results = None
        for shards in SHARD_COUNTS:
            driver = federated(shards)
            seconds[shards] = driver.run()
            if results is None:
                results = driver.results
            else:  # every shard count computes the same answers
                assert driver.results == results
        shared = Driver(PEMS(engine="shared"))
        shared_seconds = shared.run()
        assert shared.results == results
        threads = federated(4, parallelism="threads")
        threads_seconds = threads.run()
        assert threads.results == results
        return seconds, shared_seconds, threads_seconds

    seconds, shared_seconds, threads_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    top = max(SHARD_COUNTS)
    scaling = seconds[1] / seconds[top]
    overhead = seconds[1] / shared_seconds - 1.0
    assert scaling >= MIN_SCALING, (
        f"sharding to {top} zones only {scaling:.2f}× faster than 1 zone "
        f"({DEVICES} devices, {QUERIES} pinned queries, {TICKS} ticks)"
    )
    assert overhead <= MAX_OVERHEAD, (
        f"1-zone lockstep federation {overhead:.0%} slower than the shared "
        f"engine (bound {MAX_OVERHEAD:.0%})"
    )

    payload = {
        "devices": DEVICES,
        "sectors": SECTORS,
        "queries": QUERIES,
        "ticks": TICKS,
        "churn_batch": CHURN_BATCH,
        "shard_seconds": {str(n): round(s, 6) for n, s in seconds.items()},
        "scaling_at_max_shards": round(scaling, 2),
        "shared_seconds": round(shared_seconds, 6),
        "lockstep_overhead_vs_shared": round(overhead, 4),
        "threads_seconds_4_shards": round(threads_seconds, 6),
        "threads_speedup_vs_lockstep": round(
            seconds[4] / threads_seconds, 2
        ),
        "cpus": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "mode": "smoke" if SMOKE else "full",
    }
    if not SMOKE:  # the committed artifact records the full configuration
        root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
        with open(os.path.join(root, "BENCH_sharding.json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    report = Report("sharding")
    report.table(
        ["shards", "total (s)", "per tick (ms)"],
        [
            [str(n), f"{s:.4f}", f"{s / TICKS * 1000:.2f}"]
            for n, s in seconds.items()
        ],
        title=(
            f"Sharded lockstep tick cost: {DEVICES} devices, {QUERIES} "
            f"pinned queries, {TICKS} timed ticks"
        ),
    )
    report.add(f"Scaling 1→{top} shards: {scaling:.2f}×")
    report.add(
        f"Shared engine baseline: {shared_seconds:.4f}s "
        f"(1-zone lockstep overhead {overhead:+.1%})"
    )
    report.add(
        f"Threads executor, 4 shards: {threads_seconds:.4f}s on "
        f"{os.cpu_count()} CPU(s) — the GIL caps thread parallelism"
    )
    report.emit()
