"""Experiment X6 — multi-query workloads: shared subplans + quiescence.

200 continuous queries over 20 independent zones; within each zone 80%
of the queries share a selection + join prefix, and each tick churns 5%
of the rows of *one* zone (round-robin), so ~190 queries are provably
quiescent at every instant.  Three configurations run the same script:

* ``naive`` — every query fully re-evaluated at every tick,
* ``incremental`` — one private executor tree per query, every query
  ticked every instant (the PR 1 engine),
* ``shared`` — one registry (structurally equivalent subplans run once)
  plus the quiescence-aware tick scheduler (unaffected queries carried
  forward in O(1)).

The shared configuration must beat the unshared incremental engine by at
least 5× in tick throughput, and all three must agree on every query's
final result.  Results land in ``benchmarks/reports/multi_query.txt``
and, machine-readable, in ``BENCH_multi_query.json`` at the repository
root.

Set ``BENCH_SMOKE=1`` for the reduced CI configuration (lower bar).
"""

import json
import os
from time import perf_counter

from repro.algebra import col, scan
from repro.bench.reporting import Report
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.xdrelation import XDRelation
from repro.exec.scheduler import TickScheduler
from repro.exec.shared import SharedPlanRegistry
from repro.model.attributes import Attribute
from repro.model.environment import PervasiveEnvironment
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

ZONES = 4 if SMOKE else 20
QUERIES_PER_ZONE = 10  # 8 share a prefix, 2 are standalone → 80% sharing
ROWS_PER_ZONE = 40 if SMOKE else 120
GROUPS = 8
TICKS = 6 if SMOKE else 20
CHURN = 0.05  # of one zone's rows, per tick
MIN_SPEEDUP = 1.5 if SMOKE else 5.0

QUERIES = ZONES * QUERIES_PER_ZONE


def items_schema(zone):
    return ExtendedRelationSchema(
        f"items{zone}",
        [
            Attribute("item", DataType.STRING),
            Attribute("grp", DataType.STRING),
            Attribute("value", DataType.REAL),
        ],
    )


def groups_schema(zone):
    return ExtendedRelationSchema(
        f"groups{zone}",
        [
            Attribute("grp", DataType.STRING),
            Attribute("label", DataType.STRING),
        ],
    )


def item_row(zone, idx, version=0):
    return (
        f"item{zone}_{idx}",
        f"g{idx % GROUPS}",
        float((idx * 13 + version * 7) % 97),
    )


def zone_queries(env, zone):
    """The zone's query mix: 8 suffixes over one shared prefix + 2 solo."""
    prefix = (
        scan(env, f"items{zone}")
        .select(col("value").ge(10.0))
        .join(scan(env, f"groups{zone}"))
        .select(col("label").ne("label999"))
    )
    queries = {}
    for k in range(QUERIES_PER_ZONE - 2):
        queries[f"z{zone}q{k}"] = (
            prefix.select(col("value").lt(90.0 - k))
            .rename("label", "tag")
            .project("item", "tag")
            .query(f"z{zone}q{k}")
        )
    for k in range(2):
        queries[f"z{zone}s{k}"] = (
            scan(env, f"items{zone}")
            .select(col("value").ge(50.0 + 10 * k))
            .select(col("grp").ne("g999"))
            .rename("item", "name")
            .project("name")
            .query(f"z{zone}s{k}")
        )
    return queries


class Driver:
    """One configuration's environment, queries and churn script."""

    def __init__(self, config):
        self.config = config
        self.env = PervasiveEnvironment()
        self.relations = {}
        self.rows = {}
        for zone in range(ZONES):
            items = XDRelation(items_schema(zone))
            self.rows[zone] = {
                idx: item_row(zone, idx) for idx in range(ROWS_PER_ZONE)
            }
            items.insert(self.rows[zone].values(), instant=0)
            self.env.add_relation(items)
            self.relations[zone] = items
            groups = XDRelation(groups_schema(zone))
            groups.insert(
                [(f"g{g}", f"label{g}") for g in range(GROUPS)], instant=0
            )
            self.env.add_relation(groups)
        self.registry = (
            SharedPlanRegistry(self.env) if config == "shared" else None
        )
        self.scheduler = (
            TickScheduler(self.env) if config == "shared" else None
        )
        engine = "incremental" if config == "incremental" else config
        self.queries = {}
        for zone in range(ZONES):
            for name, query in zone_queries(self.env, zone).items():
                cq = ContinuousQuery(
                    query, self.env, engine=engine, shared=self.registry
                )
                self.queries[name] = cq
                if self.scheduler is not None:
                    self.scheduler.register(name, cq)

    def churn(self, instant):
        """Rewrite 5% of one zone's rows; every other zone stays silent."""
        zone = (instant - 1) % ZONES
        items, rows = self.relations[zone], self.rows[zone]
        batch = max(1, int(ROWS_PER_ZONE * CHURN))
        start = (instant - 1) * batch
        for offset in range(batch):
            idx = (start + offset) % ROWS_PER_ZONE
            replacement = item_row(zone, idx, version=instant)
            if replacement != rows[idx]:
                items.delete([rows[idx]], instant=instant)
                items.insert([replacement], instant=instant)
                rows[idx] = replacement

    def tick(self, instant):
        """Advance every query one instant; returns evaluation seconds."""
        self.churn(instant)
        began = perf_counter()
        if self.scheduler is not None:
            affected = self.scheduler.plan(instant)
            for name, cq in self.queries.items():
                if name in affected:
                    cq.evaluate_at(instant)
                    self.scheduler.evaluated(name, True)
                else:
                    cq.carry_forward(instant)
                    self.scheduler.skipped(name)
        else:
            for cq in self.queries.values():
                cq.evaluate_at(instant)
        return perf_counter() - began


def test_bench_multi_query(benchmark):
    def run():
        drivers = {
            config: Driver(config)
            for config in ("naive", "incremental", "shared")
        }
        seconds = {config: 0.0 for config in drivers}
        for config, driver in drivers.items():
            driver.tick(1)  # warm-up: builds executor state / first result
            for instant in range(2, TICKS + 2):
                seconds[config] += driver.tick(instant)
        # All configurations must agree on every query, or the speedup
        # is meaningless.
        for name in drivers["naive"].queries:
            expected = drivers["naive"].queries[name].last_result.relation.tuples
            for config in ("incremental", "shared"):
                got = drivers[config].queries[name].last_result.relation.tuples
                assert got == expected, (config, name)
        return seconds, drivers["shared"]

    seconds, shared = benchmark.pedantic(run, rounds=1, iterations=1)
    speedup = seconds["incremental"] / seconds["shared"]
    naive_speedup = seconds["naive"] / seconds["shared"]
    assert speedup >= MIN_SPEEDUP, (
        f"shared configuration only {speedup:.1f}× faster than unshared "
        f"incremental ({QUERIES} queries, {ZONES} zones, {CHURN:.0%} churn)"
    )

    stats = shared.scheduler.stats
    payload = {
        "queries": QUERIES,
        "zones": ZONES,
        "rows_per_zone": ROWS_PER_ZONE,
        "prefix_sharing": 0.8,
        "churn": CHURN,
        "ticks": TICKS,
        "naive_seconds": round(seconds["naive"], 6),
        "incremental_seconds": round(seconds["incremental"], 6),
        "shared_seconds": round(seconds["shared"], 6),
        "speedup_vs_incremental": round(speedup, 2),
        "speedup_vs_naive": round(naive_speedup, 2),
        "scheduler_evaluations": stats["evaluations"],
        "scheduler_skips": stats["skips"],
        "registry_entries": len(shared.registry),
        "registry_refcount": shared.registry.total_refcount,
        "mode": "smoke" if SMOKE else "full",
    }
    if not SMOKE:  # the committed artifact records the full configuration
        root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
        with open(os.path.join(root, "BENCH_multi_query.json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    report = Report("multi_query")
    report.table(
        ["configuration", "total (s)", "per tick (ms)"],
        [
            [config, f"{total:.4f}", f"{total / TICKS * 1000:.2f}"]
            for config, total in seconds.items()
        ],
        title=(
            f"Multi-query tick cost: {QUERIES} queries, {ZONES} zones, "
            f"80% prefix sharing, {CHURN:.0%} churn, {TICKS} timed ticks"
        ),
    )
    report.add(f"Speedup (incremental / shared): {speedup:.1f}×")
    report.add(f"Speedup (naive / shared): {naive_speedup:.1f}×")
    report.add(
        f"Scheduler: {stats['evaluations']} evaluations, "
        f"{stats['skips']} skips; registry: {len(shared.registry)} entries, "
        f"refcount {shared.registry.total_refcount}"
    )
    report.emit()
