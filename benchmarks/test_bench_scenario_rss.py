"""Experiment S2 — Section 5.2, second experiment: RSS feeds.

Polls three simulated feeds into a ``news`` stream, keeps the windowed
keyword table continuously updated (insertion when news of interest
appears, expiry when items age out of the window) and forwards each
matching headline once to a contact.
"""

from repro.bench.reporting import Report
from repro.devices.scenario import build_rss_scenario


def full_run():
    scenario = build_rss_scenario(keyword="Obama", window=20, rate=0.4, seed=11)
    updates = []  # (instant, entered, expired) — the "continuously updated" trace
    previous: frozenset = frozenset()
    for _ in range(60):
        scenario.run(1)
        current = scenario.queries["matching-news"].last_result.relation.tuples
        entered, left = current - previous, previous - current
        if entered or left:
            updates.append((scenario.clock.now, len(entered), len(left)))
        previous = current
    return scenario, updates


def test_bench_scenario_rss(benchmark):
    scenario, updates = benchmark(full_run)

    relation = scenario.queries["matching-news"].last_result.relation
    for title in relation.column("title"):
        assert "Obama" in title
    assert any(entered for _, entered, _ in updates), "news of interest appeared"
    assert any(left for _, _, left in updates), "old news expired from the window"

    messages = scenario.outbox.messages
    assert messages, "matching items were forwarded"
    assert {m.address for m in messages} == {"carla@elysee.fr"}
    texts = [m.text for m in messages]
    assert len(texts) == len(set(texts)), "each item forwarded exactly once"

    report = Report("scenario_rss")
    report.table(
        ["metric", "value", "paper behaviour"],
        [
            ["instants simulated", scenario.clock.now, "—"],
            ["news stream tuples", len(scenario.environment.relation("news")),
             "a tuple per new RSS item (periodic poll)"],
            ["sites", ", ".join(sorted(scenario.feeds)),
             "Le Monde, Le Figaro, CNN Europe"],
            ["window updates", len(updates),
             "result continuously updated (insert + expire)"],
            ["matching items now", len(relation), "items of the last window"],
            ["messages forwarded", len(messages),
             "news of interest sent to a contact"],
            ["duplicate sends", len(texts) - len(set(texts)), "0"],
        ],
        title="RSS feeds (Section 5.2, experiment 2) — keyword 'Obama', window 20",
    )
    report.table(
        ["t", "entered", "expired"],
        [list(u) for u in updates[:12]],
        title="Window update trace (first 12 changes)",
    )
    report.emit()
