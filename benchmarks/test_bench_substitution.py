"""Experiment X9 — semantic substitution: rebind latency and the cost of
carrying the machinery when nothing fails.

Two measurements against the §5.2 surveillance scenario on the shared
engine:

* **Fault-free overhead** — the same chaos-free workload runs once bare
  and once with a spare sensor registered and a substitution rule
  declared; with no failures the rule never fires, so the entire cost is
  the per-tick failover-table sweep and must stay within 5% of the bare
  configuration.
* **Rebind latency** — a sensor crashes permanently on schedule; we
  record how many instants pass until the sticky binding is installed
  (it must be at most ``quarantine_backoff + 1``) and verify the dead
  sensor's readings kept flowing at every single instant in between
  (the failover table serves the gap).

Results land in ``benchmarks/reports/substitution.txt`` and,
machine-readable, in ``BENCH_substitution.json`` at the repository root.
Set ``BENCH_SMOKE=1`` for the reduced CI configuration.
"""

import json
import os
from time import perf_counter

from repro.bench.reporting import Report
from repro.devices.faults import FaultScript
from repro.devices.scenario import build_temperature_surveillance
from repro.model.invocation_policy import InvocationPolicy
from repro.model.substitution import SubstitutionRule

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

TICKS = 40 if SMOKE else 240
REPEATS = 3 if SMOKE else 5  # best-of-N tames scheduler noise
MAX_OVERHEAD = 0.50 if SMOKE else 0.05  # smoke runs are noise-dominated

POLICY = InvocationPolicy(failure_threshold=1, quarantine_backoff=8)

CRASH_AT = 20
SPARES = (("spare-roof", "roof", 15.5),)
RULES = (
    SubstitutionRule.specializes(
        "getTemperature", "spare-roof", "getEnvReading", reference="sensor22"
    ),
)


def run_fault_free(with_substitution):
    """Tick the chaos-free scenario; returns evaluation seconds.

    The spare is registered in *both* configurations (one more device is
    a cost of provisioning hardware, not of this subsystem); only the
    rule declaration — hence the sweep, scoring and failover table —
    varies between the runs."""
    scenario = build_temperature_surveillance(
        engine="shared",
        policy=POLICY,
        spare_sensors=SPARES,
        substitutions=RULES if with_substitution else (),
    )
    scenario.run(1)  # warm-up: executor trees, discovery sync, first rows
    began = perf_counter()
    scenario.run(TICKS)
    return perf_counter() - began


def run_rebind():
    """Crash sensor22 for good; track the binding and the readings."""
    scenario = build_temperature_surveillance(
        engine="shared",
        policy=POLICY,
        sensor_faults={"sensor22": FaultScript(crash_at=CRASH_AT)},
        fault_seed="bench-sub",
        spare_sensors=SPARES,
        substitutions=RULES,
    )
    pems = scenario.pems
    rebound_at = None
    missed = []
    horizon = CRASH_AT + 2 * POLICY.quarantine_backoff
    for _ in range(horizon):
        now = scenario.run(1)
        fed = {
            row[0]
            for row in pems.environment.instantaneous("temperatures", now)
            if row[3] == now
        }
        if "sensor22" not in fed:
            missed.append(now)
        bound = pems.environment.registry.substitutions.bindings
        if rebound_at is None and ("getTemperature", "sensor22") in bound:
            rebound_at = now
    assert rebound_at is not None, "the crashed sensor was never rebound"
    assert not missed, f"sensor22 readings missed instants {missed}"
    return {
        "crash_at": CRASH_AT,
        "rebound_at": rebound_at,
        "rebind_latency_ticks": rebound_at - CRASH_AT,
        "quarantine_backoff": POLICY.quarantine_backoff,
        "missed_ticks": len(missed),
        "horizon": horizon,
    }


def test_bench_substitution(benchmark):
    def run():
        # Alternate the configurations so drift hits both equally, and
        # keep the best of each: the minimum is the least-noisy estimate
        # of the true cost on a sub-100ms workload.
        pairs = [
            (run_fault_free(False), run_fault_free(True))
            for _ in range(REPEATS)
        ]
        baseline = min(b for b, _ in pairs)
        with_rules = min(s for _, s in pairs)
        return baseline, with_rules, run_rebind()

    baseline, with_rules, rebind = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = with_rules / baseline - 1.0
    assert overhead <= MAX_OVERHEAD, (
        f"substitution machinery costs {overhead:.1%} over the bare "
        f"configuration ({TICKS} fault-free ticks)"
    )
    # The sweep installs the binding on the tick after the quarantine
    # stamp — well within the acceptance bound.
    assert rebind["rebind_latency_ticks"] <= rebind["quarantine_backoff"] + 1

    payload = {
        "workload": "temperature_surveillance(shared)",
        "ticks": TICKS,
        "baseline_seconds": round(baseline, 6),
        "substitution_seconds": round(with_rules, 6),
        "fault_free_overhead": round(overhead, 4),
        "policy": {
            "failure_threshold": POLICY.failure_threshold,
            "quarantine_backoff": POLICY.quarantine_backoff,
        },
        "rebind": rebind,
        "mode": "smoke" if SMOKE else "full",
    }
    if not SMOKE:  # the committed artifact records the full configuration
        root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
        with open(os.path.join(root, "BENCH_substitution.json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    report = Report("substitution")
    report.table(
        ["configuration", "total (s)", "per tick (ms)"],
        [
            ["bare", f"{baseline:.4f}", f"{baseline / TICKS * 1000:.3f}"],
            [
                "substitution",
                f"{with_rules:.4f}",
                f"{with_rules / TICKS * 1000:.3f}",
            ],
        ],
        title=(
            f"Fault-free substitution overhead: surveillance scenario, "
            f"shared engine, {TICKS} timed ticks"
        ),
    )
    report.add(f"Overhead: {overhead:+.1%} (bound {MAX_OVERHEAD:.0%})")
    report.add(
        "Rebind: permanent crash at {crash_at} → bound at {rebound_at} "
        "(latency {rebind_latency_ticks} ticks, backoff "
        "{quarantine_backoff}, {missed_ticks} missed readings over "
        "{horizon} instants)".format(**rebind)
    )
    report.emit()
