"""Experiment X3 — the language layer: Serena SQL and SAL throughput.

The paper's languages (the Serena DDL of Tables 1–2, the Serena Algebra
Language of §5.1, and the Serena SQL it mentions in §1.1) all front the
same algebra; this bench measures parse+compile throughput and checks that
the three routes to the same query produce identical plans and results.
"""

from repro.algebra import col, scan
from repro.bench.reporting import Report
from repro.devices.paper_example import build_paper_example
from repro.lang import compile_sql, parse_query, to_sal

SQL_Q1 = (
    "SELECT name, address, text, messenger, sent FROM contacts "
    "SET text := 'Bonjour!' WHERE name != 'Carla' USING sendMessage"
)

SAL_Q1 = (
    "invoke[sendMessage, messenger](assign[text := 'Bonjour!']("
    "select[name != 'Carla'](contacts)))"
)


def test_bench_x3_sql_compile(benchmark):
    paper = build_paper_example()
    env = paper.environment
    query = benchmark(compile_sql, SQL_Q1, env)
    assert query.schema.names == ("name", "address", "text", "messenger", "sent")


def test_bench_x3_sal_parse(benchmark):
    paper = build_paper_example()
    env = paper.environment
    query = benchmark(parse_query, SAL_Q1, env)
    assert query.root.schema.real_names >= {"text", "sent"}


def test_bench_x3_three_routes_one_query(benchmark):
    """Builder, SAL and SQL all express Q1; results and action sets match."""

    def all_routes():
        results = []
        for route in ("builder", "sal", "sql"):
            paper = build_paper_example()
            env = paper.environment
            if route == "builder":
                query = (
                    scan(env, "contacts")
                    .select(col("name").ne("Carla"))
                    .assign("text", "Bonjour!")
                    .invoke("sendMessage")
                    .query()
                )
            elif route == "sal":
                query = parse_query(SAL_Q1, env)
            else:
                query = compile_sql(SQL_Q1, env)
            result = query.evaluate(env)
            results.append((route, result, len(paper.outbox), to_sal(query)))
        return results

    results = benchmark(all_routes)
    relations = {route: r.relation for route, r, _, _ in results}
    actions = {route: r.actions for route, r, _, _ in results}
    # SQL adds a final (identity) projection; tuple content must agree.
    base = {
        frozenset(m.items()) for m in relations["builder"].to_mappings()
    }
    for route in ("sal", "sql"):
        assert {
            frozenset(m.items()) for m in relations[route].to_mappings()
        } == base, route
    assert actions["builder"] == actions["sal"] == actions["sql"]
    assert all(sent == 2 for _, _, sent, _ in results)

    report = Report("x3_language_layer")
    report.table(
        ["route", "plan (SAL rendering)", "messages sent"],
        [[route, text, sent] for route, _, sent, text in results],
        title="Q1 through the three front-ends",
    )
    report.emit()
