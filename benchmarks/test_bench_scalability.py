"""Experiment X1 — the scalability study the paper defers.

"Further experiments need to be conducted to assess the scalability and
the robustness of our proposal... no benchmark can be used for that
purpose" (Section 5.2).  This is that benchmark: throughput (ticks/s) and
per-tick latency of a full PEMS cycle as the environment scales in

* number of sensors (stream rate ∝ sensors),
* number of contacts/managers (join fan-out of the alert query),
* fraction of hot sensors (alert/message volume).
"""

from repro.bench.harness import measure_run
from repro.bench.reporting import Report
from repro.bench.workloads import build_surveillance_workload

INSTANTS = 15


def run_point(num_sensors=20, num_contacts=5, hot_fraction=0.2):
    scenario = build_surveillance_workload(
        num_sensors=num_sensors,
        num_contacts=num_contacts,
        num_locations=max(2, num_sensors // 5),
        hot_fraction=hot_fraction,
    )
    scenario.run(1)  # discovery warm-up
    return measure_run(scenario, INSTANTS)


def test_bench_x1_sensor_sweep(benchmark):
    def sweep():
        rows = []
        for sensors in (5, 20, 80, 200):
            stats = run_point(num_sensors=sensors)
            rows.append(
                [
                    sensors,
                    f"{stats.ticks_per_second:,.0f}",
                    f"{stats.mean_tick_ms:.2f}",
                    f"{stats.percentile_tick_ms(0.95):.2f}",
                    stats.invocations,
                    stats.messages,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Throughput must degrade monotonically-ish with scale, never collapse.
    assert float(rows[0][1].replace(",", "")) > float(rows[-1][1].replace(",", ""))

    report = Report("x1_sensor_sweep")
    report.table(
        ["#sensors", "ticks/s", "mean tick (ms)", "p95 tick (ms)",
         "invocations", "messages"],
        rows,
        title=f"Scalability vs sensor count ({INSTANTS} instants per point)",
    )
    report.emit()


def test_bench_x1_contact_sweep(benchmark):
    def sweep():
        rows = []
        for contacts in (2, 8, 32, 128):
            stats = run_point(num_sensors=40, num_contacts=contacts)
            rows.append(
                [
                    contacts,
                    f"{stats.ticks_per_second:,.0f}",
                    f"{stats.mean_tick_ms:.2f}",
                    stats.messages,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    report = Report("x1_contact_sweep")
    report.table(
        ["#contacts", "ticks/s", "mean tick (ms)", "messages"],
        rows,
        title="Scalability vs contact-list size (40 sensors)",
    )
    report.emit()


def test_bench_x1_load_sweep(benchmark):
    def sweep():
        rows = []
        for hot in (0.0, 0.25, 0.5, 1.0):
            stats = run_point(num_sensors=40, hot_fraction=hot)
            rows.append(
                [
                    f"{hot:.0%}",
                    f"{stats.ticks_per_second:,.0f}",
                    stats.actions,
                    stats.messages,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # More hot sensors → more alert work (messages grow monotonically).
    message_counts = [r[3] for r in rows]
    assert message_counts == sorted(message_counts)
    assert message_counts[0] == 0

    report = Report("x1_load_sweep")
    report.table(
        ["hot sensors", "ticks/s", "actions", "messages"],
        rows,
        title="Alert volume vs fraction of over-threshold sensors (40 sensors)",
    )
    report.emit()
