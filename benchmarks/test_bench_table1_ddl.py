"""Experiment T1 — Table 1: prototypes and services DDL.

Parses the paper's Table 1 verbatim, prints the resulting catalog (the
same 4 prototypes / 9 services the paper lists) and benchmarks the DDL
parse+execute pipeline.
"""

from repro.bench.reporting import Report
from repro.continuous.time import VirtualClock
from repro.lang.ddl import ServiceDeclaration
from repro.model.environment import PervasiveEnvironment
from repro.model.prototypes import Prototype
from repro.pems.table_manager import ExtendedTableManager

TABLE1 = """
PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
PROTOTYPE getTemperature( ) : ( temperature REAL );
SERVICE email IMPLEMENTS sendMessage;
SERVICE jabber IMPLEMENTS sendMessage;
SERVICE camera01 IMPLEMENTS checkPhoto, takePhoto;
SERVICE camera02 IMPLEMENTS checkPhoto, takePhoto;
SERVICE webcam07 IMPLEMENTS checkPhoto, takePhoto;
SERVICE sensor01 IMPLEMENTS getTemperature;
SERVICE sensor06 IMPLEMENTS getTemperature;
SERVICE sensor07 IMPLEMENTS getTemperature;
SERVICE sensor22 IMPLEMENTS getTemperature;
"""


def run_ddl():
    tables = ExtendedTableManager(PervasiveEnvironment(), VirtualClock())
    return tables.execute_ddl(TABLE1), tables.environment


def test_bench_table1_ddl(benchmark):
    results, env = benchmark(run_ddl)

    prototypes = [r for r in results if isinstance(r, Prototype)]
    services = [r for r in results if isinstance(r, ServiceDeclaration)]
    assert len(prototypes) == 4
    assert len(services) == 9
    assert env.prototype("sendMessage").active
    assert all(
        env.prototype(name).is_passive
        for name in ("checkPhoto", "takePhoto", "getTemperature")
    )

    report = Report("table1_ddl")
    report.table(
        ["prototype", "inputs", "outputs", "tag"],
        [
            [
                p.name,
                ", ".join(p.input_schema.names) or "-",
                ", ".join(p.output_schema.names),
                "ACTIVE" if p.active else "passive",
            ]
            for p in prototypes
        ],
        title="Prototypes (paper Table 1)",
    )
    report.table(
        ["service", "implements"],
        [[s.reference, ", ".join(s.prototype_names)] for s in services],
        title="Services (paper Table 1)",
    )
    report.emit()
