"""Experiment F1 — Figure 1: the PEMS architecture.

Boots the full Figure 1 topology (two Local ERMs, the core ERM over the
discovery bus, the extended table manager, the query processor), measures
boot time, discovery latency (announce → queryable row) and per-tick cycle
cost, and prints the discovered-service table.
"""

from repro.bench.reporting import Report
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.devices.scenario import build_temperature_surveillance, sensors_schema
from repro.devices.sensors import TemperatureSensor
from repro.pems.pems import PEMS


def boot_figure1():
    """A minimal Figure 1 deployment, built from scratch."""
    pems = PEMS()
    for prototype in STANDARD_PROTOTYPES:
        pems.environment.declare_prototype(prototype)
    pems.tables.create_relation(sensors_schema())
    floor1 = pems.create_local_erm("floor-1")
    floor2 = pems.create_local_erm("floor-2")
    for i in range(8):
        erm = floor1 if i % 2 == 0 else floor2
        erm.register(
            TemperatureSensor(f"sensor{i:02d}", f"room{i % 4}").as_service()
        )
    pems.queries.register_discovery("getTemperature", "sensors", "sensor")
    return pems


def test_bench_fig1_boot(benchmark):
    pems = benchmark(boot_figure1)
    assert len(pems.environment.registry) == 8
    table = pems.environment.instantaneous("sensors", pems.clock.now)
    assert len(table) == 8


def test_bench_fig1_discovery_latency(benchmark):
    """Instants from a service's announcement to its appearance in the
    discovery-maintained table (0 on the announce tick, by design)."""

    def announce_and_measure():
        pems = boot_figure1()
        pems.run(1)
        pems.create_local_erm("floor-1").register(
            TemperatureSensor("sensor99", "room9").as_service()
        )
        appeared_at = None
        for _ in range(5):
            pems.tick()
            table = pems.environment.instantaneous("sensors", pems.clock.now)
            if "sensor99" in table.column("sensor"):
                appeared_at = pems.clock.now
                break
        return appeared_at, pems

    appeared_at, pems = benchmark(announce_and_measure)
    assert appeared_at is not None
    assert appeared_at - 1 <= 1  # visible by the tick after the announce


def test_bench_fig1_tick_cycle(benchmark):
    """One full PEMS cycle: stream feed + discovery sync + 2 continuous
    queries over the standard scenario."""
    scenario = build_temperature_surveillance()
    scenario.run(2)  # warm up

    benchmark(scenario.pems.tick)

    report = Report("fig1_pems")
    env = scenario.environment
    report.add("Discovered services (via two Local ERMs):")
    report.table(
        ["relation", "rows"],
        [
            [name, len(env.instantaneous(name, scenario.clock.now))]
            for name in env.relation_names
        ],
        title="XD-Relations after warm-up",
    )
    report.add(
        "Catalog excerpt:\n"
        + "\n".join(env.describe().splitlines()[:20])
    )
    report.emit()
