"""Experiment S1 — Section 5.2, first experiment: temperature surveillance.

Runs the full scenario timeline (ambient → heating → alerts → hot-plugged
sensor) and prints the alert timeline and per-channel message counts; the
benchmark measures a complete 30-instant run.
"""

from repro.bench.harness import measure_run
from repro.bench.reporting import Report
from repro.devices.scenario import build_temperature_surveillance


def full_run():
    scenario = build_temperature_surveillance()
    # Phase 1: ambient (no alerts expected).
    scenario.run(5)
    # Phase 2: heat the office; Carla manages it with a 28.0 threshold.
    scenario.sensors["sensor06"].heat(7, 14, peak=15.0)
    # Phase 3: hot-plug a roof sensor and chill the roof below 12.0.
    scenario.run(12)
    extra = scenario.add_sensor("sensor99", "roof", base=15.0)
    extra.heat(scenario.clock.now + 2, scenario.clock.now + 8, peak=-10.0)
    scenario.run(13)
    return scenario


def test_bench_scenario_temperature(benchmark):
    scenario = benchmark(full_run)

    outbox = scenario.outbox
    assert len(outbox) > 0
    # Alerts went only to the office manager (Carla) — the heating phase.
    assert {m.address for m in outbox.messages} == {"carla@elysee.fr"}
    # Cold roof produced photos via the discovery-maintained cameras table.
    photos = scenario.queries["cold-photos"].emitted
    # sensor99 was integrated without restarting any query.
    sensors = scenario.environment.instantaneous("sensors", scenario.clock.now)
    assert "sensor99" in sensors.column("sensor")

    report = Report("scenario_temperature")
    report.table(
        ["metric", "value", "paper behaviour"],
        [
            ["instants simulated", scenario.clock.now, "—"],
            ["stream tuples", len(scenario.environment.relation("temperatures")),
             "periodic localized readings"],
            ["alert messages", len(outbox),
             "alerts start when sensors heated over threshold"],
            ["alert recipients", ", ".join(sorted({m.address for m in outbox.messages})),
             "the manager of the associated area"],
            ["channels used", ", ".join(sorted({m.channel for m in outbox.messages})),
             "mail / IM / SMS per contact"],
            ["photos emitted", len(photos), "stream of photos of cold areas"],
            ["hot-plugged sensors", 1,
             "discovered without stopping the continuous query"],
        ],
        title="Temperature surveillance (Section 5.2, experiment 1)",
    )
    timeline = [
        [m.instant, m.channel, m.address, m.text]
        for m in outbox.messages[:10]
    ]
    if timeline:
        report.table(
            ["t", "channel", "address", "text"],
            timeline,
            title="Alert timeline (first 10)",
        )
    report.emit()


def test_bench_scenario_temperature_steady_state(benchmark):
    """Steady-state throughput: ticks/second with 4 sensors + 2 queries."""
    scenario = build_temperature_surveillance()
    scenario.run(2)

    def twenty_ticks():
        return measure_run(scenario, 20)

    stats = benchmark.pedantic(twenty_ticks, rounds=5, iterations=1)
    assert stats.invocations > 0
    assert stats.stream_tuples == 20 * 4
