"""Experiment X7 — observability overhead: off vs. metrics vs. full.

The observability subsystem (DESIGN.md §9) claims its always-on default
is cheap enough to leave enabled: the §5.2 temperature scenario runs the
same tick script under the three ``PEMS(observe=...)`` modes and the
end-to-end wall clock is compared.  Timing is external (one
``perf_counter`` pair around the whole run per configuration) so every
mode is measured identically, and the minimum over interleaved rounds is
used to suppress scheduler noise.

The ``metrics`` mode must stay within the DESIGN.md §9 overhead bound of
the ``off`` baseline; the ``full`` tracing mode is recorded for the
record (its ring buffer keeps the last ~4096 spans).  Results land in
``benchmarks/reports/observability.txt`` and, machine-readable, in
``BENCH_observability.json`` at the repository root.

Set ``BENCH_SMOKE=1`` for the reduced CI configuration (lower bar).
"""

import json
import os
from time import perf_counter

from repro.bench.reporting import Report
from repro.devices.scenario import build_temperature_surveillance

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

TICKS = 60 if SMOKE else 400
ROUNDS = 3 if SMOKE else 5
#: DESIGN.md §9 bound for the always-on default; the smoke bar is looser
#: because short CI runs are noise-dominated.
MAX_METRICS_OVERHEAD = 0.30 if SMOKE else 0.05

MODES = ("off", "metrics", "full")


def timed_run(mode):
    """Build a fresh scenario and drive TICKS instants; returns
    (elapsed seconds, the scenario) — the build is outside the clock."""
    scenario = build_temperature_surveillance(engine="shared", observe=mode)
    pems = scenario.pems
    began = perf_counter()
    for _ in range(TICKS):
        pems.tick()
    return perf_counter() - began, scenario


def test_bench_observability(benchmark):
    def run():
        best = {mode: float("inf") for mode in MODES}
        last = {}
        for _ in range(ROUNDS):  # interleaved: noise hits all modes alike
            for mode in MODES:
                elapsed, scenario = timed_run(mode)
                best[mode] = min(best[mode], elapsed)
                last[mode] = scenario
        return best, last

    best, last = benchmark.pedantic(run, rounds=1, iterations=1)

    overhead = {
        mode: best[mode] / best["off"] - 1.0 for mode in ("metrics", "full")
    }
    assert overhead["metrics"] <= MAX_METRICS_OVERHEAD, (
        f"always-on metrics cost {overhead['metrics']:+.1%} over the "
        f"observe-off baseline (bound {MAX_METRICS_OVERHEAD:.0%}, "
        f"{TICKS} ticks, best of {ROUNDS})"
    )

    # The instrumented runs really observed the same work.
    obs = last["full"].pems.obs
    assert obs.metrics.value("serena_ticks_total") == TICKS
    assert obs.tracer.recorded > 0
    invocations = obs.metrics.family_total("serena_invocations_total")
    histogram = obs.metrics.get("serena_tick_seconds")

    payload = {
        "scenario": "temperature_surveillance",
        "engine": "shared",
        "ticks": TICKS,
        "rounds": ROUNDS,
        "off_seconds": round(best["off"], 6),
        "metrics_seconds": round(best["metrics"], 6),
        "full_seconds": round(best["full"], 6),
        "metrics_overhead": round(overhead["metrics"], 4),
        "full_overhead": round(overhead["full"], 4),
        "metrics_overhead_bound": MAX_METRICS_OVERHEAD,
        "invocations": int(invocations),
        "mean_tick_ms": round(histogram.mean * 1000, 4),
        "p95_tick_ms": round(histogram.quantile(0.95) * 1000, 4),
        "spans_recorded": obs.tracer.recorded,
        "spans_retained": len(obs.tracer),
        "mode": "smoke" if SMOKE else "full",
    }
    if not SMOKE:  # the committed artifact records the full configuration
        root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
        with open(os.path.join(root, "BENCH_observability.json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    report = Report("observability")
    report.table(
        ["observe=", "total (s)", "per tick (ms)", "overhead"],
        [
            [
                mode,
                f"{best[mode]:.4f}",
                f"{best[mode] / TICKS * 1000:.3f}",
                "—" if mode == "off" else f"{overhead[mode]:+.1%}",
            ]
            for mode in MODES
        ],
        title=(
            f"Observability overhead: §5.2 scenario, shared engine, "
            f"{TICKS} ticks, best of {ROUNDS} interleaved rounds"
        ),
    )
    report.add(
        f"metrics-mode bound: {MAX_METRICS_OVERHEAD:.0%} "
        f"(measured {overhead['metrics']:+.1%})"
    )
    report.add(
        f"full mode recorded {obs.tracer.recorded} spans "
        f"({len(obs.tracer)} retained); tick histogram mean "
        f"{histogram.mean * 1000:.3f} ms, p95≤{histogram.quantile(0.95) * 1000:.1f} ms"
    )
    report.emit()
