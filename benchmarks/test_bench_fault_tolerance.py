"""Experiment X7 — fault tolerance: recovery latency and policy overhead.

Two measurements against the §5.2 surveillance scenario on the shared
engine:

* **Fault-free overhead** — the same chaos-free workload runs once with
  the permissive default and once with an enabled retry/quarantine
  policy; with no failures the policy's gates never close, so its cost
  is pure bookkeeping and must stay within 10% of the PR 2 baseline.
* **Recovery latency** — a scripted crash window knocks one sensor out;
  we record how many instants pass until the quarantine removes it from
  the ``sensors`` XD-Relation (detection) and, after the window ends,
  until the ERM re-admits it (recovery).

Results land in ``benchmarks/reports/fault_tolerance.txt`` and,
machine-readable, in ``BENCH_fault_tolerance.json`` at the repository
root.  Set ``BENCH_SMOKE=1`` for the reduced CI configuration.
"""

import json
import os
from time import perf_counter

from repro.bench.reporting import Report
from repro.devices.faults import FaultScript
from repro.devices.scenario import build_temperature_surveillance
from repro.model.invocation_policy import InvocationPolicy

SMOKE = os.environ.get("BENCH_SMOKE") == "1"

TICKS = 40 if SMOKE else 240
REPEATS = 3 if SMOKE else 5  # best-of-N tames scheduler noise
MAX_OVERHEAD = 0.50 if SMOKE else 0.10  # smoke runs are noise-dominated

POLICY = InvocationPolicy(backoff=2, failure_threshold=3, quarantine_backoff=10)

#: Crash window for the recovery phase (instants, half-open).
FAULT_START, FAULT_END = 20, 26
RECOVERY_POLICY = InvocationPolicy(failure_threshold=1, quarantine_backoff=10)


def run_fault_free(policy):
    """Tick the chaos-free scenario; returns evaluation seconds."""
    scenario = build_temperature_surveillance(engine="shared", policy=policy)
    scenario.run(1)  # warm-up: executor trees, discovery sync, first rows
    began = perf_counter()
    scenario.run(TICKS)
    return perf_counter() - began


def run_recovery():
    """Crash one sensor on schedule; track the ``sensors`` extent."""
    scenario = build_temperature_surveillance(
        engine="shared",
        policy=RECOVERY_POLICY,
        sensor_faults={
            "sensor01": FaultScript(crash_windows=((FAULT_START, FAULT_END),))
        },
        fault_seed="bench",
    )
    pems = scenario.pems
    removed_at = readmitted_at = None
    horizon = FAULT_END + 3 * RECOVERY_POLICY.quarantine_backoff
    for _ in range(horizon):
        now = scenario.run(1)
        extent = {
            row[0]
            for row in pems.environment.instantaneous("sensors", now)
        }
        if removed_at is None and now >= FAULT_START and "sensor01" not in extent:
            removed_at = now
        if (
            removed_at is not None
            and readmitted_at is None
            and now >= FAULT_END
            and "sensor01" in extent
        ):
            readmitted_at = now
            break
    assert removed_at is not None, "faulty sensor was never quarantined"
    assert readmitted_at is not None, "quarantined sensor was never re-admitted"
    return {
        "fault_start": FAULT_START,
        "fault_end": FAULT_END,
        "removed_at": removed_at,
        "readmitted_at": readmitted_at,
        "detection_latency": removed_at - FAULT_START,
        "recovery_latency": readmitted_at - FAULT_END,
        "quarantine_backoff": RECOVERY_POLICY.quarantine_backoff,
    }


def test_bench_fault_tolerance(benchmark):
    def run():
        # Alternate the configurations so drift hits both equally, and
        # keep the best of each: the minimum is the least-noisy estimate
        # of the true cost on a sub-100ms workload.
        pairs = [
            (run_fault_free(policy=None), run_fault_free(policy=POLICY))
            for _ in range(REPEATS)
        ]
        baseline = min(b for b, _ in pairs)
        with_policy = min(p for _, p in pairs)
        return baseline, with_policy, run_recovery()

    baseline, with_policy, recovery = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    overhead = with_policy / baseline - 1.0
    assert overhead <= MAX_OVERHEAD, (
        f"enabled policy costs {overhead:.1%} over the permissive baseline "
        f"({TICKS} fault-free ticks)"
    )
    # Detection is bounded by one lease period; the sweep actually fires
    # on the tick after the threshold trips.
    assert recovery["detection_latency"] <= 2
    # Re-admission happens as soon as the quarantine backoff allows.
    assert recovery["recovery_latency"] <= recovery["quarantine_backoff"]

    payload = {
        "workload": "temperature_surveillance(shared)",
        "ticks": TICKS,
        "baseline_seconds": round(baseline, 6),
        "policy_seconds": round(with_policy, 6),
        "fault_free_overhead": round(overhead, 4),
        "policy": {
            "backoff": POLICY.backoff,
            "failure_threshold": POLICY.failure_threshold,
            "quarantine_backoff": POLICY.quarantine_backoff,
        },
        "recovery": recovery,
        "mode": "smoke" if SMOKE else "full",
    }
    if not SMOKE:  # the committed artifact records the full configuration
        root = os.path.normpath(os.path.join(os.path.dirname(__file__), ".."))
        with open(os.path.join(root, "BENCH_fault_tolerance.json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")

    report = Report("fault_tolerance")
    report.table(
        ["configuration", "total (s)", "per tick (ms)"],
        [
            ["permissive", f"{baseline:.4f}", f"{baseline / TICKS * 1000:.3f}"],
            ["policy", f"{with_policy:.4f}", f"{with_policy / TICKS * 1000:.3f}"],
        ],
        title=(
            f"Fault-free policy overhead: surveillance scenario, shared "
            f"engine, {TICKS} timed ticks"
        ),
    )
    report.add(f"Overhead: {overhead:+.1%} (bound {MAX_OVERHEAD:.0%})")
    report.add(
        "Recovery: crash [{fault_start}, {fault_end}) → removed at "
        "{removed_at} (detection {detection_latency}), re-admitted at "
        "{readmitted_at} (recovery {recovery_latency}, backoff "
        "{quarantine_backoff})".format(**recovery)
    )
    report.emit()
