"""Experiment T2 — Table 2: X-Relation DDL (contacts, cameras).

Executes the paper's Table 2 verbatim on top of the Table 1 prototypes,
prints the created extended relation schemas (real/virtual partition and
binding patterns) and benchmarks schema creation + tuple loading.
"""

from repro.bench.reporting import Report
from repro.continuous.time import VirtualClock
from repro.devices.paper_example import CONTACT_ROWS
from repro.model.environment import PervasiveEnvironment
from repro.pems.table_manager import ExtendedTableManager

from test_bench_table1_ddl import TABLE1

TABLE2 = """
EXTENDED RELATION contacts (
    name STRING,
    address STRING,
    text STRING VIRTUAL,
    messenger SERVICE,
    sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS (
    sendMessage[messenger] ( address, text ) : ( sent )
);
EXTENDED RELATION cameras (
    camera SERVICE,
    area STRING,
    quality INTEGER VIRTUAL,
    delay REAL VIRTUAL,
    photo BLOB VIRTUAL
) USING BINDING PATTERNS (
    checkPhoto[camera] ( area ) : ( quality, delay ),
    takePhoto[camera] ( area, quality ) : ( photo )
);
"""


def build():
    tables = ExtendedTableManager(PervasiveEnvironment(), VirtualClock())
    tables.execute_ddl(TABLE1)
    tables.execute_ddl(TABLE2)
    tables.insert("contacts", CONTACT_ROWS)
    return tables


def test_bench_table2_xrelations(benchmark):
    tables = benchmark(build)
    env = tables.environment

    contacts = env.schema("contacts")
    assert contacts.virtual_names == {"text", "sent"}
    assert len(contacts.binding_patterns) == 1
    cameras = env.schema("cameras")
    assert cameras.virtual_names == {"quality", "delay", "photo"}
    assert len(cameras.binding_patterns) == 2

    report = Report("table2_xrelations")
    for name in ("contacts", "cameras"):
        report.add(env.schema(name).describe() + ";")
    report.add(
        "contacts contents (virtual attributes have no value, shown as *):\n"
        + env.instantaneous("contacts", 0).to_table()
    )
    report.emit()
