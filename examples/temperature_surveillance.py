"""The temperature surveillance scenario (Section 5.2, experiment 1).

Boots a full PEMS with simulated sensors, cameras and messengers; runs the
two continuous queries of the experiment (manager alerts, cold-area
photos); heats the office, cools the roof, and hot-plugs a new sensor —
printing the resulting timeline of messages and photos.

Run:  python examples/temperature_surveillance.py
"""

from repro.devices.scenario import build_temperature_surveillance
from repro.lang import explain


def main():
    scenario = build_temperature_surveillance()
    pems = scenario.pems

    print("=== Registered continuous queries ===")
    for name, cq in scenario.queries.items():
        print(f"\n-- {name} --")
        print(explain(cq.query))

    print("\n=== Phase 1: ambient conditions (10 instants) ===")
    scenario.run(10)
    sensors = scenario.environment.instantaneous("sensors", pems.clock.now)
    print("Discovered sensors:")
    print(sensors.to_table())
    print(f"Messages so far: {len(scenario.outbox)} (expected: 0)")

    print("\n=== Phase 2: heat the office past 28 degrees ===")
    scenario.sensors["sensor06"].heat(pems.clock.now + 2, pems.clock.now + 8, peak=15.0)
    scenario.run(12)
    print("Alert timeline:")
    for message in scenario.outbox.messages:
        print(f"  t={message.instant:3d}  {message.channel:7s} -> "
              f"{message.address:25s} {message.text!r}")

    print("\n=== Phase 3: cold draft on the roof (photos) ===")
    scenario.sensors["sensor22"].heat(pems.clock.now + 2, pems.clock.now + 8, peak=-10.0)
    scenario.run(12)
    photos = scenario.queries["cold-photos"].emitted
    print(f"Photo stream: {len(photos)} photos")
    for instant, values in photos[:5]:
        schema = scenario.queries["cold-photos"].query.schema
        row = schema.mapping_from_tuple(values)
        print(f"  t={instant:3d}  {row['camera']:9s} area={row['area']:9s} "
              f"quality={row['quality']} blob={row['photo'][:28]!r}")

    print("\n=== Phase 4: hot-plug sensor99 in the office, heat it ===")
    before = len(scenario.outbox)
    new_sensor = scenario.add_sensor("sensor99", "office", base=22.0)
    new_sensor.heat(pems.clock.now + 2, pems.clock.now + 8, peak=12.0)
    scenario.run(12)
    sensors = scenario.environment.instantaneous("sensors", pems.clock.now)
    print("Sensor table now (note sensor99, discovered at runtime):")
    print(sensors.to_table())
    print(f"New alerts from the hot-plugged sensor: {len(scenario.outbox) - before}")

    print("\n=== Totals ===")
    alerts = scenario.queries["alerts"]
    print(f"instants simulated : {pems.clock.now}")
    print(f"stream tuples      : {len(scenario.environment.relation('temperatures'))}")
    print(f"messages sent      : {len(scenario.outbox)}")
    print(f"distinct actions   : {len(alerts.actions)}")
    print(f"photos emitted     : {len(photos)}")


if __name__ == "__main__":
    main()
