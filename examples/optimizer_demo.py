"""Logical optimization of service-oriented queries (Section 3.3).

Shows the rewriting engine and the cost-based optimizer on the canonical
pervasive-query shape: an expensive passive invocation with a selection on
top.  Pushing the selection below the invocation (legal because the
binding pattern is passive) cuts the number of service calls; the same
move on an *active* invocation is refused because it would change the
action set (the Q1/Q1' trap).

Run:  python examples/optimizer_demo.py
"""

from repro.algebra import (
    CostModel,
    Optimizer,
    RewriteTrace,
    check_equivalence,
    col,
    optimize_heuristic,
    scan,
)
from repro.bench.workloads import build_surveillance_workload
from repro.lang import explain


def measure_invocations(query, env):
    registry = env.registry
    registry.reset_invocation_count()
    result = query.evaluate(env, 1)
    return registry.invocation_count, result


def main():
    scenario = build_surveillance_workload(
        num_sensors=40, num_locations=8, with_queries=False
    )
    scenario.run(1)  # let discovery fill the sensors table
    env = scenario.environment

    naive = (
        scan(env, "sensors")
        .invoke("getTemperature")
        .select(col("location").eq("room03"))
        .query("naive")
    )
    print("=== Naive plan: invoke all 40 sensors, then filter ===")
    print(explain(naive))

    trace = RewriteTrace()
    optimized = optimize_heuristic(naive, trace)
    print("\n=== After heuristic rewriting (Table 5 pushdown) ===")
    print(explain(optimized))
    print(f"rules fired: {trace.steps}")

    calls_naive, r1 = measure_invocations(naive, env)
    calls_opt, r2 = measure_invocations(optimized, env)
    print(f"\nservice calls: naive={calls_naive}  optimized={calls_opt}  "
          f"saving={calls_naive - calls_opt} ({100 * (1 - calls_opt / calls_naive):.0f}%)")
    report = check_equivalence(naive, optimized, env, instant=1)
    print(f"Definition 9 equivalence holds: {report.equivalent}")
    assert r1.relation == r2.relation

    print("\n=== Cost-based optimizer ===")
    model = CostModel(env, service_costs={"getTemperature": 250.0}, instant=1)
    result = Optimizer(model).optimize(naive)
    print(f"plans explored : {result.plans_explored}")
    print(f"estimated cost : {result.original_cost.total:,.0f} -> "
          f"{result.cost.total:,.0f}  (x{result.improvement:.1f} better)")
    print(explain(result.query))

    print("\n=== Active invocations are never pushed through ===")
    active_query = (
        scan(env, "contacts")
        .assign("text", "Hot!")
        .invoke("sendMessage")
        .select(col("name").ne("manager00"))
        .query("active")
    )
    rewritten = optimize_heuristic(active_query)
    print(explain(rewritten))
    print("(the selection stays above the sendMessage invocation: moving it"
          " would change the action set)")


if __name__ == "__main__":
    main()
