"""The Serena conjunctive calculus: logic rules over a pervasive
environment (the §7 future-work correspondence, implemented).

Rules are Datalog-style: relational atoms bind variables to attribute
positions — *including virtual ones*, which is where this calculus departs
from the classical one: using a virtual position in a rule asks the
translator to insert the invocation (β) that realizes it.  Shared
variables become natural joins, constants and comparisons become
selections, the head becomes a projection.

Run:  python examples/calculus_rules.py
"""

from repro.devices.paper_example import build_paper_example
from repro.lang import explain
from repro.lang.datalog import compile_rule


def show(env, rule):
    print(f"rule   : {rule}")
    query = compile_rule(rule, env)
    print("algebra:", query.render())
    print(query.evaluate(env).relation.to_table())
    print()


def main():
    paper = build_paper_example()
    env = paper.environment

    print("=== Constants filter; '_' ignores a position ===")
    show(env, "who(n, a) :- contacts(n, a, _, 'email', _);")

    print("=== A virtual position compiles to an invocation ===")
    show(env, "temps(s, t) :- sensors(s, 'office', t), t > 15.0;")

    print("=== Chained realization: photo needs checkPhoto then takePhoto ===")
    rule = "pics(c, p) :- cameras(c, _, q, _, p), q >= 5;"
    query = compile_rule(rule, env)
    print(f"rule   : {rule}")
    print(explain(query))
    result = query.evaluate(env).relation
    print(result.to_table())
    print()

    print("=== Shared variables join atoms (sensors in the same room) ===")
    show(env, "pair(s1, s2, l) :- sensors(s1, l, _), sensors(s2, l, _), s1 != s2;")

    print("=== Active patterns are rejected: the calculus is side-effect free ===")
    try:
        compile_rule("sent(n, s) :- contacts(n, _, _, _, s);", env)
    except Exception as exc:
        print(f"rejected as expected: {exc}")


if __name__ == "__main__":
    main()
