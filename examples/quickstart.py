"""Quickstart: the paper's running example in ten minutes.

Builds the relational pervasive environment of Examples 1–4 (prototypes,
services, the ``contacts`` and ``cameras`` X-Relations), then runs the
Table 4 queries Q1 and Q2 — showing results, action sets (Example 6) and
the equivalence verdicts of Example 7.

Run:  python examples/quickstart.py
"""

from repro.algebra import Query, Selection, check_equivalence, col, scan
from repro.devices.cameras import Camera
from repro.devices.messengers import Outbox, email_service, jabber_service
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.devices.scenario import cameras_schema, contacts_schema
from repro.lang import explain, to_math
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation


def build_environment():
    """Declare prototypes, register services, create X-Relations."""
    env = PervasiveEnvironment()
    for prototype in STANDARD_PROTOTYPES:
        env.declare_prototype(prototype)

    outbox = Outbox()
    env.register_service(email_service(outbox).as_service())
    env.register_service(jabber_service(outbox).as_service())
    for reference, area in (("camera01", "office"), ("camera02", "corridor"),
                            ("webcam07", "roof")):
        env.register_service(Camera(reference, area, quality=7).as_service())

    env.add_relation(
        XRelation.from_mappings(
            contacts_schema(),
            [
                {"name": "Nicolas", "address": "nicolas@elysee.fr", "messenger": "email"},
                {"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"},
                {"name": "Francois", "address": "francois@im.gouv.fr", "messenger": "jabber"},
            ],
        )
    )
    env.add_relation(
        XRelation.from_mappings(
            cameras_schema(),
            [
                {"camera": "camera01", "area": "office"},
                {"camera": "camera02", "area": "corridor"},
                {"camera": "webcam07", "area": "roof"},
            ],
        )
    )
    return env, outbox


def main():
    env, outbox = build_environment()

    print("=== The environment catalog ===")
    print(env.describe())

    print("\n=== The contacts X-Relation (virtual attributes shown as *) ===")
    print(env.instantaneous("contacts", 0).to_table())

    # Q1: send "Bonjour!" to everyone except Carla.
    q1 = (
        scan(env, "contacts")
        .select(col("name").ne("Carla"))
        .assign("text", "Bonjour!")
        .invoke("sendMessage")
        .query("Q1")
    )
    print("\n=== Q1 ===")
    print("math :", to_math(q1))
    print(explain(q1))
    result = q1.evaluate(env)
    print(result.relation.to_table())
    print("Action set (Example 6):")
    print(result.actions.describe())
    print(f"Messages actually sent: {len(outbox)}")

    # Q1': the selection applied after the invocation — NOT equivalent.
    inner = scan(env, "contacts").assign("text", "Bonjour!").invoke("sendMessage").node
    q1_prime = Query(Selection(inner, col("name").ne("Carla")), "Q1'")
    report = check_equivalence(q1, q1_prime, env)
    print("\n=== Q1 vs Q1' (Example 7) ===")
    print(f"same result: {report.same_result}, same actions: {report.same_actions}"
          f" -> equivalent: {report.equivalent}")

    # Q2: photos of the office with quality >= 5.
    q2 = (
        scan(env, "cameras")
        .select(col("area").eq("office"))
        .invoke("checkPhoto")
        .select(col("quality").ge(5))
        .invoke("takePhoto")
        .project("photo")
        .query("Q2")
    )
    print("\n=== Q2 ===")
    print("math :", to_math(q2))
    result = q2.evaluate(env)
    print(result.relation.to_table())
    print(f"Action set of Q2 is empty (passive prototypes): {set(result.actions)}")


if __name__ == "__main__":
    main()
