"""Serena SQL: the declarative front-end, end to end.

The paper mentions a SQL-like language over the Serena algebra ("the
Serena SQL", Section 1.1) without presenting it; this reproduction defines
one (see ``repro/lang/sql.py``).  This example drives a full PEMS with it:

1. DDL creates the catalog;
2. one-shot SQL queries read sensors and send messages;
3. a streaming binding pattern (``USING STREAMING ... AT ...`` — the
   Section 7 future-work feature) turns the sensors table into a
   temperatures stream *declaratively*;
4. a continuous SQL query alerts on hot readings.

Run:  python examples/serena_sql.py
"""

from repro.devices.messengers import Outbox, email_service
from repro.devices.sensors import TemperatureSensor
from repro.lang import compile_sql, explain
from repro.pems.pems import PEMS

DDL = """
PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
PROTOTYPE getTemperature( ) : ( temperature REAL );

EXTENDED RELATION contacts (
    name STRING,
    address STRING,
    text STRING VIRTUAL,
    messenger SERVICE,
    sent BOOLEAN VIRTUAL
) USING BINDING PATTERNS (
    sendMessage[messenger] ( address, text ) : ( sent )
);

EXTENDED RELATION sensors (
    sensor SERVICE,
    location STRING,
    temperature REAL VIRTUAL,
    at TIMESTAMP VIRTUAL
) USING BINDING PATTERNS (
    getTemperature[sensor] ( ) : ( temperature )
);
SERVICE email IMPLEMENTS sendMessage;
"""


def main():
    pems = PEMS()
    pems.execute_ddl(DDL)

    # Bind simulated devices to the declared catalog.
    outbox = Outbox()
    gateway = pems.create_local_erm("gateway")
    gateway.register(email_service(outbox).as_service())
    field = pems.create_local_erm("field")
    sensors = {}
    for reference, location, base in (
        ("sensor01", "corridor", 19.0),
        ("sensor06", "office", 21.0),
        ("sensor07", "office", 21.5),
    ):
        sensors[reference] = TemperatureSensor(reference, location, base)
        field.register(sensors[reference].as_service())
    pems.queries.register_discovery("getTemperature", "sensors", "sensor")
    pems.tables.insert(
        "contacts",
        [{"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"}],
    )
    pems.run(1)

    print("=== One-shot: current office temperatures ===")
    result = pems.queries.execute_sql(
        "SELECT sensor, temperature FROM sensors "
        "WHERE location = 'office' USING getTemperature"
    )
    print(result.relation.to_table())

    print("\n=== One-shot: mean temperature per location (motivating example) ===")
    result = pems.queries.execute_sql(
        "SELECT location, avg(temperature) AS mean_temp, count(*) AS n "
        "FROM sensors USING getTemperature GROUP BY location"
    )
    print(result.relation.to_table())

    print("\n=== One-shot: message Carla (WHERE before the active USING) ===")
    result = pems.queries.execute_sql(
        "SELECT name, sent FROM contacts SET text := 'All systems nominal' "
        "WHERE name = 'Carla' USING sendMessage"
    )
    print(result.relation.to_table())
    print("action set:", result.actions)
    print("outbox    :", outbox.messages[-1])

    print("\n=== Continuous: a declarative temperatures stream (β∞) + alert ===")
    hot = compile_sql(
        "SELECT sensor, location, temperature, at "
        "FROM sensors USING STREAMING getTemperature AT at",
        pems.environment,
    )
    # Window the stream and filter it, still in SQL, via a registered
    # continuous query (the window clause applies to the base stream in
    # FROM; here we inline the β∞ expression through the algebra instead).
    print(explain(hot))
    from repro.algebra import PlanBuilder, col

    alert = (
        PlanBuilder(hot.root)
        .window(1)
        .select(col("temperature").gt(28.0))
        .join(PlanBuilder(compile_sql("SELECT * FROM contacts", pems.environment).root))
        .assign("text", "Hot!")
        .invoke("sendMessage", on_error="skip")
        .query("hot-alerts")
    )
    cq = pems.queries.register_continuous(alert)
    sensors["sensor06"].heat(pems.clock.now + 2, pems.clock.now + 8, peak=12.0)
    pems.run(10)
    print(f"\nalerts sent during the heating episode: {len(cq.action_log)}")
    for message in outbox.messages[1:6]:
        print(f"  t={message.instant:2d}  {message.address}  {message.text!r}")


if __name__ == "__main__":
    main()
