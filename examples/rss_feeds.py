"""The RSS feed scenario (Section 5.2, experiment 2).

Wraps three simulated news feeds into a ``news`` stream, keeps a windowed
table of headlines containing a keyword, and forwards each matching
headline once to a contact — reproducing the paper's "last RSS items
containing a given word, with a one-hour window" experiment.

Run:  python examples/rss_feeds.py
"""

from repro.devices.scenario import build_rss_scenario
from repro.lang import to_math


def main():
    keyword = "Obama"
    window = 30  # "one hour" in clock instants, scaled for the demo
    scenario = build_rss_scenario(keyword=keyword, window=window, rate=0.35, seed=7)

    matching = scenario.queries["matching-news"]
    print(f"=== Continuous query ({keyword!r}, window={window}) ===")
    print(to_math(matching.query))

    print("\n=== Running 60 instants ===")
    previous: frozenset = frozenset()
    for _ in range(60):
        scenario.run(1)
        relation = matching.last_result.relation
        now = scenario.clock.now
        entered = relation.tuples - previous
        left = previous - relation.tuples
        for t in sorted(entered):
            row = relation.schema.mapping_from_tuple(t)
            print(f"  t={now:3d}  + {row['site']:10s} {row['title']!r}")
        for t in sorted(left):
            row = relation.schema.mapping_from_tuple(t)
            print(f"  t={now:3d}  - expired: {row['title']!r} (published t={row['published']})")
        previous = relation.tuples

    print("\n=== Current matching-news table ===")
    print(matching.last_result.relation.to_table())

    print("\n=== Messages forwarded to Carla (one per matching headline) ===")
    for message in scenario.outbox.messages:
        print(f"  t={message.instant:3d}  {message.text!r}")
    texts = [m.text for m in scenario.outbox.messages]
    assert len(texts) == len(set(texts)), "each headline is sent exactly once"
    print(f"\nTotal: {len(texts)} messages, all distinct.")


if __name__ == "__main__":
    main()
