#!/usr/bin/env python
"""CI guard: the subscription server serves a real client end to end.

Starts a :class:`SubscriptionServer` on an ephemeral loopback port with
the wall-clock ticker running, connects an actual TCP client, performs
the ping handshake, registers a continuous query by SQL text, churns
the base relation, waits for at least one delta message, deregisters,
quits, and shuts the server down cleanly.  Any protocol deviation or a
missed delta exits non-zero — the cheapest possible \"does ``.serve``
actually serve\" check for CI.
"""

from __future__ import annotations

import asyncio
import json
import sys

from repro.model.attributes import Attribute
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.pems import PEMS
from repro.server import SubscriptionServer

HOT_SQL = "SELECT device, value FROM readings WHERE value > 50.0"
TICK_INTERVAL = 0.02
TIMEOUT = 10.0


def make_pems() -> PEMS:
    pems = PEMS()
    pems.tables.create_relation(
        ExtendedRelationSchema(
            "readings",
            [
                Attribute("device", DataType.STRING),
                Attribute("value", DataType.REAL),
            ],
        )
    )
    return pems


async def expect(reader: asyncio.StreamReader, kind: str) -> dict:
    line = await asyncio.wait_for(reader.readline(), TIMEOUT)
    if not line:
        raise AssertionError(f"connection closed while waiting for {kind!r}")
    message = json.loads(line)
    if message.get("type") != kind:
        raise AssertionError(f"expected {kind!r}, got {message!r}")
    return message


async def send(writer: asyncio.StreamWriter, **message) -> None:
    writer.write((json.dumps(message) + "\n").encode())
    await writer.drain()


async def main() -> int:
    server = SubscriptionServer(make_pems(), tick_interval=TICK_INTERVAL)
    await server.start()
    print(f"server up on 127.0.0.1:{server.port}")
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
        await send(writer, op="ping")  # the client speaks first
        hello = await expect(reader, "hello")
        await expect(reader, "pong")
        print(f"handshake ok (client {hello['client']})")

        await send(writer, op="register", sql=HOT_SQL, name="hot")
        await expect(reader, "registered")
        # Guarantee an upcoming tick reports a non-empty delta.
        server.pems.tables.insert_tuples(
            "readings",
            [("cam1", 61.5), ("cam2", 83.0), ("cam3", 12.0)],
            instant=server.pems.clock.now + 1,
        )
        delta = await asyncio.wait_for(reader.readline(), TIMEOUT)
        message = json.loads(delta)
        assert message["type"] == "delta" and message["name"] == "hot", message
        assert message["inserted"] or message["deleted"], message
        print(
            f"delta received at instant {message['last']}: "
            f"+{len(message['inserted'])}/-{len(message['deleted'])} rows"
        )

        await send(writer, op="deregister", name="hot")
        await expect(reader, "deregistered")
        await send(writer, op="quit")
        await expect(reader, "bye")
        writer.close()
    finally:
        await server.shutdown()
    if server.pems.queries.continuous_queries:
        raise AssertionError("shutdown left continuous queries registered")
    print("clean shutdown ok")
    return 0


if __name__ == "__main__":
    sys.exit(asyncio.run(main()))
