#!/usr/bin/env python
"""CI guard: the Prometheus text exposition PEMS produces actually parses.

Runs the §5.2 temperature scenario for a few instants with full
observability, renders ``PEMS.obs.to_prometheus()`` and re-parses it with
a strict line grammar (the relevant subset of the Prometheus exposition
format spec): HELP/TYPE comments, sample lines with escaped label values,
histogram ``_bucket``/``_sum``/``_count`` consistency and cumulative
bucket monotonicity.  Exits non-zero on the first violation.
"""

from __future__ import annotations

import re
import sys

SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^{}]*)\})?"
    r" (?P<value>[0-9.eE+-]+|\+Inf|-Inf|NaN)$"
)
LABEL = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')


def split_labels(body: str) -> dict[str, str]:
    """Split a label body on commas outside quoted values."""
    labels: dict[str, str] = {}
    if not body:
        return labels
    parts: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    for part in parts:
        match = LABEL.match(part)
        if match is None:
            raise ValueError(f"malformed label pair {part!r}")
        labels[match.group(1)] = match.group(2)
    return labels


def check(text: str) -> list[str]:
    """All format violations found in ``text`` (empty = clean)."""
    errors: list[str] = []
    types: dict[str, str] = {}
    buckets: dict[str, list[tuple[float, float]]] = {}
    sums: dict[str, bool] = {}
    counts: dict[str, bool] = {}
    samples = 0
    for number, line in enumerate(text.splitlines(), start=1):
        if not line:
            errors.append(f"line {number}: blank line")
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            fields = line.split(" ", 3)
            if len(fields) != 4 or fields[3] not in (
                "counter", "gauge", "histogram"
            ):
                errors.append(f"line {number}: malformed TYPE: {line!r}")
            else:
                types[fields[2]] = fields[3]
            continue
        if line.startswith("#"):
            errors.append(f"line {number}: unknown comment: {line!r}")
            continue
        match = SAMPLE.match(line)
        if match is None:
            errors.append(f"line {number}: malformed sample: {line!r}")
            continue
        samples += 1
        name = match.group("name")
        try:
            labels = split_labels(match.group("labels") or "")
        except ValueError as exc:
            errors.append(f"line {number}: {exc}")
            continue
        value = float(match.group("value").replace("Inf", "inf"))
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if types.get(base) == "histogram":
            series = base + "{" + ",".join(
                f"{k}={v}" for k, v in sorted(labels.items()) if k != "le"
            ) + "}"
            if name.endswith("_bucket"):
                if "le" not in labels:
                    errors.append(f"line {number}: bucket without le label")
                    continue
                bound = float(labels["le"].replace("+Inf", "inf"))
                buckets.setdefault(series, []).append((bound, value))
            elif name.endswith("_sum"):
                sums[series] = True
            elif name.endswith("_count"):
                counts[series] = True
            continue
        if name not in types:
            errors.append(f"line {number}: sample {name!r} has no TYPE")
    for series, pairs in buckets.items():
        if pairs != sorted(pairs):
            errors.append(f"{series}: buckets out of bound order")
        values = [count for _, count in pairs]
        if values != sorted(values):
            errors.append(f"{series}: bucket counts not cumulative")
        if not pairs or pairs[-1][0] != float("inf"):
            errors.append(f"{series}: missing +Inf bucket")
        if not sums.get(series):
            errors.append(f"{series}: missing _sum")
        if not counts.get(series):
            errors.append(f"{series}: missing _count")
    if samples == 0:
        errors.append("no samples rendered at all")
    return errors


def main() -> int:
    from repro.devices.scenario import build_temperature_surveillance

    scenario = build_temperature_surveillance(engine="shared", observe="full")
    scenario.sensors["sensor06"].heat(2, 6, peak=15.0)
    scenario.run(8)
    text = scenario.pems.obs.to_prometheus()
    errors = check(text)
    if errors:
        for error in errors:
            print(f"FAIL: {error}", file=sys.stderr)
        return 1
    families = len({
        line.split(" ")[2] for line in text.splitlines()
        if line.startswith("# TYPE ")
    })
    print(
        f"ok: {families} metric families, "
        f"{sum(1 for l in text.splitlines() if not l.startswith('#'))} samples "
        "— exposition format clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
