#!/usr/bin/env python
"""CI guard: every committed ``BENCH_*.json`` artifact is well-formed.

The benchmark suite writes machine-readable result artifacts to the
repository root (one JSON object per experiment).  This script validates
each one: it must parse as a single JSON object and carry the required
metadata keys — ``mode`` ("smoke" or "full") and an integer ``ticks`` —
so a bench refactor cannot silently commit an artifact downstream
tooling can no longer read.  Exits non-zero listing every violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Keys every benchmark artifact must record.
REQUIRED_KEYS = ("mode", "ticks")
MODES = ("smoke", "full")

#: Per-client latency aggregates every server speed class must carry.
SERVER_CLASS_KEYS = (
    "clients",
    "cadence",
    "delivered",
    "coalesced",
    "dropped",
    "p50_ms_median",
    "p99_ms_median",
)


def check_server(payload: dict, name: str) -> list[str]:
    """``BENCH_server.json`` additionally pins the acceptance shape: a
    ≥1000-subscriber full run with per-class delivery p50/p99 and
    coalesce counts (and a slow class that actually coalesced)."""
    problems: list[str] = []
    subscribers = payload.get("subscribers")
    if not isinstance(subscribers, int):
        problems.append(f"{name}: subscribers is not an integer")
    elif payload.get("mode") == "full" and subscribers < 1000:
        problems.append(
            f"{name}: full-mode run has only {subscribers} subscribers "
            "(the committed artifact must record >= 1000)"
        )
    for key in ("delivery_p50_ms", "delivery_p99_ms"):
        if not isinstance(payload.get(key), (int, float)):
            problems.append(f"{name}: missing numeric {key!r}")
    classes = payload.get("speed_classes")
    if not isinstance(classes, dict) or not classes:
        return problems + [f"{name}: missing 'speed_classes' object"]
    for cls_name, cls in classes.items():
        if not isinstance(cls, dict):
            problems.append(f"{name}: speed class {cls_name!r} is not an object")
            continue
        for key in SERVER_CLASS_KEYS:
            if not isinstance(cls.get(key), (int, float)):
                problems.append(
                    f"{name}: speed class {cls_name!r} missing numeric {key!r}"
                )
    slow = classes.get("slow")
    if isinstance(slow, dict) and not slow.get("coalesced"):
        problems.append(
            f"{name}: slow class never coalesced — the overflow path "
            "was not exercised"
        )
    return problems


#: Per-rebind fields the substitution artifact must carry.
SUBSTITUTION_REBIND_KEYS = (
    "crash_at",
    "rebound_at",
    "rebind_latency_ticks",
    "quarantine_backoff",
    "missed_ticks",
)


def check_substitution(payload: dict, name: str) -> list[str]:
    """``BENCH_substitution.json`` pins the ISSUE 9 acceptance numbers:
    the fault-free overhead of carrying the machinery stays within 5%
    and the rebind happened within the policy backoff + 1 tick with no
    missed readings."""
    problems: list[str] = []
    overhead = payload.get("fault_free_overhead")
    if not isinstance(overhead, (int, float)):
        problems.append(f"{name}: missing numeric 'fault_free_overhead'")
    elif payload.get("mode") == "full" and overhead > 0.05:
        problems.append(
            f"{name}: full-mode fault-free overhead {overhead:.1%} exceeds "
            "the 5% acceptance bound"
        )
    rebind = payload.get("rebind")
    if not isinstance(rebind, dict):
        return problems + [f"{name}: missing 'rebind' object"]
    for key in SUBSTITUTION_REBIND_KEYS:
        if not isinstance(rebind.get(key), (int, float)):
            problems.append(f"{name}: rebind missing numeric {key!r}")
            return problems
    if rebind["rebind_latency_ticks"] > rebind["quarantine_backoff"] + 1:
        problems.append(
            f"{name}: rebind latency {rebind['rebind_latency_ticks']} ticks "
            f"exceeds quarantine_backoff + 1 ({rebind['quarantine_backoff']} + 1)"
        )
    if rebind["missed_ticks"]:
        problems.append(
            f"{name}: {rebind['missed_ticks']} missed readings — the "
            "failover/rebind path did not keep the query reporting"
        )
    return problems


#: Per-scale fields of the city sweep.
CITY_SCALE_KEYS = ("devices", "zones", "queries", "seconds_per_tick")


def check_city(payload: dict, name: str) -> list[str]:
    """``BENCH_city.json`` pins the ISSUE 10 sweep shape: a device-scale
    axis topping out above 2000 devices in full mode, the row-vs-columnar
    and 1-vs-8-zone comparisons, the ± cascade axis with zero missed
    station readings, and a churn sweep."""
    problems: list[str] = []
    scales = payload.get("scales")
    if not isinstance(scales, list) or not scales:
        problems.append(f"{name}: missing non-empty 'scales' list")
    else:
        for index, scale in enumerate(scales):
            if not isinstance(scale, dict):
                problems.append(f"{name}: scales[{index}] is not an object")
                continue
            for key in CITY_SCALE_KEYS:
                if not isinstance(scale.get(key), (int, float)):
                    problems.append(
                        f"{name}: scales[{index}] missing numeric {key!r}"
                    )
        top = scales[-1]
        if (
            payload.get("mode") == "full"
            and isinstance(top, dict)
            and isinstance(top.get("devices"), int)
            and top["devices"] < 2000
        ):
            problems.append(
                f"{name}: full-mode top scale has only {top['devices']} "
                "devices (the committed artifact must record >= 2000)"
            )
    rvc = payload.get("row_vs_columnar")
    if not isinstance(rvc, dict):
        problems.append(f"{name}: missing 'row_vs_columnar' object")
    else:
        for key in ("row_seconds_per_tick", "columnar_seconds_per_tick"):
            if not isinstance(rvc.get(key), (int, float)):
                problems.append(f"{name}: row_vs_columnar missing numeric {key!r}")
    zones = payload.get("zones_1_vs_8")
    if not isinstance(zones, dict):
        problems.append(f"{name}: missing 'zones_1_vs_8' object")
    else:
        for key in ("one_zone_seconds_per_tick", "eight_zone_seconds_per_tick"):
            if not isinstance(zones.get(key), (int, float)):
                problems.append(f"{name}: zones_1_vs_8 missing numeric {key!r}")
    cascade = payload.get("cascade")
    if not isinstance(cascade, dict):
        problems.append(f"{name}: missing 'cascade' object")
    else:
        for key in ("quiet_seconds_per_tick", "cascade_seconds_per_tick", "rebinds"):
            if not isinstance(cascade.get(key), (int, float)):
                problems.append(f"{name}: cascade missing numeric {key!r}")
        if cascade.get("missed_station_readings") != 0:
            problems.append(
                f"{name}: cascade recorded "
                f"{cascade.get('missed_station_readings')!r} missed station "
                "readings — the substitution failover did not keep the "
                "telemetry flowing"
            )
    churn = payload.get("churn")
    if not isinstance(churn, list) or not churn:
        problems.append(f"{name}: missing non-empty 'churn' list")
    else:
        for index, point in enumerate(churn):
            if not isinstance(point, dict) or not isinstance(
                point.get("seconds_per_tick"), (int, float)
            ):
                problems.append(
                    f"{name}: churn[{index}] missing numeric 'seconds_per_tick'"
                )
    return problems


#: Artifact-specific validators beyond the common metadata keys.
EXTRA_CHECKS = {
    "BENCH_server.json": check_server,
    "BENCH_substitution.json": check_substitution,
    "BENCH_city.json": check_city,
}


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: does not parse — {error}"]
    if not isinstance(payload, dict):
        return [f"{path.name}: top level is {type(payload).__name__}, not an object"]
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"{path.name}: missing required key {key!r}")
    mode = payload.get("mode")
    if "mode" in payload and mode not in MODES:
        problems.append(f"{path.name}: mode {mode!r} not in {MODES}")
    if "ticks" in payload and not isinstance(payload["ticks"], int):
        problems.append(f"{path.name}: ticks is not an integer")
    extra = EXTRA_CHECKS.get(path.name)
    if extra is not None and not problems:
        problems.extend(extra(payload, path.name))
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    artifacts = sorted(root.glob("BENCH_*.json"))
    if not artifacts:
        print("no BENCH_*.json artifacts found at the repository root")
        return 1
    problems: list[str] = []
    for path in artifacts:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if not problems:
        names = ", ".join(p.name for p in artifacts)
        print(f"ok: {len(artifacts)} artifacts valid ({names})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
