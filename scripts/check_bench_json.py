#!/usr/bin/env python
"""CI guard: every committed ``BENCH_*.json`` artifact is well-formed.

The benchmark suite writes machine-readable result artifacts to the
repository root (one JSON object per experiment).  This script validates
each one: it must parse as a single JSON object and carry the required
metadata keys — ``mode`` ("smoke" or "full") and an integer ``ticks`` —
so a bench refactor cannot silently commit an artifact downstream
tooling can no longer read.  Exits non-zero listing every violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Keys every benchmark artifact must record.
REQUIRED_KEYS = ("mode", "ticks")
MODES = ("smoke", "full")


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        return [f"{path.name}: does not parse — {error}"]
    if not isinstance(payload, dict):
        return [f"{path.name}: top level is {type(payload).__name__}, not an object"]
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"{path.name}: missing required key {key!r}")
    mode = payload.get("mode")
    if "mode" in payload and mode not in MODES:
        problems.append(f"{path.name}: mode {mode!r} not in {MODES}")
    if "ticks" in payload and not isinstance(payload["ticks"], int):
        problems.append(f"{path.name}: ticks is not an integer")
    return problems


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    artifacts = sorted(root.glob("BENCH_*.json"))
    if not artifacts:
        print("no BENCH_*.json artifacts found at the repository root")
        return 1
    problems: list[str] = []
    for path in artifacts:
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if not problems:
        names = ", ".join(p.name for p in artifacts)
        print(f"ok: {len(artifacts)} artifacts valid ({names})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
