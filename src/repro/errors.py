"""Exception hierarchy for the Serena reproduction.

Every error raised by this library derives from :class:`SerenaError`, so a
caller can catch a single exception type at an API boundary.  The hierarchy
mirrors the layers of the system:

* schema/model construction errors (:class:`SchemaError` and subclasses),
* query construction and typing errors (:class:`QueryError` and subclasses),
* runtime errors of the pervasive environment (:class:`EnvironmentError_`,
  :class:`ServiceError` and subclasses),
* language-layer errors (:class:`ParseError`).
"""

from __future__ import annotations

__all__ = [
    "SerenaError",
    "SchemaError",
    "DuplicateAttributeError",
    "UnknownAttributeError",
    "VirtualAttributeError",
    "BindingPatternError",
    "TypingError",
    "QueryError",
    "InvalidOperatorError",
    "FormulaError",
    "EnvironmentError_",
    "UnknownRelationError",
    "UnknownPrototypeError",
    "ServiceError",
    "UnknownServiceError",
    "PrototypeNotImplementedError",
    "InvocationError",
    "ServiceUnavailableError",
    "ParseError",
    "RewriteError",
]


class SerenaError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# ---------------------------------------------------------------------------
# Model / schema layer
# ---------------------------------------------------------------------------


class SchemaError(SerenaError):
    """A relation schema or extended relation schema is ill-formed."""


class DuplicateAttributeError(SchemaError):
    """The same attribute name appears twice in one schema."""


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that the schema does not contain."""

    def __init__(self, attribute: str, schema_name: str | None = None):
        where = f" in schema {schema_name!r}" if schema_name else ""
        super().__init__(f"unknown attribute {attribute!r}{where}")
        self.attribute = attribute
        self.schema_name = schema_name


class VirtualAttributeError(SchemaError):
    """A virtual attribute was used where only real attributes are allowed.

    Virtual attributes have no value at the tuple level (Definition 3 of the
    paper), so they cannot be projected from tuples, compared in selection
    formulas, or used as binding-pattern inputs before realization.
    """


class BindingPatternError(SchemaError):
    """A binding pattern violates the restrictions of Definition 2."""


class TypingError(SchemaError):
    """A value does not belong to the domain of its attribute's data type."""


# ---------------------------------------------------------------------------
# Algebra / query layer
# ---------------------------------------------------------------------------


class QueryError(SerenaError):
    """A query expression is ill-formed."""


class InvalidOperatorError(QueryError):
    """An operator was applied to operands it does not accept.

    Examples: set operators over incompatible schemas, invocation of a
    binding pattern whose input attributes are not all real yet (Table 3f).
    """


class FormulaError(QueryError):
    """A selection formula is ill-formed or references virtual attributes."""


class RewriteError(QueryError):
    """A rewriting rule was applied where its side conditions do not hold."""


# ---------------------------------------------------------------------------
# Environment / runtime layer
# ---------------------------------------------------------------------------


class EnvironmentError_(SerenaError):
    """A relational pervasive environment is inconsistent or incomplete.

    Named with a trailing underscore to avoid shadowing the (deprecated)
    builtin ``EnvironmentError`` alias of :class:`OSError`.
    """


class UnknownRelationError(EnvironmentError_):
    """A query referenced an X-Relation that the environment does not hold."""

    def __init__(self, name: str):
        super().__init__(f"unknown relation {name!r}")
        self.name = name


class UnknownPrototypeError(EnvironmentError_):
    """A prototype name was referenced that is not declared."""

    def __init__(self, name: str):
        super().__init__(f"unknown prototype {name!r}")
        self.name = name


class ServiceError(SerenaError):
    """Base class for errors related to services and invocations."""


class UnknownServiceError(ServiceError):
    """An invocation targeted a service reference that is not registered."""

    def __init__(self, reference: object):
        super().__init__(f"unknown service reference {reference!r}")
        self.reference = reference


class PrototypeNotImplementedError(ServiceError):
    """The targeted service does not implement the requested prototype."""

    def __init__(self, reference: object, prototype: str):
        super().__init__(
            f"service {reference!r} does not implement prototype {prototype!r}"
        )
        self.reference = reference
        self.prototype = prototype


class InvocationError(ServiceError):
    """A service method raised or returned data outside its output schema."""


class ServiceUnavailableError(InvocationError):
    """An invocation was refused by the fault-tolerance policy without
    reaching the device: the service is quarantined, inside a failure
    backoff window, or over its per-tick attempt budget.

    ``reason`` is one of ``"quarantined"``, ``"backoff"`` or
    ``"attempt-cap"``; ``retry_at`` (when known) is the first instant at
    which the registry will attempt the device again.
    """

    def __init__(self, reference: object, reason: str, retry_at: int | None = None):
        when = f" (retry at instant {retry_at})" if retry_at is not None else ""
        super().__init__(
            f"service {reference!r} unavailable: {reason}{when}"
        )
        self.reference = reference
        self.reason = reason
        self.retry_at = retry_at


# ---------------------------------------------------------------------------
# Language layer
# ---------------------------------------------------------------------------


class ParseError(SerenaError):
    """A Serena DDL or Serena Algebra Language text could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f", column {column}" if column is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column
