"""Plan normalization: a canonical form for syntactic equivalence.

Definition 9 equivalence is semantic (quantifies over all environments);
proving it in general needs the calculus the paper leaves as future work
(Section 7).  What *can* be decided cheaply is equivalence up to the
rewrite rules: two plans are **syntactically equivalent** when they
normalize to the same tree under

1. selection merging and pushdown to a fixed point (the Table 5 /
   classical rules — every step preserves Definition 9),
2. projection-cascade collapsing,
3. canonical selection formulas: conjunctions and disjunctions are
   flattened, deduplicated and re-nested left-deep in sorted render order
   (∧/∨ are associative, commutative and idempotent over booleans).

Join/union operand order is deliberately *not* normalized: commuting a
join permutes the output schema's attribute order, which our strict
X-Relation equality (and Definition 9 as we evaluate it) distinguishes.

Uses: plan-cache keys, optimizer duplicate elimination, and tests that
want "same query, written differently" to compare equal.
"""

from __future__ import annotations

from repro.algebra.formula import And, Formula, Not, Or
from repro.algebra.operators.base import Operator
from repro.algebra.operators.selection import Selection
from repro.algebra.query import Query
from repro.algebra.rewriting import PUSHDOWN_RULES, rewrite_fixpoint

__all__ = ["normalize", "normalize_formula", "syntactically_equivalent"]


def normalize_formula(formula: Formula) -> Formula:
    """Canonicalize a selection formula (see module docstring)."""
    if isinstance(formula, Not):
        return Not(normalize_formula(formula.operand))
    if isinstance(formula, (And, Or)):
        connective = type(formula)
        terms = _flatten(formula, connective)
        normalized = sorted(
            {normalize_formula(term) for term in terms},
            key=lambda term: term.render(),
        )
        result = normalized[0]
        for term in normalized[1:]:
            result = connective(result, term)
        return result
    return formula


def _flatten(formula: Formula, connective: type) -> list[Formula]:
    if isinstance(formula, connective):
        return _flatten(formula.left, connective) + _flatten(
            formula.right, connective
        )
    return [formula]


def _canonicalize_formulas(node: Operator) -> Operator:
    children = [_canonicalize_formulas(child) for child in node.children]
    if children != list(node.children):
        node = node.with_children(children)
    if isinstance(node, Selection):
        canonical = normalize_formula(node.formula)
        if canonical != node.formula:
            node = Selection(node.children[0], canonical)
    return node


def normalize(plan: Operator | Query) -> Operator | Query:
    """Normalize a plan (or a query, preserving its name)."""
    if isinstance(plan, Query):
        normalized = normalize(plan.root)
        assert isinstance(normalized, Operator)
        return Query(normalized, plan.name)
    pushed = rewrite_fixpoint(plan, PUSHDOWN_RULES)
    assert isinstance(pushed, Operator)
    return _canonicalize_formulas(pushed)


def syntactically_equivalent(a: Operator | Query, b: Operator | Query) -> bool:
    """True iff the plans normalize to the same tree.

    Sound but incomplete for Definition 9: a ``True`` verdict guarantees
    equivalence (every normalization step preserves it); ``False`` only
    means the rules cannot relate the plans.
    """
    left = normalize(a)
    right = normalize(b)
    left_root = left.root if isinstance(left, Query) else left
    right_root = right.root if isinstance(right, Query) else right
    return left_root == right_root
