"""Evaluation context for Serena algebra plans.

A context binds a plan evaluation to a relational pervasive environment and
a time instant (Section 3.2: query evaluation occurs at a given instant;
all service invocations in a query occur, formally, simultaneously).

The context also carries:

* the collected :class:`~repro.algebra.actions.Action` objects (Definition 8),
* a per-node state store used by the continuous extension (Section 4.2):
  invocation caches ("a binding pattern is actually invoked only for newly
  inserted tuples") and window/streaming buffers.  One-shot evaluation uses
  a fresh store, which degenerates to the pure Table 3 semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.algebra.actions import Action, ActionSet
from repro.model.environment import PervasiveEnvironment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.algebra.operators.base import Operator

__all__ = ["EvaluationContext"]


class EvaluationContext:
    """Mutable evaluation state threaded through a plan evaluation."""

    def __init__(
        self,
        environment: PervasiveEnvironment,
        instant: int = 0,
        states: dict[int, dict[str, Any]] | None = None,
        continuous: bool = False,
    ):
        self.environment = environment
        self.instant = instant
        self.actions: list[Action] = []
        # True under a ContinuousQuery: per-node state persists across
        # instants, so operators with time-dependent behaviour (deferred
        # invocations) may spread their work over several instants.
        # One-shot evaluation is instantaneous by definition (Section 3.2),
        # so those operators degrade to synchronous behaviour.
        self.continuous = continuous
        # Node-id → state dict.  Supplied by ContinuousQuery to persist
        # across instants; one-shot evaluation leaves it None and gets a
        # fresh, throw-away store.
        self._states: dict[int, dict[str, Any]] = states if states is not None else {}
        # Optional per-instant journal read cache, installed by engines
        # that share it across executors (the shared registry hands one
        # per tick): (relation id, start, stop) → journal chunk list, so
        # N scans over the same XD-Relation fold the journal once.
        self.journal_cache: dict | None = None


    def state(self, node: "Operator") -> dict[str, Any]:
        """Per-node mutable state (empty dict on first access)."""
        return self._states.setdefault(node.uid, {})

    def record_action(self, action: Action) -> None:
        self.actions.append(action)

    @property
    def action_set(self) -> ActionSet:
        """The action set collected so far (duplicates collapse, Def. 8)."""
        return ActionSet(self.actions)

    def at_instant(self, instant: int) -> "EvaluationContext":
        """A context for another instant sharing the same state store.

        Used by the continuous engine to advance time while keeping
        invocation caches and window buffers.  Collected actions are *not*
        shared: each instant has its own action list.
        """
        ctx = EvaluationContext(
            self.environment, instant, self._states, self.continuous
        )
        # Cache keys carry the stop instant, so sharing across instants
        # is sound (entries for other instants simply never match).
        ctx.journal_cache = self.journal_cache
        return ctx
