"""Environment statistics for cost estimation.

The paper lists "a formal definition of cost models dedicated to pervasive
environments" as future work (Section 7).  :mod:`repro.algebra.cost` ships
textbook defaults; this module collects *actual* statistics from an
environment snapshot — per-relation cardinalities and per-attribute
distinct counts — and derives selectivity estimates from them, System-R
style:

* ``A = constant``      → 1 / distinct(A)
* ``A = B``             → 1 / max(distinct(A), distinct(B))
* ``A < c`` etc.        → 1/3 (no histograms; a classic default)
* ``contains``          → 1/10
* ``¬F``                → 1 − sel(F);  ``F ∧ G`` → sel·sel;  ``F ∨ G`` →
  inclusion–exclusion.

Statistics are a snapshot at one instant — in a pervasive environment they
drift as services come and go, so callers refresh them per optimization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.formula import And, Comparison, Formula, Not, Or, TrueFormula
from repro.model.environment import PervasiveEnvironment

__all__ = ["RelationStatistics", "EnvironmentStatistics", "collect_statistics"]

#: Fallback selectivities (match the literature's defaults).
RANGE_SELECTIVITY = 1.0 / 3.0
CONTAINS_SELECTIVITY = 0.1
DEFAULT_EQ_SELECTIVITY = 0.1


@dataclass(frozen=True)
class RelationStatistics:
    """Cardinality and per-real-attribute distinct counts of one relation."""

    cardinality: int
    distinct: dict[str, int] = field(default_factory=dict)

    def distinct_of(self, attribute: str) -> int | None:
        return self.distinct.get(attribute)


class EnvironmentStatistics:
    """Statistics for every relation of an environment snapshot."""

    def __init__(self, relations: dict[str, RelationStatistics], instant: int):
        self._relations = dict(relations)
        self.instant = instant

    def relation(self, name: str) -> RelationStatistics | None:
        return self._relations.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    # -- selectivity estimation ------------------------------------------------

    def distinct_anywhere(self, attribute: str) -> int | None:
        """Max distinct count of ``attribute`` across relations (URSA: the
        attribute denotes the same data everywhere)."""
        counts = [
            stats.distinct[attribute]
            for stats in self._relations.values()
            if attribute in stats.distinct
        ]
        return max(counts) if counts else None

    def selectivity(self, formula: Formula) -> float:
        """Estimated fraction of tuples satisfying ``formula``."""
        if isinstance(formula, TrueFormula):
            return 1.0
        if isinstance(formula, Not):
            return max(0.0, 1.0 - self.selectivity(formula.operand))
        if isinstance(formula, And):
            return self.selectivity(formula.left) * self.selectivity(formula.right)
        if isinstance(formula, Or):
            left = self.selectivity(formula.left)
            right = self.selectivity(formula.right)
            return min(1.0, left + right - left * right)
        assert isinstance(formula, Comparison)
        return self._comparison_selectivity(formula)

    def _comparison_selectivity(self, comparison: Comparison) -> float:
        if comparison.op == "=":
            counts = []
            if comparison.left_is_attr:
                count = self.distinct_anywhere(str(comparison.left))
                if count:
                    counts.append(count)
            if comparison.right_is_attr:
                count = self.distinct_anywhere(str(comparison.right))
                if count:
                    counts.append(count)
            if counts:
                return 1.0 / max(counts)
            return DEFAULT_EQ_SELECTIVITY
        if comparison.op == "!=":
            return 1.0 - self._comparison_selectivity(
                Comparison(
                    comparison.left,
                    "=",
                    comparison.right,
                    comparison.left_is_attr,
                    comparison.right_is_attr,
                )
            )
        if comparison.op == "contains":
            return CONTAINS_SELECTIVITY
        return RANGE_SELECTIVITY

    def __repr__(self) -> str:
        return (
            f"EnvironmentStatistics({len(self._relations)} relations "
            f"@ instant {self.instant})"
        )


def collect_statistics(
    environment: PervasiveEnvironment, instant: int = 0
) -> EnvironmentStatistics:
    """Scan every relation of the environment at ``instant``.

    Infinite XD-Relations are skipped (their prefix cardinality is not a
    useful estimate; windowed access dominates anyway).
    """
    relations: dict[str, RelationStatistics] = {}
    for name in environment.relation_names:
        stored = environment.relation(name)
        if getattr(stored, "infinite", False):
            continue
        relation = environment.instantaneous(name, instant)
        schema = relation.schema
        distinct: dict[str, set] = {a.name: set() for a in schema.real_attributes}
        for values in relation:
            for attribute, value in zip(schema.real_attributes, values):
                distinct[attribute.name].add(value)
        relations[name] = RelationStatistics(
            cardinality=len(relation),
            distinct={name: len(values) for name, values in distinct.items()},
        )
    return EnvironmentStatistics(relations, instant)
