"""Fluent plan builder for the Serena algebra.

The builder mirrors the paper's algebra in method form, so query Q1 of
Table 4 reads almost like its algebraic expression::

    q1 = (
        scan(env, "contacts")
        .select(col("name").ne("Carla"))
        .assign("text", "Bonjour!")
        .invoke("sendMessage")
        .query("Q1")
    )

Each method derives the output schema immediately, so schema errors
surface at the line that causes them.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.formula import Formula
from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import Aggregate, AggregateSpec
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import BaseRelation, Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.operators.setops import Difference, Intersection, Union
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.streaming import Streaming, StreamType
from repro.algebra.operators.window import Window
from repro.algebra.query import Query
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation

__all__ = ["PlanBuilder", "scan", "relation"]


class PlanBuilder:
    """Wraps an operator node and builds on top of it."""

    __slots__ = ("node",)

    def __init__(self, node: Operator):
        self.node = node

    # -- relational operators ------------------------------------------------

    def project(self, *names: str) -> "PlanBuilder":
        """``π_names`` (Table 3a)."""
        return PlanBuilder(Projection(self.node, names))

    def select(self, formula: Formula) -> "PlanBuilder":
        """``σ_formula`` (Table 3b)."""
        return PlanBuilder(Selection(self.node, formula))

    def rename(self, old: str, new: str) -> "PlanBuilder":
        """``ρ_{old→new}`` (Table 3c)."""
        return PlanBuilder(Renaming(self.node, old, new))

    def join(self, other: "PlanBuilder | Operator") -> "PlanBuilder":
        """Natural join (Table 3d)."""
        return PlanBuilder(NaturalJoin(self.node, _node_of(other)))

    # -- set operators ----------------------------------------------------------

    def union(self, other: "PlanBuilder | Operator") -> "PlanBuilder":
        return PlanBuilder(Union(self.node, _node_of(other)))

    def intersect(self, other: "PlanBuilder | Operator") -> "PlanBuilder":
        return PlanBuilder(Intersection(self.node, _node_of(other)))

    def difference(self, other: "PlanBuilder | Operator") -> "PlanBuilder":
        return PlanBuilder(Difference(self.node, _node_of(other)))

    # -- realization operators ------------------------------------------------

    def assign(self, attribute: str, value: object) -> "PlanBuilder":
        """``α_{attribute := constant}`` (Table 3e)."""
        return PlanBuilder(Assignment(self.node, attribute, value, False))

    def assign_from(self, attribute: str, source: str) -> "PlanBuilder":
        """``α_{attribute := other real attribute}`` (Table 3e)."""
        return PlanBuilder(Assignment(self.node, attribute, source, True))

    def invoke(
        self,
        prototype_name: str,
        service_attribute: str | None = None,
        on_error: str = "raise",
        delay: int = 0,
    ) -> "PlanBuilder":
        """``β_bp`` (Table 3f); the binding pattern is looked up in the
        operand schema by prototype name (and service attribute if the
        prototype is bound more than once).  ``delay > 0`` makes the
        invocation asynchronous under continuous queries (§5.1)."""
        bp = self.node.schema.binding_pattern(prototype_name, service_attribute)
        return PlanBuilder(Invocation(self.node, bp, on_error, delay))

    def invoke_stream(
        self,
        prototype_name: str,
        service_attribute: str | None = None,
        on_error: str = "skip",
        timestamp: str | None = None,
    ) -> "PlanBuilder":
        """``β∞_bp`` — a *streaming binding pattern* (paper §7, future
        work): invoke the (passive) pattern at every instant, producing an
        infinite XD-Relation of readings.  ``timestamp`` names a virtual
        TIMESTAMP attribute realized with the emission instant."""
        bp = self.node.schema.binding_pattern(prototype_name, service_attribute)
        return PlanBuilder(
            StreamingInvocation(self.node, bp, on_error, timestamp)
        )

    # -- continuous operators ------------------------------------------------

    def window(self, period: int) -> "PlanBuilder":
        """``W[period]`` (Section 4.2)."""
        return PlanBuilder(Window(self.node, period))

    def stream(self, kind: StreamType | str = StreamType.INSERTION) -> "PlanBuilder":
        """``S[type]`` (Section 4.2)."""
        return PlanBuilder(Streaming(self.node, kind))

    # -- extensions ------------------------------------------------------------

    def aggregate(
        self,
        group_by: Sequence[str],
        *aggregates: AggregateSpec | tuple,
    ) -> "PlanBuilder":
        """Grouping/aggregation; each aggregate is an
        :class:`AggregateSpec` or a ``(function, attribute, result_name)``
        tuple."""
        specs = [
            a if isinstance(a, AggregateSpec) else AggregateSpec(*a)
            for a in aggregates
        ]
        return PlanBuilder(Aggregate(self.node, group_by, specs))

    # -- finishing ---------------------------------------------------------------

    def query(self, name: str | None = None) -> Query:
        """Wrap the built plan into a :class:`Query`."""
        return Query(self.node, name)

    @property
    def schema(self):
        return self.node.schema

    def __repr__(self) -> str:
        return f"<PlanBuilder {self.node.render()}>"


def _node_of(other: "PlanBuilder | Operator") -> Operator:
    return other.node if isinstance(other, PlanBuilder) else other


def scan(environment: PervasiveEnvironment, name: str) -> PlanBuilder:
    """Start a plan from the environment relation called ``name``.

    Detects whether the relation is an infinite XD-Relation (a stream) to
    type the plan correctly.
    """
    stored = environment.relation(name)
    schema = environment.schema(name).with_name(name)
    stream = bool(getattr(stored, "infinite", False))
    return PlanBuilder(Scan(name, schema, stream))


def relation(xrelation: XRelation) -> PlanBuilder:
    """Start a plan from a literal X-Relation."""
    return PlanBuilder(BaseRelation(xrelation))
