"""Query equivalence (Definition 9).

Two queries ``q1`` and ``q2`` over a relational pervasive environment
schema are equivalent iff, for any environment instance evaluated at the
same discrete time instant, they produce the same resulting X-Relation
*and* the same action set — they may differ in the invocations of
*passive* binding patterns they trigger (Example 7: Q2 ≡ Q2′ although they
invoke ``takePhoto`` on different numbers of tuples).

True equivalence quantifies over all environments; this module provides the
empirical check used by the rewriting engine's tests and benchmarks:
evaluating both queries on concrete environments (typically randomized
ones) and comparing results and action sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.algebra.query import Query
from repro.model.environment import PervasiveEnvironment

__all__ = ["EquivalenceReport", "check_equivalence", "equivalent_on"]


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of an empirical equivalence check on one environment."""

    same_result: bool
    same_actions: bool
    instant: int

    @property
    def equivalent(self) -> bool:
        """Definition 9: same result AND same action set."""
        return self.same_result and self.same_actions


def check_equivalence(
    q1: Query,
    q2: Query,
    environment: PervasiveEnvironment,
    instant: int = 0,
) -> EquivalenceReport:
    """Evaluate both queries at ``instant`` and compare per Definition 9.

    Both queries run against the same environment state; services must be
    deterministic at a given instant (Section 3.2) for the comparison to be
    meaningful — all simulated devices in :mod:`repro.devices` are.
    """
    r1 = q1.evaluate(environment, instant)
    r2 = q2.evaluate(environment, instant)
    return EquivalenceReport(
        same_result=r1.relation == r2.relation,
        same_actions=r1.actions == r2.actions,
        instant=instant,
    )


def equivalent_on(
    q1: Query,
    q2: Query,
    environments: Iterable[PervasiveEnvironment],
    instants: Iterable[int] = (0,),
) -> bool:
    """True iff the queries are empirically equivalent on every given
    environment at every given instant."""
    instants = tuple(instants)
    for environment in environments:
        for instant in instants:
            if not check_equivalence(q1, q2, environment, instant).equivalent:
                return False
    return True
