"""Actions and action sets (Definition 8).

An *action* is a triple ``(bp, s, t)``: an active binding pattern, a
service reference and an input data tuple.  The *action set* of a query is
the set of actions triggered by invocation operators over active binding
patterns during its evaluation — it captures the impact of the query on the
physical environment (e.g. the set of messages actually sent) and is half
of the query-equivalence criterion of Definition 9.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.model.binding import BindingPattern

__all__ = ["Action", "ActionSet"]


@dataclass(frozen=True)
class Action:
    """One invocation of an active binding pattern.

    Attributes
    ----------
    binding_pattern:
        The active binding pattern that was invoked.
    service:
        The service reference the invocation targeted (``u[service_bp]``).
    inputs:
        The input data tuple, in prototype input-schema order
        (``u[schema(Input_prototype_bp)]``).
    """

    binding_pattern: BindingPattern
    service: object
    inputs: tuple

    def describe(self) -> str:
        """Render like Example 6: ``(bp1, email, (nicolas@elysee.fr, Bonjour!))``."""
        values = ", ".join(str(v) for v in self.inputs)
        return f"({self.binding_pattern.prototype.name}, {self.service}, ({values}))"

    def __str__(self) -> str:
        return self.describe()


class ActionSet(frozenset):
    """A set of :class:`Action` with deterministic rendering."""

    def __new__(cls, actions: Iterable[Action] = ()):
        return super().__new__(cls, actions)

    def describe(self) -> str:
        """Deterministically ordered, one action per line."""
        ordered = sorted(
            self,
            key=lambda a: (a.binding_pattern.prototype.name, str(a.service), a.inputs),
        )
        return "\n".join(a.describe() for a in ordered)

    def __str__(self) -> str:
        return "{" + ", ".join(
            a.describe()
            for a in sorted(
                self,
                key=lambda a: (
                    a.binding_pattern.prototype.name,
                    str(a.service),
                    a.inputs,
                ),
            )
        ) + "}"
