"""Logical optimizer for Serena queries.

The paper observes that once the algebra has formal semantics, "logical
query optimization is now possible in our setting" (Section 3.2) and lists
cost-based optimization as future work (Section 7).  This module provides
both layers:

* :func:`optimize_heuristic` — the safe pushdown strategy of Section 3.3:
  merge and push selections and projections down, past passive invocations
  and into join operands, so that expensive service invocations run on as
  few tuples as possible.  Active invocations are never moved.

* :class:`Optimizer` — a small cost-based search: starting from the input
  plan, it explores the space reachable through the full (bidirectional)
  rule set, scores each distinct plan with a :class:`CostModel`, and
  returns the cheapest.  The search is breadth-first with a plan budget;
  for the plan sizes of pervasive queries (a handful of operators) it
  explores the space exhaustively.

Every transformation preserves Definition 9 equivalence by construction
(see :mod:`repro.algebra.rewriting`), which the property-based tests check
empirically on randomized environments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.cost import CostModel, PlanCost
from repro.algebra.operators.base import Operator
from repro.algebra.query import Query
from repro.algebra.rewriting import (
    DEFAULT_RULES,
    PUSHDOWN_RULES,
    RewriteTrace,
    rewrite_fixpoint,
)

__all__ = ["optimize_heuristic", "Optimizer", "OptimizationResult"]


def optimize_heuristic(query: Query, trace: RewriteTrace | None = None) -> Query:
    """Apply the pushdown rule set to a fixed point (Section 3.3 strategy)."""
    rewritten = rewrite_fixpoint(query, PUSHDOWN_RULES, trace=trace)
    assert isinstance(rewritten, Query)
    return rewritten


@dataclass(frozen=True)
class OptimizationResult:
    """Outcome of a cost-based optimization."""

    query: Query
    cost: PlanCost
    original_cost: PlanCost
    plans_explored: int

    @property
    def improvement(self) -> float:
        """Cost ratio original/optimized (≥ 1 when optimization helped)."""
        if self.cost.total == 0:
            return 1.0
        return self.original_cost.total / self.cost.total


class Optimizer:
    """Cost-based plan search over the rewrite-rule space.

    Parameters
    ----------
    cost_model:
        Scores candidate plans.
    plan_budget:
        Maximum number of distinct plans to explore.
    engine:
        What execution the scores should model.  ``None`` (default) uses
        the one-shot cost — the right objective for :meth:`Query.evaluate`.
        ``"incremental"`` or ``"naive"`` score plans by *steady-state tick
        cost* under that continuous engine
        (:meth:`~repro.algebra.cost.CostModel.tick_cost`), so plan choice
        accounts for the physical layer: e.g. under the incremental engine
        a selection pushed below a join shrinks the persisted hash indexes
        and the per-tick deltas, not just a one-shot intermediate result.
    churn:
        Per-instant change fraction assumed by the tick-cost model (only
        used when ``engine`` is set).
    backend:
        Physical backend the tick-cost scores should model (only used
        when ``engine`` is set): under ``"columnar"`` the
        natively-batched operators are scored at
        :data:`~repro.algebra.cost.COLUMNAR_TUPLE_FACTOR` of their row
        per-delta-tuple cost, which shifts plan choice toward shapes the
        batch executors accelerate (e.g. it widens the margin of a
        selection pushed below a β node, whose row executor keeps full
        price).
    """

    def __init__(
        self,
        cost_model: CostModel,
        plan_budget: int = 500,
        engine: str | None = None,
        churn: float | None = None,
        backend: str | None = None,
    ):
        self.cost_model = cost_model
        self.plan_budget = plan_budget
        self.engine = engine
        self.churn = churn
        self.backend = backend

    def _score(self, plan: Operator | Query) -> PlanCost:
        if self.engine is None:
            return self.cost_model.cost(plan)
        kwargs = {} if self.churn is None else {"churn": self.churn}
        if self.backend is not None:
            kwargs["backend"] = self.backend
        return self.cost_model.tick_cost(plan, engine=self.engine, **kwargs)

    def optimize(self, query: Query) -> OptimizationResult:
        """Explore equivalent plans breadth-first; return the cheapest.

        The input plan is always a candidate, so the result is never worse
        than the input under the cost model.
        """
        original_cost = self._score(query)
        seen: dict[Operator, PlanCost] = {}
        frontier = [query.root]
        seen[query.root] = original_cost
        explored = 1
        while frontier and explored < self.plan_budget:
            node = frontier.pop(0)
            for neighbor in self._neighbors(node):
                if neighbor in seen:
                    continue
                seen[neighbor] = self._score(neighbor)
                frontier.append(neighbor)
                explored += 1
                if explored >= self.plan_budget:
                    break
        best_root = min(seen, key=lambda plan: seen[plan].total)
        return OptimizationResult(
            query=Query(best_root, query.name),
            cost=seen[best_root],
            original_cost=original_cost,
            plans_explored=explored,
        )

    def choose(self, candidates: list[Query]) -> Query:
        """Score candidate queries *as written* and return the cheapest
        (first wins a tie).  Unlike :meth:`optimize`, no rewriting
        happens — this ranks genuinely different plans, e.g. the same
        information requested from two different providers, where the
        cost model's substitution-risk premium
        (:data:`~repro.algebra.cost.UNSUBSTITUTABLE_RISK_PREMIUM`)
        breaks ties toward prototypes a spare can absorb."""
        if not candidates:
            raise ValueError("choose() needs at least one candidate")
        return min(candidates, key=lambda query: self._score(query).total)

    def _neighbors(self, root: Operator) -> list[Operator]:
        """All plans one rule application away (any rule, any node)."""
        neighbors: list[Operator] = []
        for rule in DEFAULT_RULES:
            rewritten = _apply_everywhere(root, rule.transform)
            neighbors.extend(rewritten)
        return neighbors


def _apply_everywhere(root: Operator, transform) -> list[Operator]:
    """Every tree obtained by applying ``transform`` at exactly one node."""
    results: list[Operator] = []
    replacement = transform(root)
    if replacement is not None:
        results.append(replacement)
    for position, child in enumerate(root.children):
        for rewritten_child in _apply_everywhere(child, transform):
            children = list(root.children)
            children[position] = rewritten_child
            results.append(root.with_children(children))
    return results
