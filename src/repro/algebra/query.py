"""Queries over relational pervasive environments (Definition 7).

A query is a well-formed composition of Serena algebra operators whose
leaves are X-Relations.  :class:`Query` wraps a plan root and provides
one-shot evaluation (Section 3.2: the whole query is evaluated at one
discrete time instant, so all service invocations formally occur
simultaneously) returning both the resulting X-Relation and the collected
action set (Definition 8).

Continuous execution of queries (re-evaluation at every instant) is
provided by :class:`repro.continuous.continuous_query.ContinuousQuery`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.actions import ActionSet
from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Query", "QueryResult", "NodeProfile", "QueryProfile"]


@dataclass(frozen=True)
class NodeProfile:
    """Measured per-operator statistics from one profiled evaluation."""

    symbol: str
    depth: int
    output_tuples: int


@dataclass(frozen=True)
class QueryProfile:
    """EXPLAIN ANALYZE-style report: the plan annotated with the *actual*
    cardinality each operator produced, plus the invocation total."""

    result: "QueryResult"
    nodes: tuple[NodeProfile, ...]
    invocations: int

    def render(self) -> str:
        lines = []
        for node in self.nodes:
            pad = "  " * node.depth
            lines.append(f"{pad}{node.symbol}  [{node.output_tuples} tuples]")
        lines.append(f"service invocations: {self.invocations}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class QueryResult:
    """The outcome of a one-shot query evaluation.

    Attributes
    ----------
    relation:
        The resulting X-Relation.
    actions:
        The action set induced by the evaluation (Definition 8): the
        invocations of *active* binding patterns that were triggered.
    instant:
        The instant at which the query was evaluated.
    """

    relation: XRelation
    actions: ActionSet
    instant: int

    def __iter__(self):
        return iter(self.relation)

    def __len__(self) -> int:
        return len(self.relation)


class Query:
    """A Serena algebra expression, ready for evaluation."""

    __slots__ = ("root", "name")

    def __init__(self, root: Operator, name: str | None = None):
        self.root = root
        self.name = name

    @property
    def schema(self) -> ExtendedRelationSchema:
        """The extended relation schema of the query result."""
        return self.root.schema

    @property
    def is_stream(self) -> bool:
        """True iff the result is an infinite XD-Relation, like Q4 of
        Table 4 (its last operator is a streaming operator)."""
        return self.root.is_stream

    def evaluate(
        self, environment: PervasiveEnvironment, instant: int = 0
    ) -> QueryResult:
        """One-shot evaluation at ``instant``.

        Uses a fresh evaluation context, so every invocation operator
        invokes for every operand tuple (the pure Table 3f semantics).
        """
        ctx = EvaluationContext(environment, instant)
        relation = self.root.evaluate(ctx)
        return QueryResult(relation, ctx.action_set, instant)

    def evaluate_in(self, ctx: EvaluationContext) -> QueryResult:
        """Evaluation inside an existing context (used by the continuous
        engine to persist per-node state across instants)."""
        relation = self.root.evaluate(ctx)
        return QueryResult(relation, ctx.action_set, ctx.instant)

    def profile(
        self, environment: PervasiveEnvironment, instant: int = 0
    ) -> QueryProfile:
        """One-shot evaluation with per-operator runtime statistics.

        Evaluates the query once (a fresh context, like :meth:`evaluate`),
        then reads each node's memoized instantaneous result to report the
        *actual* output cardinalities — the runtime counterpart of the
        cost model's estimates, and the tool for spotting where a plan
        explodes or where invocations multiply.
        """
        registry = environment.registry
        before = registry.invocation_count
        ctx = EvaluationContext(environment, instant)
        relation = self.root.evaluate(ctx)
        result = QueryResult(relation, ctx.action_set, instant)
        nodes: list[NodeProfile] = []

        def visit(node: Operator, depth: int) -> None:
            nodes.append(
                NodeProfile(node.symbol(), depth, len(node.evaluate(ctx)))
            )
            for child in node.children:
                visit(child, depth + 1)

        visit(self.root, 0)
        return QueryProfile(
            result, tuple(nodes), registry.invocation_count - before
        )

    def render(self) -> str:
        """The query in the Serena Algebra Language."""
        return self.root.render()

    def explain(self) -> str:
        """Indented operator tree (like an EXPLAIN plan)."""
        return self.root.tree()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.root == other.root

    def __hash__(self) -> int:
        return hash(self.root)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Query{label} {self.render()}>"
