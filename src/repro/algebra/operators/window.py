"""The window operator W[period] (Section 4.2).

``W[period]`` computes a finite XD-Relation from an infinite one: at every
instant τ, its instantaneous relation is the set of tuples *inserted*
during the last ``period`` instants, i.e. at instants in
``(τ − period, τ]``.  With ``period = 1`` (as in queries Q3/Q4 of
Table 4), only the tuples inserted at the current instant are visible —
they are not kept for following instants.

The operator does not modify the schema apart from the finite/infinite
status, so it transparently handles virtual attributes and binding
patterns.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Window"]


class Window(Operator):
    """``W[period](r)`` over an infinite XD-Relation.

    When the operand is a scan of a journaled XD-Relation, window contents
    are read directly from the journal — exact and stateless, so one-shot
    queries over base streams see the full window.  For derived streams
    (outputs of the streaming operator), a buffer of per-instant insertions
    is kept in the evaluation context: under a continuous query it persists
    across instants; in one-shot evaluation only the current instant's
    insertions are visible.
    """

    __slots__ = ("period",)

    def __init__(self, child: Operator, period: int):
        if not child.is_stream:
            raise InvalidOperatorError(
                "window: operand must be an infinite XD-Relation (a stream)"
            )
        if not isinstance(period, int) or period < 1:
            raise InvalidOperatorError(
                f"window: period must be a positive integer, got {period!r}"
            )
        self.period = period
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        return child.schema

    @property
    def is_stream(self) -> bool:
        return False

    def with_children(self, children: Sequence[Operator]) -> "Window":
        (child,) = children
        return Window(child, self.period)

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        from repro.algebra.operators.scan import Scan

        (child,) = self.children
        if isinstance(child, Scan):
            stored = ctx.environment.relation(child.name)
            journal_window = getattr(stored, "window", None)
            if journal_window is not None:
                return XRelation(
                    self.schema,
                    journal_window(ctx.instant, self.period),
                    validated=True,
                )
        state = ctx.state(self)
        buffer: dict[int, frozenset[tuple]] = state.setdefault("buffer", {})
        if ctx.instant not in buffer:
            buffer[ctx.instant] = child.inserted(ctx)
        horizon = ctx.instant - self.period
        for instant in [i for i in buffer if i <= horizon or i > ctx.instant]:
            del buffer[instant]
        tuples: set[tuple] = set()
        for inserted in buffer.values():
            tuples |= inserted
        return XRelation(self.schema, tuples, validated=True)

    def render(self) -> str:
        (child,) = self.children
        return f"window[{self.period}]({child.render()})"

    def symbol(self) -> str:
        return f"W[{self.period}]"

    def _signature(self) -> tuple:
        return (self.period,)
