"""The selection operator σ (Table 3b).

Selection does not modify the schema.  Its formula can only reference real
attributes (virtual attributes have no value) — this is validated at plan
construction time.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.formula import Formula
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Selection"]


class Selection(Operator):
    """``σ_F(r)`` with ``F`` a selection formula over ``realSchema(R)``."""

    __slots__ = ("formula",)

    def __init__(self, child: Operator, formula: Formula):
        if child.is_stream:
            raise InvalidOperatorError(
                "selection: operand must be finite (apply a window first)"
            )
        formula.validate(child.schema)
        self.formula = formula
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        return child.schema

    def with_children(self, children: Sequence[Operator]) -> "Selection":
        (child,) = children
        return Selection(child, self.formula)

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        (child,) = self.children
        relation = child.evaluate(ctx)
        schema = relation.schema
        needed = sorted(self.formula.attributes())
        positions = {n: schema.real_position(n) for n in needed}
        kept = []
        for t in relation:
            row = {n: t[p] for n, p in positions.items()}
            if self.formula.evaluate(row):
                kept.append(t)
        return XRelation(self.schema, kept, validated=True)

    def render(self) -> str:
        (child,) = self.children
        return f"select[{self.formula.render()}]({child.render()})"

    def symbol(self) -> str:
        return f"σ[{self.formula.render()}]"

    def _signature(self) -> tuple:
        return (self.formula,)
