"""Serena algebra operators (Table 3 + Section 4.2 + extensions)."""

from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
)
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import BaseRelation, Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.operators.setops import Difference, Intersection, Union
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.streaming import Streaming, StreamType
from repro.algebra.operators.window import Window

__all__ = [
    "Aggregate",
    "AggregateFunction",
    "AggregateSpec",
    "Assignment",
    "BaseRelation",
    "Difference",
    "Intersection",
    "Invocation",
    "NaturalJoin",
    "Operator",
    "Projection",
    "Renaming",
    "Scan",
    "Selection",
    "Streaming",
    "StreamingInvocation",
    "StreamType",
    "Union",
    "Window",
]
