"""The renaming operator ρ (Table 3c).

Renaming replaces one attribute name by a fresh one, preserving the
attribute's real/virtual status and its position.  Binding patterns follow:
a pattern whose *service attribute* is renamed is rewritten to use the new
name; a pattern whose prototype *input or output* attribute is renamed is
dropped (prototype schemas are fixed by the prototype declaration, so the
pattern can no longer match the relation's attributes).
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Renaming"]


class Renaming(Operator):
    """``ρ_{A→B}(r)`` with ``A ∈ schema(R)`` and ``B ∉ schema(R)``."""

    __slots__ = ("old", "new")

    def __init__(self, child: Operator, old: str, new: str):
        if child.is_stream:
            raise InvalidOperatorError(
                "renaming: operand must be finite (apply a window first)"
            )
        self.old = old
        self.new = new
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        return child.schema.rename(self.old, self.new)

    def with_children(self, children: Sequence[Operator]) -> "Renaming":
        (child,) = children
        return Renaming(child, self.old, self.new)

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        (child,) = self.children
        # Renaming does not reorder attributes, so tuple layouts coincide.
        return XRelation(self.schema, child.evaluate(ctx).tuples, validated=True)

    def render(self) -> str:
        (child,) = self.children
        return f"rename[{self.old} -> {self.new}]({child.render()})"

    def symbol(self) -> str:
        return f"ρ[{self.old}→{self.new}]"

    def _signature(self) -> tuple:
        return (self.old, self.new)
