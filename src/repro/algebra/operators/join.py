"""The natural join operator ⋈ (Table 3d).

The join attributes are the intersection of the two schemas.  Because
tuples cannot be projected onto virtual attributes, only join attributes
that are *real in both operands* imply a join predicate; if every join
attribute is virtual in at least one operand, the join degenerates, at the
tuple level, to a Cartesian product.

A join attribute that is real in one operand and virtual in the other
becomes real in the result — an *implicit realization* of the virtual
attribute (Section 3.1.3).

Binding patterns from both operands are propagated, minus those whose
output attributes became real through the join.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["NaturalJoin"]


class NaturalJoin(Operator):
    """``r1 ⋈ r2`` over extended relation schemas."""

    __slots__ = ()

    def __init__(self, left: Operator, right: Operator):
        if left.is_stream or right.is_stream:
            raise InvalidOperatorError(
                "natural join: operands must be finite (apply a window first)"
            )
        super().__init__((left, right))

    def _derive_schema(self) -> ExtendedRelationSchema:
        left, right = self.children
        return left.schema.join(right.schema)

    def with_children(self, children: Sequence[Operator]) -> "NaturalJoin":
        left, right = children
        return NaturalJoin(left, right)

    @property
    def predicate_names(self) -> tuple[str, ...]:
        """Join attributes that are real in both operands (sorted)."""
        left, right = self.children
        return tuple(sorted(left.schema.real_names & right.schema.real_names))

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        left, right = self.children
        left_rel = left.evaluate(ctx)
        right_rel = right.evaluate(ctx)
        lschema, rschema = left_rel.schema, right_rel.schema
        keys = self.predicate_names

        # Output tuple layout: real attributes of the result schema in
        # order; each value comes from the left tuple when the attribute is
        # real on the left, otherwise from the right tuple.
        out_sources: list[tuple[bool, int]] = []
        for attribute in self.schema.real_attributes:
            name = attribute.name
            if name in lschema.real_names:
                out_sources.append((True, lschema.real_position(name)))
            else:
                out_sources.append((False, rschema.real_position(name)))

        lkey = [lschema.real_position(n) for n in keys]
        rkey = [rschema.real_position(n) for n in keys]

        buckets: dict[tuple, list[tuple]] = defaultdict(list)
        for rt in right_rel:
            buckets[tuple(rt[p] for p in rkey)].append(rt)

        out = []
        for lt in left_rel:
            for rt in buckets.get(tuple(lt[p] for p in lkey), ()):
                out.append(
                    tuple(
                        lt[p] if from_left else rt[p]
                        for from_left, p in out_sources
                    )
                )
        return XRelation(self.schema, out, validated=True)

    def render(self) -> str:
        left, right = self.children
        return f"join({left.render()}, {right.render()})"

    def symbol(self) -> str:
        keys = self.predicate_names
        return "⋈" + (f"[{', '.join(keys)}]" if keys else "[×]")
