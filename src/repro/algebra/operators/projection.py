"""The projection operator π (Table 3a).

Projection reduces the schema of an X-Relation — both its real and virtual
parts.  Binding patterns survive only if their service attribute, input
attributes and output attributes all remain in the projected schema.

At the tuple level, tuples are projected onto the *real* attributes of the
kept set: ``s = { t[Y ∩ realSchema(R)] | t ∈ r }``.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Projection"]


class Projection(Operator):
    """``π_Y(r)`` with ``Y ⊆ schema(R)``.

    ``names`` may include virtual attributes (they stay virtual in the
    result, usable by later realization operators).
    """

    __slots__ = ("names",)

    def __init__(self, child: Operator, names: Sequence[str]):
        if child.is_stream:
            raise InvalidOperatorError(
                "projection: operand must be finite (apply a window first)"
            )
        if not names:
            raise InvalidOperatorError("projection: Y must be non-empty")
        seen = set()
        for name in names:
            if name in seen:
                raise InvalidOperatorError(
                    f"projection: duplicate attribute {name!r} in Y"
                )
            seen.add(name)
        self.names = tuple(names)
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        return child.schema.project(self.names)

    def with_children(self, children: Sequence[Operator]) -> "Projection":
        (child,) = children
        return Projection(child, self.names)

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        (child,) = self.children
        relation = child.evaluate(ctx)
        kept_real = [n for n in self.schema.names if n in self.schema.real_names]
        source = relation.schema
        positions = [source.real_position(n) for n in kept_real]
        return XRelation(
            self.schema,
            (tuple(t[p] for p in positions) for t in relation),
            validated=True,
        )

    def render(self) -> str:
        (child,) = self.children
        return f"project[{', '.join(self.names)}]({child.render()})"

    def symbol(self) -> str:
        return f"π[{', '.join(self.names)}]"

    def _signature(self) -> tuple:
        return (self.names,)
