"""The streaming operator S[type] (Section 4.2).

``S[type]`` computes an infinite XD-Relation from a finite one by
inserting, at every instant, the tuples that are inserted / deleted /
present at this instant, depending on the operator ``type``:

* ``S[insertion]`` — tuples that entered the operand at this instant,
* ``S[deletion]`` — tuples that left the operand at this instant,
* ``S[heartbeat]`` — all tuples present at this instant.

Like the window operator, it does not modify the schema apart from its
finite/infinite status.  A streaming operator at the root of a query makes
the query result a stream (like Q4 of Table 4: a stream of photos).
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Streaming", "StreamType"]


class StreamType(enum.Enum):
    """The three kinds of streaming operators of Section 4.2."""

    INSERTION = "insertion"
    DELETION = "deletion"
    HEARTBEAT = "heartbeat"

    @classmethod
    def from_name(cls, name: str) -> "StreamType":
        try:
            return cls(name.lower())
        except ValueError:
            raise InvalidOperatorError(
                f"unknown streaming type {name!r} "
                f"(expected insertion, deletion or heartbeat)"
            ) from None


class Streaming(Operator):
    """``S[type](r)`` over a finite XD-Relation."""

    __slots__ = ("kind",)

    def __init__(self, child: Operator, kind: StreamType | str = StreamType.INSERTION):
        if child.is_stream:
            raise InvalidOperatorError(
                "streaming: operand must be a finite XD-Relation"
            )
        if isinstance(kind, str):
            kind = StreamType.from_name(kind)
        self.kind = kind
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        return child.schema

    @property
    def is_stream(self) -> bool:
        return True

    def with_children(self, children: Sequence[Operator]) -> "Streaming":
        (child,) = children
        return Streaming(child, self.kind)

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        (child,) = self.children
        if self.kind is StreamType.INSERTION:
            return XRelation(self.schema, child.inserted(ctx), validated=True)
        if self.kind is StreamType.DELETION:
            return XRelation(self.schema, child.deleted(ctx), validated=True)
        return XRelation(self.schema, child.evaluate(ctx).tuples, validated=True)

    def inserted(self, ctx: EvaluationContext) -> frozenset[tuple]:
        """Every tuple of the instantaneous result is an insertion: the
        output stream is append-only (Section 4.1)."""
        return self.evaluate(ctx).tuples

    def deleted(self, ctx: EvaluationContext) -> frozenset[tuple]:
        return frozenset()

    def render(self) -> str:
        (child,) = self.children
        return f"stream[{self.kind.value}]({child.render()})"

    def symbol(self) -> str:
        return f"S[{self.kind.value}]"

    def _signature(self) -> tuple:
        return (self.kind,)
