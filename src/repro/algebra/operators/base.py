"""Operator framework for the Serena algebra.

Every operator of Table 3 (plus the continuous operators of Section 4.2 and
the extension operators) is a node in a logical plan tree.  A node:

* derives its output :class:`ExtendedRelationSchema` at construction time —
  this is where the schema rows of Table 3 (including binding-pattern
  propagation) are enforced, so ill-typed plans fail before evaluation;
* evaluates to an :class:`XRelation` at a given instant via
  :meth:`Operator.evaluate`;
* reports per-instant *deltas* (:meth:`inserted` / :meth:`deleted`) for the
  continuous extension: by default deltas are computed by diffing the
  instantaneous results of consecutive instants, while leaves over journaled
  XD-Relations report exact deltas.

Nodes are immutable once built; rewriting (Section 3.3) produces new trees
via :meth:`with_children`.
"""

from __future__ import annotations

import abc
import itertools
from typing import Iterator, Sequence

from repro.algebra.context import EvaluationContext
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Operator"]

_uid_counter = itertools.count(1)


class Operator(abc.ABC):
    """A node of a Serena algebra plan."""

    __slots__ = ("_children", "_schema", "_uid")

    def __init__(self, children: Sequence["Operator"]):
        self._children = tuple(children)
        self._uid = next(_uid_counter)
        self._schema = self._derive_schema()

    # -- construction-time schema derivation -----------------------------------

    @abc.abstractmethod
    def _derive_schema(self) -> ExtendedRelationSchema:
        """Compute the output schema (the "Output" row of Table 3)."""

    @property
    def schema(self) -> ExtendedRelationSchema:
        """The extended relation schema of this operator's result."""
        return self._schema

    @property
    def children(self) -> tuple["Operator", ...]:
        return self._children

    @property
    def uid(self) -> int:
        """Stable identifier used by per-node evaluation state."""
        return self._uid

    @abc.abstractmethod
    def with_children(self, children: Sequence["Operator"]) -> "Operator":
        """A copy of this node over other children (used by rewriting)."""

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, ctx: EvaluationContext) -> XRelation:
        """The instantaneous result at ``ctx.instant`` (memoized per instant).

        Memoization matters for two reasons: a node may be shared between
        plan branches, and the delta methods below need the result of the
        current and previous instants without re-triggering invocations.
        """
        state = ctx.state(self)
        if state.get("eval_instant") == ctx.instant and "eval_result" in state:
            return state["eval_result"]
        result = self._compute(ctx)
        # Shift the previous instantaneous result for delta computation.
        if state.get("eval_instant") != ctx.instant:
            state["prev_result"] = state.get("eval_result")
        state["eval_instant"] = ctx.instant
        state["eval_result"] = result
        return result

    @abc.abstractmethod
    def _compute(self, ctx: EvaluationContext) -> XRelation:
        """The "Tuples" row of Table 3 for this operator."""

    # -- deltas for the continuous extension (Section 4) ---------------------------

    def inserted(self, ctx: EvaluationContext) -> frozenset[tuple]:
        """Tuples inserted at ``ctx.instant`` w.r.t. the previous instant."""
        state = ctx.state(self)
        current = self.evaluate(ctx).tuples
        previous = state.get("prev_result")
        if previous is None:
            return current
        return current - previous.tuples

    def deleted(self, ctx: EvaluationContext) -> frozenset[tuple]:
        """Tuples deleted at ``ctx.instant`` w.r.t. the previous instant."""
        state = ctx.state(self)
        current = self.evaluate(ctx).tuples
        previous = state.get("prev_result")
        if previous is None:
            return frozenset()
        return previous.tuples - current

    # -- stream typing ---------------------------------------------------------------

    @property
    def is_stream(self) -> bool:
        """True iff this node produces an *infinite* XD-Relation (§4.1).

        A leaf over a stream is infinite; the window operator makes its
        input finite; the streaming operator makes its input infinite; all
        other operators propagate the property (they are only well-defined
        on finite inputs, which plan validation enforces — see
        :class:`repro.algebra.query.Query`).
        """
        return any(child.is_stream for child in self._children)

    # -- introspection -----------------------------------------------------------------

    @abc.abstractmethod
    def render(self) -> str:
        """Serena Algebra Language text for this subtree."""

    def symbol(self) -> str:
        """Short mathematical label (π, σ, β...) for plan pretty-printing."""
        return type(self).__name__

    def walk(self) -> Iterator["Operator"]:
        """All nodes of the subtree, depth-first, self first."""
        yield self
        for child in self._children:
            yield from child.walk()

    def tree(self, indent: int = 0) -> str:
        """Indented tree rendering for debugging and EXPLAIN output."""
        pad = "  " * indent
        lines = [f"{pad}{self.symbol()}"]
        lines.extend(child.tree(indent + 1) for child in self._children)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.render()}>"

    # Structural equality: same operator class, same parameters (compared
    # via ``_signature``), recursively equal children.  ``uid`` is excluded.

    def _signature(self) -> tuple:
        """Operator-specific parameters for structural equality."""
        return ()

    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        assert isinstance(other, Operator)
        return (
            self._signature() == other._signature()
            and self._children == other._children
        )

    def __hash__(self) -> int:
        return hash((type(self), self._signature(), self._children))
