"""Streaming binding patterns (Section 7, future work — implemented).

The paper's conclusion announces "a new notion of *streaming binding
pattern* to homogeneously integrate in our framework streams provided by
services".  This module realizes that notion as an algebra operator,
``StreamingInvocation`` (written ``β∞`` / ``bindstream`` in SAL):

* like the invocation operator β, it takes a finite operand whose schema
  carries a binding pattern with all-real inputs;
* unlike β, its output is an **infinite XD-Relation**: at *every* instant
  τ it invokes the pattern's prototype on each operand tuple and emits the
  combined tuples — the service is treated as a data *source* that
  produces a reading per instant, not as a one-shot function.

``W[1](β∞_bp(sensors))`` is then exactly the paper's ``temperatures``
stream: the per-instant localized readings of all currently discovered
sensors — built declaratively, with no out-of-band feeder process, and
automatically following the discovery-maintained operand relation.

Only *passive* binding patterns may stream: an active pattern invoked at
every instant would multiply physical side effects unboundedly, so the
operator rejects active patterns at construction.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError, ServiceError
from repro.model.binding import BindingPattern
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["StreamingInvocation"]

# "degrade" is accepted as an alias of "skip" here: a streaming binding
# pattern re-invokes every operand tuple at every instant anyway, so there
# is no pending work to park — the failed reading is simply absent from
# this instant's emission.
_ERROR_POLICIES = ("raise", "skip", "degrade")


class StreamingInvocation(Operator):
    """``β∞_bp(r)``: the stream of per-instant invocations of ``bp``.

    The instantaneous relation at τ is the set of operand tuples extended
    with the invocation outputs *at τ*; every emitted tuple counts as an
    insertion (the output is append-only, like any stream).  Emissions can
    optionally be timestamped: pass ``timestamp_attribute`` naming a
    virtual TIMESTAMP attribute of the operand schema, and each emitted
    tuple carries the emission instant — which keeps physically identical
    readings from collapsing in downstream windows.
    """

    __slots__ = ("binding_pattern", "on_error", "timestamp_attribute")

    def __init__(
        self,
        child: Operator,
        binding_pattern: BindingPattern,
        on_error: str = "skip",
        timestamp_attribute: str | None = None,
    ):
        if child.is_stream:
            raise InvalidOperatorError(
                "streaming invocation: operand must be finite"
            )
        if on_error not in _ERROR_POLICIES:
            raise InvalidOperatorError(
                f"streaming invocation: unknown error policy {on_error!r}"
            )
        schema = child.schema
        if binding_pattern not in schema.binding_patterns:
            raise InvalidOperatorError(
                f"streaming invocation: binding pattern {binding_pattern} is "
                "not in BP of the operand schema"
            )
        if binding_pattern.active:
            raise InvalidOperatorError(
                f"streaming invocation: {binding_pattern.prototype.name!r} is "
                "active; a streaming binding pattern would repeat its side "
                "effect at every instant — only passive patterns may stream"
            )
        not_real = binding_pattern.input_names - schema.real_names
        if not_real:
            raise InvalidOperatorError(
                f"streaming invocation of {binding_pattern.prototype.name!r}: "
                f"input attributes {sorted(not_real)} are still virtual"
            )
        if timestamp_attribute is not None:
            if timestamp_attribute not in schema:
                raise InvalidOperatorError(
                    f"streaming invocation: unknown timestamp attribute "
                    f"{timestamp_attribute!r}"
                )
            if not schema.is_virtual(timestamp_attribute):
                raise InvalidOperatorError(
                    f"streaming invocation: timestamp attribute "
                    f"{timestamp_attribute!r} must be virtual in the operand"
                )
            if timestamp_attribute in binding_pattern.output_names:
                raise InvalidOperatorError(
                    "streaming invocation: the timestamp attribute cannot be "
                    "an output of the binding pattern"
                )
        self.binding_pattern = binding_pattern
        self.on_error = on_error
        self.timestamp_attribute = timestamp_attribute
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        realized = set(self.binding_pattern.output_names)
        if self.timestamp_attribute is not None:
            realized.add(self.timestamp_attribute)
        return child.schema.realize(realized)

    @property
    def is_stream(self) -> bool:
        return True

    def with_children(self, children: Sequence[Operator]) -> "StreamingInvocation":
        (child,) = children
        return StreamingInvocation(
            child, self.binding_pattern, self.on_error, self.timestamp_attribute
        )

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        (child,) = self.children
        relation = child.evaluate(ctx)
        source = relation.schema
        bp = self.binding_pattern
        prototype = bp.prototype

        service_pos = source.real_position(bp.service_attribute)
        input_names = prototype.input_schema.names
        input_positions = [source.real_position(n) for n in input_names]

        output_names = prototype.output_schema.names
        output_index = {n: i for i, n in enumerate(output_names)}
        out_sources: list[tuple[str, int]] = []
        for attribute in self.schema.real_attributes:
            name = attribute.name
            if name in output_index:
                out_sources.append(("invocation", output_index[name]))
            elif name == self.timestamp_attribute:
                out_sources.append(("timestamp", 0))
            else:
                out_sources.append(("child", source.real_position(name)))

        out = []
        for t in relation:
            reference = t[service_pos]
            inputs = {n: t[p] for n, p in zip(input_names, input_positions)}
            try:
                results = ctx.environment.registry.invoke(
                    prototype, reference, inputs, ctx.instant
                )
            except ServiceError:
                if self.on_error in ("skip", "degrade"):
                    continue
                raise
            for output_tuple in results:
                row = []
                for kind, position in out_sources:
                    if kind == "child":
                        row.append(t[position])
                    elif kind == "invocation":
                        row.append(output_tuple[position])
                    else:
                        row.append(ctx.instant)
                out.append(tuple(row))
        return XRelation(self.schema, out, validated=True)

    def inserted(self, ctx: EvaluationContext) -> frozenset[tuple]:
        """Every emission at this instant is an insertion (append-only)."""
        return self.evaluate(ctx).tuples

    def deleted(self, ctx: EvaluationContext) -> frozenset[tuple]:
        return frozenset()

    def render(self) -> str:
        (child,) = self.children
        bp = self.binding_pattern
        timestamp = (
            f", {self.timestamp_attribute}" if self.timestamp_attribute else ""
        )
        return (
            f"bindstream[{bp.prototype.name}, {bp.service_attribute}{timestamp}]"
            f"({child.render()})"
        )

    def symbol(self) -> str:
        bp = self.binding_pattern
        return f"β∞[{bp.prototype.name}[{bp.service_attribute}]]"

    def _signature(self) -> tuple:
        return (self.binding_pattern, self.on_error, self.timestamp_attribute)
