"""The invocation operator β (Table 3f).

The invocation operator is the realization operator for the output
attributes of a binding pattern.  For each tuple of the operand it invokes
the pattern's prototype on the service referenced by the tuple's service
attribute, with input parameters taken from the tuple; the tuple is
duplicated once per output tuple of the invocation (0, 1 or several).

Preconditions (checked at plan construction):

* the binding pattern belongs to ``BP(R)`` of the operand schema;
* all input attributes of the pattern are *real* in the operand schema.

Continuous refinement (Section 4.2): under a persistent evaluation context
(a :class:`~repro.continuous.continuous_query.ContinuousQuery`), the
pattern is actually invoked only for newly inserted tuples — results for
already-seen tuples are served from a per-node cache.  One-shot evaluation
uses a fresh context, so every tuple triggers an invocation, matching the
pure Table 3f semantics.

Active binding patterns additionally record an :class:`Action` per input
tuple (Definition 8) — including when the result comes from the cache, an
action happened when the invocation was first performed.

Asynchronous invocation (Section 5.1: "service invocations are handled
asynchronously by the invocation operator, relying on the core Environment
Resource Manager"): pass ``delay > 0`` and, under a *continuous* query, an
input tuple inserted at instant τ produces its output tuples at τ+delay —
modeling the round-trip to a remote service that takes ``delay`` instants.
One-shot evaluation is instantaneous by definition (Section 3.2), so the
delay only applies under a persistent continuous context.  Because the
instantaneous result at τ can only extend tuples *present* at τ, an
in-flight request whose operand tuple disappears (e.g. slides out of a
window) is dropped without ever invoking the service — windows must
out-live the modeled round-trip for responses to land.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.actions import Action
from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError, ServiceError
from repro.model.binding import BindingPattern
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Invocation"]

_ERROR_POLICIES = ("raise", "skip", "degrade")


class Invocation(Operator):
    """``β_bp(r)`` with ``bp ∈ BP(R)`` and real input attributes.

    Parameters
    ----------
    child:
        The operand plan.
    binding_pattern:
        The binding pattern to invoke; must be one of the operand schema's.
    on_error:
        ``"raise"`` (default) propagates service failures;
        ``"skip"`` drops the offending input tuple and retries it every
        following instant while it remains in the operand — the pragmatic
        policy for dynamic environments where a service may disappear
        between discovery and invocation (used by the PEMS query
        processor);
        ``"degrade"`` drops the offending input tuple and *parks* it: the
        tuple is not retried until it leaves and re-enters the operand, so
        a crashed provider costs one failed invocation instead of one per
        tick, while rows from healthy providers keep flowing.  Combined
        with the ERM's quarantine (which removes and later re-admits the
        failing service, cycling its discovery rows), parked tuples are
        naturally retried on recovery.
    delay:
        Asynchronous round-trip time in instants (0 = synchronous).  Only
        effective under a continuous evaluation context.
    """

    __slots__ = ("binding_pattern", "on_error", "delay")

    def __init__(
        self,
        child: Operator,
        binding_pattern: BindingPattern,
        on_error: str = "raise",
        delay: int = 0,
    ):
        if child.is_stream:
            raise InvalidOperatorError(
                "invocation: operand must be finite (apply a window first)"
            )
        if on_error not in _ERROR_POLICIES:
            raise InvalidOperatorError(
                f"invocation: unknown error policy {on_error!r}"
            )
        if not isinstance(delay, int) or delay < 0:
            raise InvalidOperatorError(
                f"invocation: delay must be a non-negative integer, got {delay!r}"
            )
        schema = child.schema
        if binding_pattern not in schema.binding_patterns:
            raise InvalidOperatorError(
                f"invocation: binding pattern {binding_pattern} is not in "
                f"BP of the operand schema"
            )
        not_real = binding_pattern.input_names - schema.real_names
        if not_real:
            raise InvalidOperatorError(
                f"invocation of {binding_pattern.prototype.name!r}: input "
                f"attributes {sorted(not_real)} are still virtual; realize "
                "them first (assignment or join)"
            )
        self.binding_pattern = binding_pattern
        self.on_error = on_error
        self.delay = delay
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        return child.schema.realize(self.binding_pattern.output_names)

    def with_children(self, children: Sequence[Operator]) -> "Invocation":
        (child,) = children
        return Invocation(child, self.binding_pattern, self.on_error, self.delay)

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        (child,) = self.children
        relation = child.evaluate(ctx)
        source = relation.schema
        bp = self.binding_pattern
        prototype = bp.prototype

        service_pos = source.real_position(bp.service_attribute)
        input_names = prototype.input_schema.names
        input_positions = [source.real_position(n) for n in input_names]

        # Output layout: child's values plus invocation outputs, interleaved
        # at the realized attributes' schema positions.
        out_sources: list[tuple[str, int]] = []
        output_names = prototype.output_schema.names
        output_index = {n: i for i, n in enumerate(output_names)}
        for attribute in self.schema.real_attributes:
            name = attribute.name
            if name in output_index:
                out_sources.append(("invocation", output_index[name]))
            else:
                out_sources.append(("child", source.real_position(name)))

        state = ctx.state(self)
        cache: dict[tuple, list[tuple]] = state.setdefault("cache", {})
        # Asynchronous mode (continuous contexts only): tuple → instant at
        # which its invocation result becomes available.
        due: dict[tuple, int] = state.setdefault("due", {})
        # Degrade mode: tuples whose invocation failed, parked until they
        # leave the operand (contribute nothing, are not retried).
        parked: set[tuple] = state.setdefault("parked", set())
        asynchronous = self.delay > 0 and ctx.continuous
        # Rebind-instant invalidation (mirrors InvocationExec): cached
        # results of operand tuples whose service reference was rebound
        # since the last evaluation are dropped, so the re-computed result
        # flows through the new substitution route this very instant.
        subs = ctx.environment.registry.substitutions
        if subs.epoch != state.get("sub_epoch", 0):
            rebound = subs.rebound_since(
                prototype.name, state.get("sub_epoch", 0)
            )
            state["sub_epoch"] = subs.epoch
            if rebound:
                for stale in [t for t in cache if t[service_pos] in rebound]:
                    del cache[stale]
                for stale in [t for t in due if t[service_pos] in rebound]:
                    del due[stale]  # re-scheduled with the full delay
                parked.difference_update(
                    t for t in parked if t[service_pos] in rebound
                )
        seen_now: set[tuple] = set()

        out = []
        for t in relation:
            seen_now.add(t)
            if t in parked:
                continue
            results = cache.get(t)
            if results is None:
                if asynchronous:
                    ready_at = due.setdefault(t, ctx.instant + self.delay)
                    if ctx.instant < ready_at:
                        continue  # response still in flight
                reference = t[service_pos]
                inputs = {
                    n: t[p] for n, p in zip(input_names, input_positions)
                }
                input_tuple = tuple(t[p] for p in input_positions)
                try:
                    results = ctx.environment.registry.invoke(
                        prototype, reference, inputs, ctx.instant
                    )
                except ServiceError:
                    if self.on_error == "skip":
                        due.pop(t, None)
                        continue
                    if self.on_error == "degrade":
                        due.pop(t, None)
                        parked.add(t)
                        continue
                    raise
                cache[t] = results
                due.pop(t, None)
                if bp.active:
                    ctx.record_action(Action(bp, reference, input_tuple))
            for output_tuple in results:
                out.append(
                    tuple(
                        t[p] if kind == "child" else output_tuple[p]
                        for kind, p in out_sources
                    )
                )
        # Drop cache entries for tuples no longer present: if a tuple
        # reappears later it counts as newly inserted again (Section 4.2).
        for stale in [key for key in cache if key not in seen_now]:
            del cache[stale]
        for stale in [key for key in due if key not in seen_now]:
            del due[stale]
        parked.intersection_update(seen_now)
        return XRelation(self.schema, out, validated=True)

    def render(self) -> str:
        (child,) = self.children
        bp = self.binding_pattern
        delay = f", {self.delay}" if self.delay else ""
        return (
            f"invoke[{bp.prototype.name}, {bp.service_attribute}{delay}]"
            f"({child.render()})"
        )

    def symbol(self) -> str:
        bp = self.binding_pattern
        return f"β[{bp.prototype.name}[{bp.service_attribute}]]"

    def _signature(self) -> tuple:
        return (self.binding_pattern, self.on_error, self.delay)
