"""The assignment operator α (Table 3e).

Assignment is the realization operator for individual virtual attributes:
``α_{A:=B}(r)`` copies the value of real attribute ``B`` into virtual
attribute ``A``, and ``α_{A:=a}(r)`` assigns the constant ``a``.  In both
cases ``A`` becomes a real attribute of the result; binding patterns whose
output attributes include ``A`` are dropped (their outputs must stay
virtual).
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError, VirtualAttributeError
from repro.model.relation import XRelation
from repro.model.types import coerce_value
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Assignment"]


class Assignment(Operator):
    """``α_{A:=B}(r)`` or ``α_{A:=a}(r)``.

    Parameters
    ----------
    child:
        The operand plan.
    attribute:
        ``A``: a virtual attribute of the operand schema.
    value:
        Either the name of a real attribute ``B`` (with
        ``from_attribute=True``) or a constant ``a`` of ``A``'s domain.
    from_attribute:
        Selects between the two forms of the operator.
    """

    __slots__ = ("attribute", "value", "from_attribute")

    def __init__(
        self,
        child: Operator,
        attribute: str,
        value: object,
        from_attribute: bool = False,
    ):
        if child.is_stream:
            raise InvalidOperatorError(
                "assignment: operand must be finite (apply a window first)"
            )
        schema = child.schema
        if attribute not in schema:
            raise InvalidOperatorError(
                f"assignment: unknown attribute {attribute!r}"
            )
        if not schema.is_virtual(attribute):
            raise VirtualAttributeError(
                f"assignment: {attribute!r} is already real; α only realizes "
                "virtual attributes (Table 3e)"
            )
        if from_attribute:
            if not isinstance(value, str) or value not in schema:
                raise InvalidOperatorError(
                    f"assignment: source attribute {value!r} not in schema"
                )
            if schema.is_virtual(value):
                raise VirtualAttributeError(
                    f"assignment: source attribute {value!r} must be real"
                )
            if schema.dtype(value) is not schema.dtype(attribute):
                raise InvalidOperatorError(
                    f"assignment: cannot assign {value!r} "
                    f"({schema.dtype(value).value}) to {attribute!r} "
                    f"({schema.dtype(attribute).value})"
                )
        else:
            value = coerce_value(value, schema.dtype(attribute))
        self.attribute = attribute
        self.value = value
        self.from_attribute = from_attribute
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        return child.schema.realize((self.attribute,))

    def with_children(self, children: Sequence[Operator]) -> "Assignment":
        (child,) = children
        return Assignment(child, self.attribute, self.value, self.from_attribute)

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        (child,) = self.children
        relation = child.evaluate(ctx)
        source = relation.schema
        target_pos = self.schema.real_position(self.attribute)
        if self.from_attribute:
            value_pos = source.real_position(self.value)  # type: ignore[arg-type]
        out = []
        for t in relation:
            value = t[value_pos] if self.from_attribute else self.value
            out.append(t[:target_pos] + (value,) + t[target_pos:])
        return XRelation(self.schema, out, validated=True)

    def render(self) -> str:
        (child,) = self.children
        if self.from_attribute:
            rhs = str(self.value)
        elif isinstance(self.value, str):
            rhs = "'" + self.value.replace("'", "''") + "'"
        else:
            rhs = repr(self.value)
        return f"assign[{self.attribute} := {rhs}]({child.render()})"

    def symbol(self) -> str:
        return f"α[{self.attribute}:={self.value!r}]"

    def _signature(self) -> tuple:
        return (self.attribute, self.value, self.from_attribute)
