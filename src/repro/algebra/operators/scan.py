"""Leaf operators: scans of named relations and literal X-Relations.

A :class:`Scan` references an X-Relation (or XD-Relation) of the
environment by name and resolves it at evaluation time — this is what makes
plans robust to dynamic environments: the relation contents (including
discovery-maintained service tables) are read at the evaluation instant.

A :class:`BaseRelation` embeds a literal X-Relation into a plan; it is
mostly useful for tests and for invoking a prototype on an ad-hoc
single-tuple relation.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Scan", "BaseRelation"]


class Scan(Operator):
    """Leaf node reading relation ``name`` from the environment.

    Parameters
    ----------
    name:
        The relation's name in the environment.
    schema:
        The relation's extended schema (captured at plan-build time; the
        environment must still hold a relation with a compatible schema at
        evaluation time).
    stream:
        True iff the named relation is an infinite XD-Relation (Section 4.1).
    """

    __slots__ = ("name", "_declared_schema", "_stream")

    def __init__(self, name: str, schema: ExtendedRelationSchema, stream: bool = False):
        self.name = name
        self._declared_schema = schema
        self._stream = stream
        super().__init__(())

    def _derive_schema(self) -> ExtendedRelationSchema:
        return self._declared_schema

    def with_children(self, children: Sequence[Operator]) -> "Scan":
        if children:
            raise InvalidOperatorError("Scan is a leaf")
        return self

    @property
    def is_stream(self) -> bool:
        return self._stream

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        relation = ctx.environment.instantaneous(self.name, ctx.instant)
        if not relation.schema.compatible(self.schema):
            raise InvalidOperatorError(
                f"relation {self.name!r} changed schema since the plan was built"
            )
        return relation

    def inserted(self, ctx: EvaluationContext) -> frozenset[tuple]:
        """Exact insertions from the XD-Relation journal when available."""
        stored = ctx.environment.relation(self.name)
        inserted_at = getattr(stored, "inserted_at", None)
        if inserted_at is not None:
            self.evaluate(ctx)  # keep the delta bookkeeping consistent
            return frozenset(inserted_at(ctx.instant))
        return super().inserted(ctx)

    def deleted(self, ctx: EvaluationContext) -> frozenset[tuple]:
        stored = ctx.environment.relation(self.name)
        deleted_at = getattr(stored, "deleted_at", None)
        if deleted_at is not None:
            self.evaluate(ctx)
            return frozenset(deleted_at(ctx.instant))
        return super().deleted(ctx)

    def render(self) -> str:
        return self.name

    def symbol(self) -> str:
        return f"scan({self.name})" + ("∞" if self._stream else "")

    def _signature(self) -> tuple:
        return (self.name, self._stream)


class BaseRelation(Operator):
    """Leaf node over a literal X-Relation (environment-independent)."""

    __slots__ = ("relation",)

    def __init__(self, relation: XRelation):
        self.relation = relation
        super().__init__(())

    def _derive_schema(self) -> ExtendedRelationSchema:
        return self.relation.schema

    def with_children(self, children: Sequence[Operator]) -> "BaseRelation":
        if children:
            raise InvalidOperatorError("BaseRelation is a leaf")
        return self

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        return self.relation

    def render(self) -> str:
        return f"<literal:{len(self.relation)} tuples>"

    def symbol(self) -> str:
        return "literal"

    def _signature(self) -> tuple:
        return (self.relation,)
