"""Set operators over X-Relations (Section 3.1.1).

Union, intersection and difference apply to two X-Relations associated with
the same schema (attributes, real/virtual partition and binding patterns);
the result is over that same schema.  Definitions coincide with the
standard relational ones at the tuple level.
"""

from __future__ import annotations

from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["Union", "Intersection", "Difference"]


class _SetOperator(Operator):
    """Common machinery of the three set operators."""

    __slots__ = ()

    _SYMBOL = "?"
    _NAME = "setop"

    def __init__(self, left: Operator, right: Operator):
        if left.is_stream or right.is_stream:
            raise InvalidOperatorError(
                f"{self._NAME}: operands must be finite (apply a window first)"
            )
        super().__init__((left, right))

    def _derive_schema(self) -> ExtendedRelationSchema:
        left, right = self.children
        if not left.schema.compatible(right.schema):
            raise InvalidOperatorError(
                f"{self._NAME}: operand schemas are not compatible "
                f"({left.schema!r} vs {right.schema!r})"
            )
        return left.schema.with_name(None)

    def with_children(self, children: Sequence[Operator]) -> "_SetOperator":
        left, right = children
        return type(self)(left, right)

    def render(self) -> str:
        left, right = self.children
        return f"{self._NAME}({left.render()}, {right.render()})"

    def symbol(self) -> str:
        return self._SYMBOL


class Union(_SetOperator):
    """``r1 ∪ r2 = {t | t ∈ r1 ∨ t ∈ r2}``."""

    __slots__ = ()
    _SYMBOL = "∪"
    _NAME = "union"

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        left, right = self.children
        return XRelation(
            self.schema, left.evaluate(ctx).tuples | right.evaluate(ctx).tuples, validated=True
        )


class Intersection(_SetOperator):
    """``r1 ∩ r2``."""

    __slots__ = ()
    _SYMBOL = "∩"
    _NAME = "intersection"

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        left, right = self.children
        return XRelation(
            self.schema, left.evaluate(ctx).tuples & right.evaluate(ctx).tuples, validated=True
        )


class Difference(_SetOperator):
    """``r1 − r2``."""

    __slots__ = ()
    _SYMBOL = "−"
    _NAME = "difference"

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        left, right = self.children
        return XRelation(
            self.schema, left.evaluate(ctx).tuples - right.evaluate(ctx).tuples, validated=True
        )
