"""Extension operators beyond the paper's core algebra.

The paper's motivating example computes "a mean temperature for a given
location" (Section 1.2) but leaves aggregation out of the formal algebra;
Section 7 lists further operator extensions as future work.  This module
provides a grouping/aggregation operator in the same style as Table 3:
explicit output-schema derivation, restriction to real attributes, binding
patterns dropped (the aggregate result is a new relation shape, so no
pattern can remain valid).
"""

from __future__ import annotations

import enum
from typing import Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.errors import InvalidOperatorError, VirtualAttributeError
from repro.model.attributes import Attribute
from repro.model.relation import XRelation
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["AggregateFunction", "AggregateSpec", "Aggregate"]


class AggregateFunction(enum.Enum):
    """Supported aggregate functions."""

    COUNT = "count"
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    @classmethod
    def from_name(cls, name: str) -> "AggregateFunction":
        try:
            return cls(name.lower())
        except ValueError:
            raise InvalidOperatorError(f"unknown aggregate {name!r}") from None


_NUMERIC = (DataType.INTEGER, DataType.REAL)


class AggregateSpec:
    """One aggregate column: ``function(attribute) AS result_name``.

    COUNT may omit the attribute (``count(*)``).
    """

    __slots__ = ("function", "attribute", "result_name")

    def __init__(
        self,
        function: AggregateFunction | str,
        attribute: str | None,
        result_name: str,
    ):
        if isinstance(function, str):
            function = AggregateFunction.from_name(function)
        if function is not AggregateFunction.COUNT and attribute is None:
            raise InvalidOperatorError(
                f"aggregate {function.value} requires an attribute"
            )
        self.function = function
        self.attribute = attribute
        self.result_name = result_name

    def result_dtype(self, schema: ExtendedRelationSchema) -> DataType:
        if self.function is AggregateFunction.COUNT:
            return DataType.INTEGER
        assert self.attribute is not None
        dtype = schema.dtype(self.attribute)
        if self.function in (AggregateFunction.SUM, AggregateFunction.AVG):
            if dtype not in _NUMERIC:
                raise InvalidOperatorError(
                    f"aggregate {self.function.value} needs a numeric "
                    f"attribute, got {self.attribute!r} ({dtype.value})"
                )
            return DataType.REAL if self.function is AggregateFunction.AVG else dtype
        return dtype  # MIN / MAX preserve the attribute type

    def compute(self, values: list) -> object:
        if self.function is AggregateFunction.COUNT:
            return len(values)
        if self.function is AggregateFunction.SUM:
            return sum(values)
        if self.function is AggregateFunction.AVG:
            return sum(values) / len(values)
        if self.function is AggregateFunction.MIN:
            return min(values)
        return max(values)

    def render(self) -> str:
        arg = self.attribute if self.attribute is not None else "*"
        return f"{self.function.value}({arg}) as {self.result_name}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AggregateSpec):
            return NotImplemented
        return (
            self.function is other.function
            and self.attribute == other.attribute
            and self.result_name == other.result_name
        )

    def __hash__(self) -> int:
        return hash((self.function, self.attribute, self.result_name))


class Aggregate(Operator):
    """``γ_{G; aggs}(r)``: group by real attributes ``G``, compute aggregates.

    With an empty ``group_by`` the whole relation is one group; if the
    operand is empty, the result is empty (no global row for empty input —
    keeps the operator monotone-friendly for continuous evaluation).
    """

    __slots__ = ("group_by", "aggregates")

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[AggregateSpec],
    ):
        if child.is_stream:
            raise InvalidOperatorError(
                "aggregate: operand must be finite (apply a window first)"
            )
        if not aggregates:
            raise InvalidOperatorError("aggregate: at least one aggregate needed")
        schema = child.schema
        for name in group_by:
            if name not in schema:
                raise InvalidOperatorError(f"aggregate: unknown attribute {name!r}")
            if schema.is_virtual(name):
                raise VirtualAttributeError(
                    f"aggregate: grouping attribute {name!r} must be real"
                )
        result_names = set(group_by)
        for spec in aggregates:
            if spec.attribute is not None:
                if spec.attribute not in schema:
                    raise InvalidOperatorError(
                        f"aggregate: unknown attribute {spec.attribute!r}"
                    )
                if schema.is_virtual(spec.attribute):
                    raise VirtualAttributeError(
                        f"aggregate: aggregated attribute {spec.attribute!r} "
                        "must be real"
                    )
            if spec.result_name in result_names:
                raise InvalidOperatorError(
                    f"aggregate: duplicate result attribute {spec.result_name!r}"
                )
            result_names.add(spec.result_name)
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)
        super().__init__((child,))

    def _derive_schema(self) -> ExtendedRelationSchema:
        (child,) = self.children
        schema = child.schema
        attributes = [schema.attribute(n) for n in self.group_by]
        attributes.extend(
            Attribute(spec.result_name, spec.result_dtype(schema))
            for spec in self.aggregates
        )
        return ExtendedRelationSchema(None, attributes)

    def with_children(self, children: Sequence[Operator]) -> "Aggregate":
        (child,) = children
        return Aggregate(child, self.group_by, self.aggregates)

    def _compute(self, ctx: EvaluationContext) -> XRelation:
        (child,) = self.children
        relation = child.evaluate(ctx)
        source = relation.schema
        key_positions = [source.real_position(n) for n in self.group_by]
        value_positions = [
            source.real_position(spec.attribute) if spec.attribute is not None else None
            for spec in self.aggregates
        ]
        groups: dict[tuple, list[tuple]] = {}
        for t in relation:
            groups.setdefault(tuple(t[p] for p in key_positions), []).append(t)
        out = []
        for key, members in groups.items():
            row = list(key)
            for spec, position in zip(self.aggregates, value_positions):
                values = (
                    [m[position] for m in members] if position is not None else members
                )
                row.append(spec.compute(values))
            out.append(tuple(row))
        return XRelation(self.schema, out)

    def render(self) -> str:
        (child,) = self.children
        aggs = ", ".join(spec.render() for spec in self.aggregates)
        by = ", ".join(self.group_by)
        return f"aggregate[{by}; {aggs}]({child.render()})"

    def symbol(self) -> str:
        return f"γ[{', '.join(self.group_by)}]"

    def _signature(self) -> tuple:
        return (self.group_by, self.aggregates)
