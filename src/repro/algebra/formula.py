"""Selection formulas over real schemas (Table 3b).

Selection formulas can only reference *real* attributes, because virtual
attributes have no value at the tuple level.  The AST supports comparisons
between attributes and constants (or two attributes), conjunction,
disjunction and negation; evaluation follows the standard logical
implication ``t |= F`` of the relational algebra.

The public entry point is :func:`col`, a small builder:

>>> formula = col("name").ne("Carla") & col("temperature").gt(35.5)
>>> formula.attributes()
frozenset({'name', 'temperature'})
"""

from __future__ import annotations

import abc
import operator as _op
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import FormulaError, VirtualAttributeError
from repro.model.xschema import ExtendedRelationSchema

__all__ = [
    "Formula",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TrueFormula",
    "col",
    "ColumnBuilder",
]

def _contains(left: object, right: object) -> bool:
    if not isinstance(left, str) or not isinstance(right, str):
        raise FormulaError(
            f"'contains' applies to strings, got {left!r} and {right!r}"
        )
    return right in left


_OPERATORS: dict[str, Callable[[object, object], bool]] = {
    "=": _op.eq,
    "!=": _op.ne,
    "<": _op.lt,
    "<=": _op.le,
    ">": _op.gt,
    ">=": _op.ge,
    "contains": _contains,
}

_ORDERING_OPS = frozenset({"<", "<=", ">", ">="})


class Formula(abc.ABC):
    """Base class of selection-formula nodes."""

    @abc.abstractmethod
    def attributes(self) -> frozenset[str]:
        """All attribute names referenced by the formula."""

    @abc.abstractmethod
    def evaluate(self, row: Mapping[str, object]) -> bool:
        """``t |= F`` for the tuple given as a name→value mapping."""

    @abc.abstractmethod
    def render(self) -> str:
        """Textual form usable in the Serena Algebra Language."""

    def validate(self, schema: ExtendedRelationSchema) -> None:
        """Check that every referenced attribute is a *real* attribute."""
        for name in self.attributes():
            if name not in schema:
                raise FormulaError(
                    f"selection formula references unknown attribute {name!r}"
                )
            if schema.is_virtual(name):
                raise VirtualAttributeError(
                    f"selection formula references virtual attribute {name!r}: "
                    "selection formulas apply to real attributes only (Table 3b)"
                )

    # Connectives.  ``&``, ``|`` and ``~`` build And/Or/Not nodes.

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)

    def __str__(self) -> str:
        return self.render()


@dataclass(frozen=True)
class TrueFormula(Formula):
    """The always-true formula (neutral element of conjunction)."""

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return True

    def render(self) -> str:
        return "true"


@dataclass(frozen=True)
class Comparison(Formula):
    """``left op right`` where each side is an attribute or a constant.

    ``left_is_attr`` / ``right_is_attr`` distinguish attribute references
    from constant values, so that a constant that happens to be a string
    equal to an attribute name is not misread.
    """

    left: object
    op: str
    right: object
    left_is_attr: bool = True
    right_is_attr: bool = False

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise FormulaError(f"unknown comparison operator {self.op!r}")
        if self.left_is_attr and not isinstance(self.left, str):
            raise FormulaError(f"attribute reference must be a name: {self.left!r}")
        if self.right_is_attr and not isinstance(self.right, str):
            raise FormulaError(f"attribute reference must be a name: {self.right!r}")

    def attributes(self) -> frozenset[str]:
        names = set()
        if self.left_is_attr:
            names.add(self.left)
        if self.right_is_attr:
            names.add(self.right)
        return frozenset(names)

    def evaluate(self, row: Mapping[str, object]) -> bool:
        left = row[self.left] if self.left_is_attr else self.left
        right = row[self.right] if self.right_is_attr else self.right
        if self.op in _ORDERING_OPS:
            try:
                return _OPERATORS[self.op](left, right)
            except TypeError:
                raise FormulaError(
                    f"cannot order {left!r} and {right!r} with {self.op!r}"
                ) from None
        # Equality across types is well-defined (just False), but guard the
        # classic int/float cross-type case so 35 == 35.0 holds as in SQL.
        return _OPERATORS[self.op](left, right)

    def render(self) -> str:
        return f"{_render_side(self.left, self.left_is_attr)} {self.op} " \
               f"{_render_side(self.right, self.right_is_attr)}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def render(self) -> str:
        return f"({self.left.render()} and {self.right.render()})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def render(self) -> str:
        return f"({self.left.render()} or {self.right.render()})"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def attributes(self) -> frozenset[str]:
        return self.operand.attributes()

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return not self.operand.evaluate(row)

    def render(self) -> str:
        return f"(not {self.operand.render()})"


def _render_side(value: object, is_attr: bool) -> str:
    if is_attr:
        return str(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, bool):
        return "true" if value else "false"
    return repr(value)


class ColumnBuilder:
    """Fluent builder for comparisons on one attribute; see :func:`col`."""

    __slots__ = ("_name",)

    def __init__(self, name: str):
        self._name = name

    def _compare(self, op: str, other: object) -> Comparison:
        if isinstance(other, ColumnBuilder):
            return Comparison(self._name, op, other._name, True, True)
        return Comparison(self._name, op, other, True, False)

    def eq(self, other: object) -> Comparison:
        """``attribute = value`` (or ``= other attribute``)."""
        return self._compare("=", other)

    def ne(self, other: object) -> Comparison:
        """``attribute != value``."""
        return self._compare("!=", other)

    def lt(self, other: object) -> Comparison:
        """``attribute < value``."""
        return self._compare("<", other)

    def le(self, other: object) -> Comparison:
        """``attribute <= value``."""
        return self._compare("<=", other)

    def gt(self, other: object) -> Comparison:
        """``attribute > value``."""
        return self._compare(">", other)

    def ge(self, other: object) -> Comparison:
        """``attribute >= value``."""
        return self._compare(">=", other)

    def contains(self, other: object) -> Comparison:
        """``value`` occurs as a substring of the (string) attribute."""
        return self._compare("contains", other)


def col(name: str) -> ColumnBuilder:
    """Start a comparison on attribute ``name``.

    >>> col("area").eq("office") & col("quality").ge(5)
    """
    return ColumnBuilder(name)
