"""Structural plan fingerprints for cross-query sharing.

Two continuous queries that contain the same subplan — the same scans,
selections and joins over the same relations — should not each pay for
that subplan's execution.  The fingerprint of a plan is a *canonical
recursive key* computed on its :func:`repro.algebra.normalize.normalize`
normal form, so plans that differ only up to the Table 5 / classical
rewrite rules (selection merging and pushdown, projection cascades,
formula commutativity) fingerprint identically and can share one physical
executor (see :mod:`repro.exec.shared`).

Two layers:

* :func:`canonical_plan` — the normalized operator tree.  Subtrees of a
  normalized plan are themselves in normal form (the rewrite fixpoint
  leaves no applicable rule anywhere in the tree), so canonical subtrees
  can be compared and hashed directly via the operators' structural
  ``__eq__``/``__hash__``.
* :func:`plan_fingerprint` — a stable, printable digest of the canonical
  tree, used for registry introspection, sharing summaries and logs.
"""

from __future__ import annotations

import hashlib

from repro.algebra.normalize import normalize
from repro.algebra.operators.base import Operator
from repro.algebra.query import Query

__all__ = ["canonical_plan", "plan_fingerprint", "structural_key"]


def canonical_plan(plan: Operator | Query) -> Operator:
    """The plan's normal form (a bare operator tree, query names dropped)."""
    root = plan.root if isinstance(plan, Query) else plan
    normalized = normalize(root)
    assert isinstance(normalized, Operator)
    return normalized


def _atom(value: object) -> str:
    """A deterministic text for one signature component."""
    render = getattr(value, "render", None)
    if callable(render):
        return render()
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(_atom(v) for v in value) + ")"
    if isinstance(value, frozenset):
        return "{" + ",".join(sorted(_atom(v) for v in value)) + "}"
    tuples = getattr(value, "tuples", None)
    if tuples is not None:  # a literal X-Relation (BaseRelation leaves)
        schema = getattr(value, "schema", None)
        names = getattr(schema, "names", ())
        return f"rel[{','.join(names)}]{sorted(tuples)!r}"
    return repr(value)


def structural_key(node: Operator) -> str:
    """The recursive canonical key of a (sub)tree *as given* — callers who
    want rewrite-equivalent plans to coincide must normalize first (or use
    :func:`plan_fingerprint`, which does)."""
    children = ",".join(structural_key(child) for child in node.children)
    return f"{type(node).__name__}[{_atom(node._signature())}]({children})"


def plan_fingerprint(plan: Operator | Query) -> str:
    """A stable hex digest identifying the plan up to syntactic
    equivalence: ``plan_fingerprint(a) == plan_fingerprint(b)`` whenever
    ``syntactically_equivalent(a, b)``."""
    key = structural_key(canonical_plan(plan))
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:16]
