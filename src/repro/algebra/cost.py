"""A cost model for service-oriented queries.

The paper lists "a formal definition of cost models dedicated to pervasive
environments" as future work (Section 7); this module provides a simple,
explicit one so the optimizer and the ablation benchmarks have an objective
function:

* every operator pays a per-tuple processing cost;
* the invocation operator additionally pays a per-invocation *service
  cost*, typically orders of magnitude larger than tuple processing (a
  remote invocation crosses the network) and configurable per prototype;
* cardinalities flow bottom-up from environment statistics, with textbook
  selectivity defaults where the model has no information.

The estimates are deliberately coarse — their job is to rank plans, and
for service-oriented queries the ranking is dominated by the number of
invocations, which the model tracks exactly per operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import Aggregate
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import BaseRelation, Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.operators.setops import Difference, Intersection, Union
from repro.algebra.operators.streaming import Streaming
from repro.algebra.operators.window import Window
from repro.algebra.query import Query
from repro.model.environment import PervasiveEnvironment

__all__ = ["CostModel", "PlanCost"]

#: Default selectivity of a selection formula when nothing is known.
SELECTION_SELECTIVITY = 0.5
#: Default fraction of the Cartesian product surviving a natural join key.
JOIN_SELECTIVITY = 0.1
#: Default service cost (per invocation), in tuple-processing units.
DEFAULT_SERVICE_COST = 100.0


@dataclass(frozen=True)
class PlanCost:
    """Estimated cost of a plan: total units, plus the two components the
    ablation benchmarks report."""

    total: float
    invocations: float
    tuples_processed: float


@dataclass
class CostModel:
    """Cardinality and cost estimation against an environment.

    Parameters
    ----------
    environment:
        Supplies base-relation cardinalities (at ``instant``).
    service_costs:
        Per-prototype invocation cost override (prototype name → units).
    instant:
        The instant at which base cardinalities are sampled.
    statistics:
        Optional :class:`~repro.algebra.statistics.EnvironmentStatistics`
        snapshot; when present, selection selectivities and join factors
        are derived from actual distinct counts instead of the textbook
        defaults.  Build one with
        :func:`repro.algebra.statistics.collect_statistics`.
    """

    environment: PervasiveEnvironment
    service_costs: dict[str, float] = field(default_factory=dict)
    instant: int = 0
    statistics: object | None = None  # EnvironmentStatistics, duck-typed

    # -- cardinality estimation ------------------------------------------------

    def cardinality(self, node: Operator) -> float:
        if isinstance(node, Scan):
            try:
                return float(
                    len(self.environment.instantaneous(node.name, self.instant))
                )
            except Exception:
                return 100.0  # unknown relation: textbook default
        if isinstance(node, BaseRelation):
            return float(len(node.relation))
        if isinstance(node, Selection):
            selectivity = SELECTION_SELECTIVITY
            if self.statistics is not None:
                selectivity = self.statistics.selectivity(node.formula)
            return selectivity * self.cardinality(node.children[0])
        if isinstance(node, (Projection, Renaming, Assignment, Window, Streaming)):
            return self.cardinality(node.children[0])
        if isinstance(node, Invocation):
            # Invocations return 0..n tuples; 1 per input is the typical
            # case (Section 2.1: input "generally with only one tuple",
            # output 0, 1 or several).
            return self.cardinality(node.children[0])
        if isinstance(node, NaturalJoin):
            left, right = node.children
            cl, cr = self.cardinality(left), self.cardinality(right)
            if not node.predicate_names:
                return cl * cr  # degenerates to a Cartesian product
            factor = JOIN_SELECTIVITY
            if self.statistics is not None:
                # System-R: 1 / max(distinct) per equi-join key.
                factor = 1.0
                for key in node.predicate_names:
                    distinct = self.statistics.distinct_anywhere(key)
                    factor *= 1.0 / distinct if distinct else JOIN_SELECTIVITY
            return factor * cl * cr
        if isinstance(node, Union):
            return sum(self.cardinality(c) for c in node.children)
        if isinstance(node, Intersection):
            return min(self.cardinality(c) for c in node.children)
        if isinstance(node, Difference):
            return self.cardinality(node.children[0])
        if isinstance(node, Aggregate):
            child_card = self.cardinality(node.children[0])
            return max(1.0, SELECTION_SELECTIVITY * child_card)
        return 100.0

    def invocation_cost(self, node: Invocation) -> float:
        """Expected invocation cost of one β node: one call per input tuple."""
        per_call = self.service_costs.get(
            node.binding_pattern.prototype.name, DEFAULT_SERVICE_COST
        )
        return per_call * self.cardinality(node.children[0])

    # -- plan cost -------------------------------------------------------------

    def cost(self, plan: Operator | Query) -> PlanCost:
        """Total estimated cost of the plan (sum over all nodes)."""
        root = plan.root if isinstance(plan, Query) else plan
        invocations = 0.0
        tuples = 0.0
        for node in root.walk():
            tuples += self.cardinality(node)
            if isinstance(node, Invocation):
                invocations += self.invocation_cost(node)
        return PlanCost(
            total=tuples + invocations,
            invocations=invocations,
            tuples_processed=tuples,
        )
