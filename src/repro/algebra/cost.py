"""A cost model for service-oriented queries.

The paper lists "a formal definition of cost models dedicated to pervasive
environments" as future work (Section 7); this module provides a simple,
explicit one so the optimizer and the ablation benchmarks have an objective
function:

* every operator pays a per-tuple processing cost;
* the invocation operator additionally pays a per-invocation *service
  cost*, typically orders of magnitude larger than tuple processing (a
  remote invocation crosses the network) and configurable per prototype;
* cardinalities flow bottom-up from environment statistics, with textbook
  selectivity defaults where the model has no information.

The estimates are deliberately coarse — their job is to rank plans, and
for service-oriented queries the ranking is dominated by the number of
invocations, which the model tracks exactly per operator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import Aggregate
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import BaseRelation, Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.operators.setops import Difference, Intersection, Union
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.streaming import Streaming
from repro.algebra.operators.window import Window
from repro.algebra.query import Query
from repro.model.environment import PervasiveEnvironment

__all__ = ["CostModel", "PlanCost"]

#: Default selectivity of a selection formula when nothing is known.
SELECTION_SELECTIVITY = 0.5
#: Default fraction of the Cartesian product surviving a natural join key.
JOIN_SELECTIVITY = 0.1
#: Default service cost (per invocation), in tuple-processing units.
DEFAULT_SERVICE_COST = 100.0
#: Default fraction of a base relation changing per instant, used by the
#: steady-state tick-cost model when the caller has no churn estimate.
DEFAULT_CHURN = 0.01
#: Per-delta-tuple cost of a natively-columnar operator relative to its
#: row executor: compiled predicates, C-speed column gathers and interned
#: join probes replace per-row interpretation (calibrated against the
#: row-vs-columnar sweep in ``benchmarks/test_bench_tick_cost.py``).
COLUMNAR_TUPLE_FACTOR = 0.2
#: Per-shard merge overhead of a gathered subtree, as a fraction of the
#: subtree's per-tick delta: the coordinator re-counts every delta row
#: once per contributing zone (support counting in the gather executor).
SHARD_MERGE_FACTOR = 0.05
#: Risk premium on invocations of a prototype with *no* registered
#: substitution rule: a failure there has no failover, so the expected
#: cost carries re-invocation retries, quarantine gaps and missed-result
#: recovery.  Prototypes the substitution registry covers are served
#: transparently through their failover table (PR 9), so they pay none.
UNSUBSTITUTABLE_RISK_PREMIUM = 1.25


@dataclass(frozen=True)
class PlanCost:
    """Estimated cost of a plan: total units, plus the two components the
    ablation benchmarks report."""

    total: float
    invocations: float
    tuples_processed: float


@dataclass
class CostModel:
    """Cardinality and cost estimation against an environment.

    Parameters
    ----------
    environment:
        Supplies base-relation cardinalities (at ``instant``).
    service_costs:
        Per-prototype invocation cost override (prototype name → units).
    instant:
        The instant at which base cardinalities are sampled.
    statistics:
        Optional :class:`~repro.algebra.statistics.EnvironmentStatistics`
        snapshot; when present, selection selectivities and join factors
        are derived from actual distinct counts instead of the textbook
        defaults.  Build one with
        :func:`repro.algebra.statistics.collect_statistics`.
    substitutable:
        Prototype names covered by at least one substitution rule
        (``registry.substitutions.prototype_names``).  When set,
        invocations of prototypes *outside* it pay
        :data:`UNSUBSTITUTABLE_RISK_PREMIUM` — so on an otherwise-tied
        plan choice the optimizer prefers the provider a spare can
        absorb.  ``None`` (the default) disables the premium entirely.
    """

    environment: PervasiveEnvironment
    service_costs: dict[str, float] = field(default_factory=dict)
    instant: int = 0
    statistics: object | None = None  # EnvironmentStatistics, duck-typed
    substitutable: frozenset[str] | None = None

    # -- cardinality estimation ------------------------------------------------

    def cardinality(self, node: Operator) -> float:
        if isinstance(node, Scan):
            try:
                return float(
                    len(self.environment.instantaneous(node.name, self.instant))
                )
            except Exception:
                return 100.0  # unknown relation: textbook default
        if isinstance(node, BaseRelation):
            return float(len(node.relation))
        if isinstance(node, Selection):
            selectivity = SELECTION_SELECTIVITY
            if self.statistics is not None:
                selectivity = self.statistics.selectivity(node.formula)
            return selectivity * self.cardinality(node.children[0])
        if isinstance(node, (Projection, Renaming, Assignment, Window, Streaming)):
            return self.cardinality(node.children[0])
        if isinstance(node, Invocation):
            # Invocations return 0..n tuples; 1 per input is the typical
            # case (Section 2.1: input "generally with only one tuple",
            # output 0, 1 or several).
            return self.cardinality(node.children[0])
        if isinstance(node, NaturalJoin):
            left, right = node.children
            cl, cr = self.cardinality(left), self.cardinality(right)
            if not node.predicate_names:
                return cl * cr  # degenerates to a Cartesian product
            factor = JOIN_SELECTIVITY
            if self.statistics is not None:
                # System-R: 1 / max(distinct) per equi-join key.
                factor = 1.0
                for key in node.predicate_names:
                    distinct = self.statistics.distinct_anywhere(key)
                    factor *= 1.0 / distinct if distinct else JOIN_SELECTIVITY
            return factor * cl * cr
        if isinstance(node, Union):
            return sum(self.cardinality(c) for c in node.children)
        if isinstance(node, Intersection):
            return min(self.cardinality(c) for c in node.children)
        if isinstance(node, Difference):
            return self.cardinality(node.children[0])
        if isinstance(node, Aggregate):
            child_card = self.cardinality(node.children[0])
            return max(1.0, SELECTION_SELECTIVITY * child_card)
        if isinstance(node, StreamingInvocation):
            # Like β: one output tuple per operand tuple per instant.
            return self.cardinality(node.children[0])
        return 100.0

    def delta_cardinality(
        self, node: Operator, churn: float = DEFAULT_CHURN
    ) -> float:
        """Estimated per-tick *delta* size under the incremental engine.

        ``churn`` is the fraction of every base relation changing per
        instant; deltas then flow bottom-up the way the physical executors
        (:mod:`repro.exec.executors`) propagate them.  The β∞ operator is
        the deliberate exception: a streaming invocation re-emits for
        every operand tuple at every instant, so its delta is its full
        cardinality regardless of churn.
        """
        if isinstance(node, (Scan, BaseRelation)):
            return churn * self.cardinality(node)
        if isinstance(node, Selection):
            selectivity = SELECTION_SELECTIVITY
            if self.statistics is not None:
                selectivity = self.statistics.selectivity(node.formula)
            return selectivity * self.delta_cardinality(node.children[0], churn)
        if isinstance(node, (Projection, Renaming, Assignment, Streaming)):
            return self.delta_cardinality(node.children[0], churn)
        if isinstance(node, Window):
            # Arrivals at this instant plus the bucket expiring: ~2 deltas.
            return 2.0 * self.delta_cardinality(node.children[0], churn)
        if isinstance(node, Invocation):
            return self.delta_cardinality(node.children[0], churn)
        if isinstance(node, StreamingInvocation):
            return self.cardinality(node.children[0])
        if isinstance(node, NaturalJoin):
            left, right = node.children
            dl = self.delta_cardinality(left, churn)
            dr = self.delta_cardinality(right, churn)
            cl, cr = self.cardinality(left), self.cardinality(right)
            if not node.predicate_names:
                return dl * cr + dr * cl
            factor = JOIN_SELECTIVITY
            if self.statistics is not None:
                factor = 1.0
                for key in node.predicate_names:
                    distinct = self.statistics.distinct_anywhere(key)
                    factor *= 1.0 / distinct if distinct else JOIN_SELECTIVITY
            return factor * (dl * cr + dr * cl)
        if isinstance(node, (Union, Intersection, Difference)):
            return sum(self.delta_cardinality(c, churn) for c in node.children)
        if isinstance(node, Aggregate):
            # One recomputed group row per affected member, at most.
            return min(
                self.delta_cardinality(node.children[0], churn),
                self.cardinality(node),
            )
        # Unknown operator: the engine falls back to naive re-evaluation
        # of the subtree, so the whole result is touched each tick.
        return self.cardinality(node)

    def service_cost(self, prototype_name: str) -> float:
        """Per-invocation cost of one call to ``prototype_name``,
        including the risk premium when the prototype has no registered
        substitute (see ``substitutable``)."""
        per_call = self.service_costs.get(prototype_name, DEFAULT_SERVICE_COST)
        if self.substitutable is not None and prototype_name not in self.substitutable:
            per_call *= UNSUBSTITUTABLE_RISK_PREMIUM
        return per_call

    def invocation_cost(self, node: Invocation) -> float:
        """Expected invocation cost of one β node: one call per input tuple."""
        per_call = self.service_cost(node.binding_pattern.prototype.name)
        return per_call * self.cardinality(node.children[0])

    # -- plan cost -------------------------------------------------------------

    def cost(self, plan: Operator | Query) -> PlanCost:
        """Total estimated cost of the plan (sum over all nodes)."""
        root = plan.root if isinstance(plan, Query) else plan
        invocations = 0.0
        tuples = 0.0
        for node in root.walk():
            tuples += self.cardinality(node)
            if isinstance(node, Invocation):
                invocations += self.invocation_cost(node)
            elif isinstance(node, StreamingInvocation):
                per_call = self.service_cost(node.binding_pattern.prototype.name)
                invocations += per_call * self.cardinality(node.children[0])
        return PlanCost(
            total=tuples + invocations,
            invocations=invocations,
            tuples_processed=tuples,
        )

    def tick_cost(
        self,
        plan: Operator | Query,
        engine: str = "incremental",
        churn: float = DEFAULT_CHURN,
        backend: str = "row",
        shards: int = 1,
    ) -> PlanCost:
        """Estimated *steady-state per-tick* cost of a registered
        continuous query.

        Under ``engine="naive"`` every operator touches its full result
        each tick.  Under ``engine="incremental"`` natively-lowered
        operators (see :func:`repro.exec.lowering.supported_operator`)
        touch only their deltas; an operator without a native executor
        makes its whole subtree fall back to naive evaluation.  In both
        engines the invocation operator only invokes for newly inserted
        tuples (its per-tuple cache), so service cost scales with deltas
        either way — what the incremental engine buys is the tuple
        processing, which dominates invocation-free plans.

        ``backend="columnar"`` (``engine="columnar"`` is sugar for
        incremental + this) scales the per-delta-tuple cost of operators
        with a native batch executor (see
        :data:`repro.exec.lowering.COLUMNAR_ACCELERATED`) by
        :data:`COLUMNAR_TUPLE_FACTOR`; operators that keep their row
        executor under the columnar backend are unaffected, as is
        service cost — the network does not get faster because the
        deltas are columns.

        ``shards > 1`` models the federated engine: every maximal
        σ/π/ρ/α-over-scan chain (the scatterable subtrees of
        :mod:`repro.fed.registry`) processes ``1/shards`` of its delta
        per zone, and the chain root pays the gather merge —
        ``shards × SHARD_MERGE_FACTOR`` of its delta — at the
        coordinator.  Non-scatterable operators (joins, windows,
        invocations) and all service costs are unaffected: they run at
        the coordinator either way.
        """
        root = plan.root if isinstance(plan, Query) else plan
        if engine == "columnar":
            engine, backend = "incremental", "columnar"
        if engine == "incremental":
            # The physical layer builds on the algebra; import here so the
            # algebra package stays importable on its own.
            from repro.exec.lowering import columnar_operator, supported_operator
        else:
            supported_operator = lambda node: False  # noqa: E731
            columnar_operator = lambda node: False  # noqa: E731
        columnar = backend == "columnar"
        chain_members, chain_roots = (
            _scatter_chains(root) if shards > 1 else (frozenset(), frozenset())
        )
        invocations = 0.0
        tuples = 0.0

        def visit(node: Operator, lowered: bool) -> None:
            nonlocal invocations, tuples
            lowered = lowered and supported_operator(node)
            if lowered:
                factor = (
                    COLUMNAR_TUPLE_FACTOR
                    if columnar and columnar_operator(node)
                    else 1.0
                )
                delta = factor * self.delta_cardinality(node, churn)
                if node.uid in chain_members:
                    delta /= shards
                    if node.uid in chain_roots:
                        delta += (
                            shards
                            * SHARD_MERGE_FACTOR
                            * self.delta_cardinality(node, churn)
                        )
                tuples += delta
            else:
                tuples += self.cardinality(node)
            if isinstance(node, Invocation):
                per_call = self.service_cost(node.binding_pattern.prototype.name)
                invocations += per_call * self.delta_cardinality(
                    node.children[0], churn
                )
            elif isinstance(node, StreamingInvocation):
                per_call = self.service_cost(node.binding_pattern.prototype.name)
                invocations += per_call * self.cardinality(node.children[0])
            for child in node.children:
                visit(child, lowered)

        visit(root, engine == "incremental")
        return PlanCost(
            total=tuples + invocations,
            invocations=invocations,
            tuples_processed=tuples,
        )


def _scatter_chains(root: Operator) -> tuple[frozenset[int], frozenset[int]]:
    """Node uids of maximal σ/π/ρ/α-over-one-scan chains (the subtrees
    the federated registry scatters), plus the uids of the chain roots.
    The scan leaf belongs to its chain: each zone scans only its own
    partition's delta."""
    chain_kinds = (Selection, Projection, Renaming, Assignment)
    members: set[int] = set()
    roots: set[int] = set()

    def heads_chain(node: Operator) -> bool:
        cur = node
        while isinstance(cur, chain_kinds):
            cur = cur.children[0]
        return isinstance(cur, Scan)

    def walk(node: Operator, parent_in_chain: bool) -> None:
        in_chain = isinstance(node, chain_kinds) and heads_chain(node)
        if in_chain:
            members.add(node.uid)
            if not parent_in_chain:
                roots.add(node.uid)
        elif parent_in_chain and isinstance(node, Scan):
            members.add(node.uid)
        for child in node.children:
            walk(child, in_chain)

    walk(root, False)
    return frozenset(members), frozenset(roots)
