"""Query rewriting rules (Section 3.3, Table 5).

Each rule is a *directed* transformation on plan trees that preserves
equivalence in the sense of Definition 9: the rewritten query produces the
same resulting X-Relation and the same action set on every environment.

The active/passive opposition drives the legality of rules involving the
invocation operator: like non-deterministic UDFs in standard SQL, an
invocation of an *active* binding pattern must happen for exactly the same
input tuples before and after rewriting.  Rules that change which tuples
reach an invocation operator (pushing a selection below it, pushing it
through a join) therefore require the binding pattern to be *passive*;
rules that preserve the invoked tuple set modulo duplicate collapsing
(projection commutation, where the pattern's attributes are all kept) are
legal for active patterns too, because action sets are *sets* (Def. 8).

The engine is deliberately simple: :func:`apply_rule` rewrites the topmost
applicable node, :func:`rewrite_fixpoint` iterates a rule list to a fixed
point, and :class:`RewriteTrace` records what fired for EXPLAIN-style
output and for the benchmarks of the optimizer ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.algebra.formula import And
from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.selection import Selection
from repro.algebra.query import Query
from repro.errors import InvalidOperatorError, SchemaError

__all__ = [
    "RewriteRule",
    "RewriteTrace",
    "apply_rule",
    "rewrite_fixpoint",
    "DEFAULT_RULES",
    "PUSHDOWN_RULES",
    "rule_by_name",
]


@dataclass(frozen=True)
class RewriteRule:
    """A named, directed plan transformation.

    ``transform`` returns the rewritten node, or None when the rule does
    not apply at this node.  Transformations must be *local*: they only
    inspect and rebuild the node and its immediate children.
    """

    name: str
    description: str
    transform: Callable[[Operator], Operator | None]

    def apply(self, node: Operator) -> Operator | None:
        return self.transform(node)


@dataclass
class RewriteTrace:
    """Which rules fired, in order, during a rewrite session."""

    steps: list[str] = field(default_factory=list)

    def record(self, rule: RewriteRule) -> None:
        self.steps.append(rule.name)

    def __len__(self) -> int:
        return len(self.steps)


# ---------------------------------------------------------------------------
# Rule implementations
# ---------------------------------------------------------------------------
#
# Naming: ``X_below_Y`` moves operator X below operator Y in the tree
# (i.e. X is applied earlier).  All rules take the *current* node and
# return its replacement.


def _selection_below_assignment(node: Operator) -> Operator | None:
    """σ_F(α_{A:=·}(r)) → α(σ_F(r))   if A ∉ attrs(F)   [Table 5, row 2]."""
    if not isinstance(node, Selection):
        return None
    (child,) = node.children
    if not isinstance(child, Assignment):
        return None
    if child.attribute in node.formula.attributes():
        return None
    (grandchild,) = child.children
    return child.with_children((Selection(grandchild, node.formula),))


def _assignment_below_selection(node: Operator) -> Operator | None:
    """α(σ_F(r)) → σ_F(α(r))   if A ∉ attrs(F)   [Table 5, row 2, reverse]."""
    if not isinstance(node, Assignment):
        return None
    (child,) = node.children
    if not isinstance(child, Selection):
        return None
    if node.attribute in child.formula.attributes():
        return None
    (grandchild,) = child.children
    return Selection(node.with_children((grandchild,)), child.formula)


def _selection_below_invocation(node: Operator) -> Operator | None:
    """σ_F(β_bp(r)) → β_bp(σ_F(r))   if bp passive and attrs(F) are real
    below β   [Table 5, invocation column].

    Requires the binding pattern to be passive: pushing the selection
    changes which tuples are invoked, which would alter the action set of
    an active pattern (this is exactly the Q1 vs Q1′ non-equivalence).
    """
    if not isinstance(node, Selection):
        return None
    (child,) = node.children
    if not isinstance(child, Invocation):
        return None
    if child.binding_pattern.active:
        return None
    if node.formula.attributes() & child.binding_pattern.output_names:
        return None
    (grandchild,) = child.children
    try:
        pushed = Selection(grandchild, node.formula)
    except (InvalidOperatorError, SchemaError):
        return None
    return child.with_children((pushed,))


def _invocation_below_selection(node: Operator) -> Operator | None:
    """β_bp(σ_F(r)) → σ_F(β_bp(r))   if bp passive   [reverse direction].

    Legal for passive patterns only: the hoisted invocation runs on *more*
    tuples, which is invisible in the result (the selection removes them
    afterwards) and leaves an empty action set unchanged.
    """
    if not isinstance(node, Invocation):
        return None
    if node.binding_pattern.active:
        return None
    (child,) = node.children
    if not isinstance(child, Selection):
        return None
    (grandchild,) = child.children
    try:
        hoisted = node.with_children((grandchild,))
    except (InvalidOperatorError, SchemaError):
        return None
    return Selection(hoisted, child.formula)


def _projection_below_assignment(node: Operator) -> Operator | None:
    """π_L(α_{A:=B}(r)) → α(π_L(r))   if A (and B) ∈ L   [Table 5, row 1]."""
    if not isinstance(node, Projection):
        return None
    (child,) = node.children
    if not isinstance(child, Assignment):
        return None
    kept = set(node.names)
    if child.attribute not in kept:
        return None
    if child.from_attribute and child.value not in kept:
        return None
    (grandchild,) = child.children
    try:
        pushed = Projection(grandchild, node.names)
        return child.with_children((pushed,))
    except (InvalidOperatorError, SchemaError):
        return None


def _projection_below_invocation(node: Operator) -> Operator | None:
    """π_L(β_bp(r)) → β_bp(π_L(r))   if every attribute bp references ∈ L.

    Legal for active patterns too: the action set only contains the
    pattern's service reference and input attributes, all of which are in
    L, and action sets collapse duplicates (Definition 8).
    """
    if not isinstance(node, Projection):
        return None
    (child,) = node.children
    if not isinstance(child, Invocation):
        return None
    if not child.binding_pattern.referenced_names <= set(node.names):
        return None
    if child.binding_pattern.active:
        # Duplicate collapsing by the pushed projection could *reduce* the
        # number of physical invocations while keeping the same action
        # set.  Definition 9 compares action sets, so this is equivalent,
        # but we still require the projection to be lossless on the
        # pattern's inputs — guaranteed by the referenced_names check.
        pass
    (grandchild,) = child.children
    try:
        pushed = Projection(grandchild, node.names)
        return child.with_children((pushed,))
    except (InvalidOperatorError, SchemaError):
        return None


def _selection_below_join(node: Operator) -> Operator | None:
    """σ_F(r1 ⋈ r2) → σ_F(r1) ⋈ r2   if attrs(F) ⊆ realSchema(R1)
    (and symmetrically)   [classical pushdown, Table 5 row 3 analogue]."""
    if not isinstance(node, Selection):
        return None
    (child,) = node.children
    if not isinstance(child, NaturalJoin):
        return None
    left, right = child.children
    needed = node.formula.attributes()
    if needed <= left.schema.real_names:
        return NaturalJoin(Selection(left, node.formula), right)
    if needed <= right.schema.real_names:
        return NaturalJoin(left, Selection(right, node.formula))
    return None


def _assignment_below_join(node: Operator) -> Operator | None:
    """α_{A:=·}(r1 ⋈ r2) → α(r1) ⋈ r2   if the assignment concerns only
    R1's attributes and A is not real in R2   [Table 5, row 3]."""
    if not isinstance(node, Assignment):
        return None
    (child,) = node.children
    if not isinstance(child, NaturalJoin):
        return None
    left, right = child.children
    for side, other in ((left, right), (right, left)):
        in_side = node.attribute in side.schema
        source_ok = (not node.from_attribute) or (
            isinstance(node.value, str) and node.value in side.schema.real_names
        )
        # A must still be virtual in the join output, which the Assignment
        # constructor has already checked; pushing is sound only if A does
        # not appear real in the other operand and pushing does not create
        # a new join predicate (A must not appear in the other operand at
        # all, otherwise realizing it on one side adds a join attribute).
        if in_side and source_ok and node.attribute not in other.schema:
            try:
                pushed = node.with_children((side,))
            except (InvalidOperatorError, SchemaError):
                continue
            if side is left:
                return NaturalJoin(pushed, right)
            return NaturalJoin(left, pushed)
    return None


def _invocation_below_join(node: Operator) -> Operator | None:
    """β_bp(r1 ⋈ r2) → β_bp(r1) ⋈ r2   if bp is passive and entirely
    within R1 (and its outputs do not occur in R2)   [Table 5, row 3]."""
    if not isinstance(node, Invocation):
        return None
    if node.binding_pattern.active:
        return None
    (child,) = node.children
    if not isinstance(child, NaturalJoin):
        return None
    left, right = child.children
    bp = node.binding_pattern
    for side, other in ((left, right), (right, left)):
        if bp not in side.schema.binding_patterns:
            continue
        if bp.output_names & other.schema.name_set:
            continue
        try:
            pushed = node.with_children((side,))
        except (InvalidOperatorError, SchemaError):
            continue
        if side is left:
            return NaturalJoin(pushed, right)
        return NaturalJoin(left, pushed)
    return None


def _merge_selections(node: Operator) -> Operator | None:
    """σ_F(σ_G(r)) → σ_{G ∧ F}(r)   [classical]."""
    if not isinstance(node, Selection):
        return None
    (child,) = node.children
    if not isinstance(child, Selection):
        return None
    (grandchild,) = child.children
    return Selection(grandchild, And(child.formula, node.formula))


def _cascade_projections(node: Operator) -> Operator | None:
    """π_L(π_M(r)) → π_L(r)   if L ⊆ M   [classical]."""
    if not isinstance(node, Projection):
        return None
    (child,) = node.children
    if not isinstance(child, Projection):
        return None
    if not set(node.names) <= set(child.names):
        return None
    (grandchild,) = child.children
    return Projection(grandchild, node.names)


# ---------------------------------------------------------------------------
# Rule catalog
# ---------------------------------------------------------------------------

_RULES = [
    RewriteRule(
        "selection_below_assignment",
        "push σ below α when the realized attribute is not in the formula",
        _selection_below_assignment,
    ),
    RewriteRule(
        "assignment_below_selection",
        "hoist σ above α (reverse of selection_below_assignment)",
        _assignment_below_selection,
    ),
    RewriteRule(
        "selection_below_invocation",
        "push σ below a passive β: filter before invoking (saves calls)",
        _selection_below_invocation,
    ),
    RewriteRule(
        "invocation_below_selection",
        "hoist σ above a passive β (reverse direction)",
        _invocation_below_selection,
    ),
    RewriteRule(
        "projection_below_assignment",
        "push π below α when it keeps the assigned attributes",
        _projection_below_assignment,
    ),
    RewriteRule(
        "projection_below_invocation",
        "push π below β when it keeps all attributes β references",
        _projection_below_invocation,
    ),
    RewriteRule(
        "selection_below_join",
        "push σ into the join operand that owns its attributes",
        _selection_below_join,
    ),
    RewriteRule(
        "assignment_below_join",
        "push α into the join operand that owns its attributes",
        _assignment_below_join,
    ),
    RewriteRule(
        "invocation_below_join",
        "push a passive β into the join operand that binds it",
        _invocation_below_join,
    ),
    RewriteRule(
        "merge_selections",
        "merge stacked selections into one conjunction",
        _merge_selections,
    ),
    RewriteRule(
        "cascade_projections",
        "collapse stacked projections",
        _cascade_projections,
    ),
]

_RULE_INDEX = {rule.name: rule for rule in _RULES}

#: All rules (both directions); use :data:`PUSHDOWN_RULES` for optimization.
DEFAULT_RULES: tuple[RewriteRule, ...] = tuple(_RULES)

#: The subset that monotonically moves cheap operators (σ, π) down and
#: defers invocations — the heuristic of Section 3.3.
PUSHDOWN_RULES: tuple[RewriteRule, ...] = tuple(
    _RULE_INDEX[name]
    for name in (
        "merge_selections",
        "cascade_projections",
        "selection_below_assignment",
        "selection_below_invocation",
        "selection_below_join",
    )
)


def rule_by_name(name: str) -> RewriteRule:
    """Look up a rule by its name."""
    try:
        return _RULE_INDEX[name]
    except KeyError:
        raise KeyError(
            f"unknown rewrite rule {name!r}; known: {sorted(_RULE_INDEX)}"
        ) from None


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def apply_rule(root: Operator, rule: RewriteRule) -> Operator | None:
    """Apply ``rule`` at the topmost applicable node of the tree.

    Returns the rewritten tree or None if the rule applies nowhere.
    """
    replacement = rule.apply(root)
    if replacement is not None:
        return replacement
    for position, child in enumerate(root.children):
        rewritten = apply_rule(child, rule)
        if rewritten is not None:
            children = list(root.children)
            children[position] = rewritten
            return root.with_children(children)
    return None


def rewrite_fixpoint(
    root: Operator | Query,
    rules: Sequence[RewriteRule] = PUSHDOWN_RULES,
    max_steps: int = 200,
    trace: RewriteTrace | None = None,
) -> Operator | Query:
    """Apply ``rules`` repeatedly until none fires (or ``max_steps``).

    Accepts and returns either a bare plan or a :class:`Query` (preserving
    its name).  The default rule set is confluent and terminating (each
    rule strictly decreases the depth of σ/π nodes); arbitrary rule sets
    are guarded by ``max_steps``.
    """
    if isinstance(root, Query):
        rewritten = rewrite_fixpoint(root.root, rules, max_steps, trace)
        assert isinstance(rewritten, Operator)
        return Query(rewritten, root.name)
    node = root
    for _ in range(max_steps):
        for rule in rules:
            rewritten = apply_rule(node, rule)
            if rewritten is not None:
                if trace is not None:
                    trace.record(rule)
                node = rewritten
                break
        else:
            return node
    return node
