"""The Serena algebra (Section 3): operators, queries, equivalence,
rewriting and optimization over relational pervasive environments."""

from repro.algebra.actions import Action, ActionSet
from repro.algebra.builder import PlanBuilder, relation, scan
from repro.algebra.context import EvaluationContext
from repro.algebra.cost import CostModel, PlanCost
from repro.algebra.equivalence import (
    EquivalenceReport,
    check_equivalence,
    equivalent_on,
)
from repro.algebra.formula import And, Comparison, Formula, Not, Or, TrueFormula, col
from repro.algebra.operators import (
    Aggregate,
    AggregateFunction,
    AggregateSpec,
    Assignment,
    BaseRelation,
    Difference,
    Intersection,
    Invocation,
    NaturalJoin,
    Operator,
    Projection,
    Renaming,
    Scan,
    Selection,
    Streaming,
    StreamingInvocation,
    StreamType,
    Union,
    Window,
)
from repro.algebra.optimizer import OptimizationResult, Optimizer, optimize_heuristic
from repro.algebra.query import NodeProfile, Query, QueryProfile, QueryResult
from repro.algebra.fingerprint import canonical_plan, plan_fingerprint
from repro.algebra.normalize import (
    normalize,
    normalize_formula,
    syntactically_equivalent,
)
from repro.algebra.statistics import (
    EnvironmentStatistics,
    RelationStatistics,
    collect_statistics,
)
from repro.algebra.rewriting import (
    DEFAULT_RULES,
    PUSHDOWN_RULES,
    RewriteRule,
    RewriteTrace,
    apply_rule,
    rewrite_fixpoint,
    rule_by_name,
)

__all__ = [
    "Action",
    "ActionSet",
    "Aggregate",
    "AggregateFunction",
    "AggregateSpec",
    "And",
    "Assignment",
    "BaseRelation",
    "Comparison",
    "CostModel",
    "DEFAULT_RULES",
    "Difference",
    "EnvironmentStatistics",
    "EquivalenceReport",
    "EvaluationContext",
    "Formula",
    "Intersection",
    "Invocation",
    "NaturalJoin",
    "NodeProfile",
    "Not",
    "Operator",
    "OptimizationResult",
    "Optimizer",
    "Or",
    "PUSHDOWN_RULES",
    "PlanBuilder",
    "PlanCost",
    "Projection",
    "Query",
    "QueryProfile",
    "QueryResult",
    "RelationStatistics",
    "Renaming",
    "RewriteRule",
    "RewriteTrace",
    "Scan",
    "Selection",
    "StreamType",
    "Streaming",
    "StreamingInvocation",
    "TrueFormula",
    "Union",
    "Window",
    "apply_rule",
    "check_equivalence",
    "collect_statistics",
    "col",
    "equivalent_on",
    "canonical_plan",
    "normalize",
    "normalize_formula",
    "plan_fingerprint",
    "optimize_heuristic",
    "relation",
    "rewrite_fixpoint",
    "rule_by_name",
    "scan",
    "syntactically_equivalent",
]
