"""Feedback-driven re-optimization of registered continuous queries.

The cost model ranks plans from cardinality *estimates* sampled when a
query is registered; a pervasive environment then drifts — sensors join,
leases expire, substitution rebinds providers — until the estimates no
longer describe the observed workload.  The
:class:`FeedbackReoptimizer` closes the loop:

1. at registration it records the cost model's estimated per-tick delta
   cardinality of the query's plan (fresh environment statistics);
2. every evaluated tick it observes the actual reported-delta size;
3. once a query's observed mean diverges from the estimate by the
   ``divergence`` factor (default 2×, in either direction) over a full
   observation window, it re-runs the cost-based :class:`Optimizer`
   against *fresh* statistics and — if the search finds a structurally
   different plan — swaps the physical plan in place via
   :meth:`~repro.continuous.continuous_query.ContinuousQuery.swap_plan`,
   the same in-place executor replacement the substitution machinery
   relies on (warm shared subtrees keep their lease; the first post-swap
   reported delta is netted against the pre-swap relation, so downstream
   consumers never see a re-materialization).

Only *swappable* queries participate (no stream emissions, no active
binding patterns — see :attr:`ContinuousQuery.swappable`); everything is
deterministic: observation windows are tick-counted, the optimizer search
is breadth-first with a fixed budget, and decisions depend only on the
journals and statistics of strictly earlier instants.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.algebra.cost import CostModel, DEFAULT_CHURN
from repro.algebra.optimizer import Optimizer
from repro.algebra.statistics import collect_statistics
from repro.model.environment import PervasiveEnvironment
from repro.obs.observe import Observability

__all__ = ["FeedbackReoptimizer", "ReoptimizationEvent"]


@dataclass(frozen=True)
class ReoptimizationEvent:
    """One re-optimization decision, kept in :attr:`FeedbackReoptimizer.log`."""

    instant: int
    query_name: str
    estimate: float
    observed: float
    swapped: bool  # False: search kept the current plan

    def describe(self) -> str:
        action = "swapped plan" if self.swapped else "kept plan"
        return (
            f"@{self.instant} {self.query_name}: estimated delta "
            f"{self.estimate:.2f}/tick, observed {self.observed:.2f}/tick "
            f"— {action}"
        )


@dataclass
class _Watch:
    """Per-query feedback state."""

    estimate: float
    window: deque = field(default_factory=deque)
    cooldown_until: int = -1


class FeedbackReoptimizer:
    """Watches reported-delta cardinalities and re-lowers divergent plans.

    Parameters
    ----------
    environment:
        Supplies the statistics snapshots the cost model estimates from.
    divergence:
        Trigger factor: re-optimize when ``observed mean >= divergence *
        estimate`` or ``observed mean <= estimate / divergence``.
    min_window:
        Evaluated ticks to observe before a decision is possible (a full
        window is also required again after every decision).
    cooldown:
        Instants to wait after a decision before re-examining the same
        query — re-lowering every tick would thrash executor state.
    plan_budget, churn:
        Passed to the cost-based :class:`Optimizer` search.
    """

    def __init__(
        self,
        environment: PervasiveEnvironment,
        divergence: float = 2.0,
        min_window: int = 8,
        cooldown: int = 16,
        plan_budget: int = 200,
        churn: float = DEFAULT_CHURN,
        observe: "Observability | str | None" = None,
    ):
        if divergence <= 1.0:
            raise ValueError("divergence factor must exceed 1.0")
        if min_window < 1:
            raise ValueError("min_window must be at least 1")
        self.environment = environment
        self.divergence = divergence
        self.min_window = min_window
        self.cooldown = cooldown
        self.plan_budget = plan_budget
        self.churn = churn
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        metrics = self.obs.metrics
        self._reopt_total = {
            outcome: metrics.counter(
                "serena_reoptimizations_total",
                "Feedback-driven re-optimization decisions",
                outcome=outcome,
            )
            for outcome in ("swapped", "kept")
        }
        self._watches: dict[str, _Watch] = {}
        #: All decisions, in order (swaps and kept-plan verdicts alike).
        self.log: list[ReoptimizationEvent] = []

    # -- bookkeeping -------------------------------------------------------------

    def _cost_model(self, instant: int) -> CostModel:
        subs = getattr(self.environment.registry, "substitutions", None)
        return CostModel(
            self.environment,
            instant=instant,
            statistics=collect_statistics(self.environment, instant),
            substitutable=subs.prototype_names if subs is not None else None,
        )

    def _estimate(self, query, instant: int) -> float:
        model = self._cost_model(instant)
        return model.delta_cardinality(query.root, churn=self.churn)

    def watch(self, name: str, continuous, instant: int) -> bool:
        """Start observing a registered query; returns False (and does
        nothing) for queries whose plan cannot be swapped."""
        if not continuous.swappable:
            return False
        self._watches[name] = _Watch(
            estimate=self._estimate(continuous.query, instant)
        )
        return True

    def unwatch(self, name: str) -> None:
        self._watches.pop(name, None)

    @property
    def watched(self) -> tuple[str, ...]:
        return tuple(sorted(self._watches))

    def observe(self, name: str, continuous, instant: int) -> None:
        """Record the reported-delta cardinality of one evaluated tick."""
        watch = self._watches.get(name)
        if watch is None:
            return
        delta = continuous.last_reported_delta
        watch.window.append(len(delta.inserted) + len(delta.deleted))
        if len(watch.window) > self.min_window:
            watch.window.popleft()

    # -- the decision ------------------------------------------------------------

    def _divergent(self, watch: _Watch) -> float | None:
        """The observed mean if it diverges ≥ the trigger factor, else None."""
        if len(watch.window) < self.min_window:
            return None
        observed = sum(watch.window) / len(watch.window)
        floor = max(watch.estimate, 1e-9)
        if observed >= self.divergence * floor:
            return observed
        if watch.estimate > 0 and observed <= watch.estimate / self.divergence:
            return observed
        return None

    def reoptimize(self, queries, scheduler, instant: int) -> list[str]:
        """Re-lower every watched query whose observations diverged.

        ``queries`` maps name → ContinuousQuery; ``scheduler`` (may be
        None) is refreshed for swapped plans it indexes.  Returns the
        names whose plans were actually swapped.  Called by the query
        processor after the per-tick evaluation loop, so swaps take
        effect at the *next* instant — decisions only ever consult
        strictly earlier observations (§3.2 determinism).
        """
        swapped: list[str] = []
        for name in sorted(self._watches):
            watch = self._watches[name]
            if instant < watch.cooldown_until:
                continue
            observed = self._divergent(watch)
            if observed is None:
                continue
            continuous = queries.get(name)
            if continuous is None:
                self.unwatch(name)
                continue
            model = self._cost_model(instant)
            optimizer = Optimizer(
                model,
                plan_budget=self.plan_budget,
                engine="incremental",
                churn=self.churn,
                backend=continuous.backend,
            )
            result = optimizer.optimize(continuous.query)
            changed = result.query.root != continuous.query.root
            if changed:
                continuous.swap_plan(result.query)
                if scheduler is not None and name in scheduler:
                    scheduler.refresh(name, continuous)
                swapped.append(name)
            event = ReoptimizationEvent(
                instant, name, watch.estimate, observed, changed
            )
            self.log.append(event)
            self._reopt_total["swapped" if changed else "kept"].inc()
            if self.obs.tracing_on:
                self.obs.tracer.event(
                    "reoptimize",
                    instant,
                    query=name,
                    estimate=round(watch.estimate, 4),
                    observed=round(observed, 4),
                    swapped=changed,
                )
            # Either way, restart the feedback loop against the plan that
            # is now running: fresh estimate, empty window, cooldown.
            watch.estimate = self._estimate(continuous.query, instant)
            watch.window.clear()
            watch.cooldown_until = instant + self.cooldown
        return swapped

    def report(self) -> dict:
        """Introspection payload (the CLI's ``.reopt``-style dumps)."""
        return {
            "watched": {
                name: {
                    "estimate": watch.estimate,
                    "window": list(watch.window),
                    "cooldown_until": watch.cooldown_until,
                }
                for name, watch in sorted(self._watches.items())
            },
            "decisions": [event.describe() for event in self.log],
        }

    def __repr__(self) -> str:
        return (
            f"FeedbackReoptimizer({len(self._watches)} watched, "
            f"{len(self.log)} decisions)"
        )
