"""Physical execution layer for the Serena algebra.

The logical algebra (:mod:`repro.algebra`) defines *what* a plan means —
schema derivation, rewriting, equivalence.  This package defines *how* a
registered continuous query runs: a logical operator tree is lowered
(:mod:`repro.exec.lowering`) into a tree of incremental executors
(:mod:`repro.exec.executors`) that consume ``(inserted, deleted)`` delta
sets from their children and maintain per-node state (hash indexes,
support counts, invocation caches, window buffers), so steady-state tick
cost is proportional to the *changes* in the environment rather than to
relation sizes.  The :class:`~repro.exec.engine.IncrementalEngine` drives
the executor tree instant by instant and produces the same per-tick
:class:`~repro.algebra.query.QueryResult` as the naive re-evaluating
engine, which is kept as a differential-testing oracle.

For multi-query workloads, :mod:`repro.exec.shared` lets structurally
equivalent subplans of different registered queries run on the same
executor instances (refcounted), and :mod:`repro.exec.scheduler` skips
queries whose sources provably did not change since their last tick.
"""

from repro.exec.delta import EMPTY_DELTA, Delta
from repro.exec.engine import IncrementalEngine
from repro.exec.executors import Executor
from repro.exec.lowering import lower, lowering_summary, supported_operator
from repro.exec.scheduler import TickScheduler
from repro.exec.shared import SharedEngine, SharedPlan, SharedPlanRegistry

__all__ = [
    "Delta",
    "EMPTY_DELTA",
    "Executor",
    "IncrementalEngine",
    "SharedEngine",
    "SharedPlan",
    "SharedPlanRegistry",
    "TickScheduler",
    "lower",
    "lowering_summary",
    "supported_operator",
]
