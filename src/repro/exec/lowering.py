"""Lowering: logical Serena plans → physical executor trees.

The lowering pass is the seam between the two layers: the optimizer
rewrites *logical* trees (:mod:`repro.algebra`), and once a plan is
chosen, :func:`lower` translates each logical node into its incremental
executor (:mod:`repro.exec.executors`).

Lowering is *total*: a logical operator with no registered executor is
wrapped in a :class:`~repro.exec.executors.FallbackExec`, which evaluates
that whole subtree with the naive engine each tick and diffs the results
— new logical operators keep working on the incremental engine, merely
without the delta speedup.  :func:`supported_operator` reports whether a
node has a native incremental executor, which the cost model uses to
decide whether a plan's steady-state tick cost scales with deltas or with
cardinalities.

Node sharing is preserved: a logical node reachable through several plan
branches is lowered to a *single* executor (memoized by ``Operator.uid``),
mirroring the naive engine's per-node evaluation memo.

Backends
--------
Two physical backends share this pass.  ``backend="row"`` (the default)
lowers every node to the tuple-at-a-time executors; ``backend="columnar"``
swaps the hot relational core — scan, σ, π, ρ, α, ⋈ — for the
batch-evaluating executors of :mod:`repro.exec.vectorized`, which move
:class:`~repro.exec.columnar.ColumnarDelta` batches instead of tuple
sets.  All remaining operators (set ops, γ, β, β∞, S[type], W[period],
fallback) lower to their row executors under either backend — the delta
contract is backend-neutral, so the two kinds compose freely in one tree.

Compile-at-lowering convention: anything evaluated per row per tick —
selection formulas, join key gathers, join output combiners — is
specialized to a closure *here*, exactly once, when the executor is
built.  The columnar executors then run those closures over batches with
no per-row interpretation (no dict rows, no formula-AST walks).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.algebra.formula import (
    And,
    Comparison,
    Formula,
    Not,
    Or,
    TrueFormula,
)
from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import Aggregate
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import BaseRelation, Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.operators.setops import Difference, Intersection, Union
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.streaming import Streaming
from repro.algebra.operators.window import Window
from repro.errors import SerenaError
from repro.exec import executors as x
from repro.model.xschema import ExtendedRelationSchema

__all__ = [
    "BACKENDS",
    "COLUMNAR_ACCELERATED",
    "columnar_operator",
    "compile_combiner",
    "compile_key",
    "compile_predicate",
    "lower",
    "lowering_summary",
    "lowerings_for",
    "supported_operator",
]

#: The physical executor backends the lowering pass can target.
BACKENDS = ("row", "columnar")

# Logical operator class → executor factory taking (node, *child executors).
_LOWERINGS: dict[type, Callable[..., x.Executor]] = {
    Scan: lambda node: x.ScanExec(node),
    BaseRelation: lambda node: x.BaseRelationExec(node),
    Selection: x.SelectionExec,
    Projection: x.ProjectionExec,
    Renaming: x.RenamingExec,
    Assignment: x.AssignmentExec,
    NaturalJoin: x.JoinExec,
    Union: x.UnionExec,
    Intersection: x.IntersectionExec,
    Difference: x.DifferenceExec,
    Aggregate: x.AggregateExec,
    Invocation: x.InvocationExec,
    StreamingInvocation: x.StreamingInvocationExec,
    Streaming: x.StreamingExec,
    Window: x.WindowExec,
}

#: Logical operators with a native *columnar* executor; everything else
#: runs its row executor under either backend.  The cost model scales
#: these nodes' per-delta-tuple cost down under backend="columnar".
COLUMNAR_ACCELERATED = frozenset(
    {Scan, Selection, Projection, Renaming, Assignment, NaturalJoin}
)

_BACKEND_LOWERINGS: dict[str, dict[type, Callable[..., x.Executor]]] = {
    "row": _LOWERINGS
}


def _columnar_lowerings() -> dict[type, Callable[..., x.Executor]]:
    # Imported lazily: vectorized.py uses the compile_* helpers below, so
    # a module-level import here would be circular.
    from repro.exec import vectorized as v

    merged = dict(_LOWERINGS)
    merged.update(
        {
            Scan: lambda node: v.ColumnarScanExec(node),
            Selection: v.ColumnarSelectionExec,
            Projection: v.ColumnarProjectionExec,
            Renaming: v.ColumnarRenamingExec,
            Assignment: v.ColumnarAssignmentExec,
            NaturalJoin: v.ColumnarJoinExec,
        }
    )
    return merged


def lowerings_for(backend: str) -> dict[type, Callable[..., x.Executor]]:
    """The operator → executor-factory table of ``backend``."""
    table = _BACKEND_LOWERINGS.get(backend)
    if table is None:
        if backend not in BACKENDS:
            raise SerenaError(
                f"unknown executor backend {backend!r}: choose from "
                f"{', '.join(BACKENDS)}"
            )
        table = _columnar_lowerings()
        _BACKEND_LOWERINGS[backend] = table
    return table


def supported_operator(node: Operator) -> bool:
    """True iff ``node`` (this node alone, not its subtree) has a native
    incremental executor.  Backend-independent: both backends cover the
    same operator set."""
    return type(node) in _LOWERINGS


def columnar_operator(node: Operator) -> bool:
    """True iff ``node`` has a native columnar (batch) executor."""
    return type(node) in COLUMNAR_ACCELERATED


def lower(
    node: Operator,
    memo: dict[int, x.Executor] | None = None,
    backend: str = "row",
) -> x.Executor:
    """Translate a logical plan into its physical executor tree.

    ``memo`` maps ``Operator.uid`` to the already-built executor so shared
    subplans advance once per instant, exactly like the logical
    evaluation memo.  ``backend`` selects the executor table (see
    :data:`BACKENDS`); one tree never mixes tables, so the memo is safe to
    share only across same-backend lowerings.
    """
    table = lowerings_for(backend)
    if memo is None:
        memo = {}
    return _lower(node, memo, table)


def _lower(
    node: Operator,
    memo: dict[int, x.Executor],
    table: Mapping[type, Callable[..., x.Executor]],
) -> x.Executor:
    built = memo.get(node.uid)
    if built is not None:
        return built
    factory = table.get(type(node))
    if factory is None:
        executor = x.FallbackExec(node)
    else:
        children = [_lower(child, memo, table) for child in node.children]
        executor = factory(node, *children)
    memo[node.uid] = executor
    return executor


def lowering_summary(node: Operator) -> dict[str, int]:
    """How much of a plan lowers natively: counts of ``native`` vs
    ``fallback`` nodes (a fallback node subsumes its whole subtree)."""
    native = fallback = 0
    stack = [node]
    while stack:
        current = stack.pop()
        if supported_operator(current):
            native += 1
            stack.extend(current.children)
        else:
            fallback += 1
    return {"native": native, "fallback": fallback}


# ---------------------------------------------------------------------------
# Compiled closures (the columnar backend's per-row code)
# ---------------------------------------------------------------------------
#
# A selection formula interpreted per row costs a dict build plus an AST
# walk; compiled, it is one Python frame evaluating an inline expression
# over the raw tuple.  The generated source binds constants (and any
# helper) through the eval namespace, never via repr, so arbitrary values
# survive; ``__builtins__`` is emptied because the expression needs none.


def _bind(namespace: dict, value: object) -> str:
    name = f"_v{len(namespace)}"
    namespace[name] = value
    return name


def _emit(
    formula: Formula, schema: ExtendedRelationSchema, namespace: dict
) -> str:
    if isinstance(formula, TrueFormula):
        return "True"
    if isinstance(formula, Comparison):
        left = (
            f"t[{schema.real_position(formula.left)}]"
            if formula.left_is_attr
            else _bind(namespace, formula.left)
        )
        right = (
            f"t[{schema.real_position(formula.right)}]"
            if formula.right_is_attr
            else _bind(namespace, formula.right)
        )
        if formula.op == "contains":
            # Native ``in``: on the scalar attribute domain a non-string
            # operand raises TypeError, which callers replay through the
            # interpreter path — the ordering-comparison convention.
            return f"({right} in {left})"
        op = "==" if formula.op == "=" else formula.op
        return f"({left} {op} {right})"
    if isinstance(formula, And):
        return (
            f"({_emit(formula.left, schema, namespace)}"
            f" and {_emit(formula.right, schema, namespace)})"
        )
    if isinstance(formula, Or):
        return (
            f"({_emit(formula.left, schema, namespace)}"
            f" or {_emit(formula.right, schema, namespace)})"
        )
    if isinstance(formula, Not):
        return f"(not {_emit(formula.operand, schema, namespace)})"
    # Unknown formula subtype: interpret it (still one closure, merely
    # calling back into Formula.evaluate over an inline dict row).
    helper = _bind(namespace, formula.evaluate)
    row = ", ".join(
        f"{name!r}: t[{schema.real_position(name)}]"
        for name in sorted(formula.attributes())
    )
    return f"{helper}({{{row}}})"


def compile_predicate(
    formula: Formula, schema: ExtendedRelationSchema
) -> tuple[Callable[[tuple], bool], Callable[[tuple], bool]]:
    """Compile a selection formula against a schema, once.

    Returns ``(fast, slow)``.  ``fast`` is the code-generated tuple
    predicate: inline comparisons with Python's own short-circuit
    ``and``/``or`` (identical to the interpreter's), but ordering a
    mixed-type pair raises a bare ``TypeError`` where the interpreter
    raises :class:`~repro.errors.FormulaError`.  Callers therefore run
    ``fast`` over a whole batch inside ``try`` and, on
    ``TypeError``/``FormulaError``, replay the batch through ``slow`` —
    the interpreter path, which raises the canonical error."""
    namespace: dict = {"__builtins__": {}}
    source = f"lambda t: {_emit(formula, schema, namespace)}"
    fast = eval(source, namespace)  # noqa: S307 — source built above

    positions = {
        name: schema.real_position(name)
        for name in sorted(formula.attributes())
    }
    evaluate = formula.evaluate

    def slow(t: tuple) -> bool:
        return evaluate({name: t[p] for name, p in positions.items()})

    return fast, slow


def compile_filter(
    formula: Formula, schema: ExtendedRelationSchema
) -> tuple[Callable[[Iterable], list], Callable[[tuple], bool]]:
    """Compile a whole-batch filter against a schema, once.

    Returns ``(fast_batch, slow)``.  ``fast_batch(rows)`` is a single
    code-generated comprehension with the predicate expression inlined —
    the batch pays no per-row function call at all, only the comparisons
    themselves.  Error semantics are those of :func:`compile_predicate`:
    on ``TypeError``/``FormulaError`` the caller replays the batch
    row-by-row through ``slow``, the interpreter path, so the canonical
    :class:`~repro.errors.FormulaError` surfaces."""
    namespace: dict = {"__builtins__": {}}
    expression = _emit(formula, schema, namespace)
    source = f"lambda rows: [t for t in rows if {expression}]"
    fast_batch = eval(source, namespace)  # noqa: S307 — source built above
    _, slow = compile_predicate(formula, schema)
    return fast_batch, slow


def compile_key(
    positions: Sequence[int],
) -> Callable[[Sequence[tuple]], list]:
    """Compile a join-key gather: ``rows → key per row``, one generated
    comprehension with the positions inlined (no per-row function call,
    and no need to transpose the non-key attributes at all).

    Single-attribute keys gather the bare value; composite keys build
    the key tuple inline.  The returned values are only ever interned
    into a :class:`~repro.exec.columnar.ValuePool`, so their shape
    (scalar vs tuple) is private to the join."""
    if not positions:
        source = "lambda rows: [()] * len(rows)"
    elif len(positions) == 1:
        source = f"lambda rows: [t[{positions[0]}] for t in rows]"
    else:
        parts = ", ".join(f"t[{p}]" for p in positions)
        source = f"lambda rows: [({parts}) for t in rows]"
    return eval(source, {"__builtins__": {"len": len}})  # noqa: S307


def compile_combiner(
    out_sources: Sequence[tuple[bool, int]],
) -> Callable[[tuple, tuple], tuple]:
    """Compile a join output builder ``(left row, right row) → out row``
    from the ``(from_left, position)`` source list."""
    parts = ", ".join(
        f"lt[{position}]" if from_left else f"rt[{position}]"
        for from_left, position in out_sources
    )
    if len(out_sources) == 1:
        parts += ","
    source = f"lambda lt, rt: ({parts})"
    return eval(source, {"__builtins__": {}})  # noqa: S307 — source built above
