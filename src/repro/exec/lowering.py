"""Lowering: logical Serena plans → physical executor trees.

The lowering pass is the seam between the two layers: the optimizer
rewrites *logical* trees (:mod:`repro.algebra`), and once a plan is
chosen, :func:`lower` translates each logical node into its incremental
executor (:mod:`repro.exec.executors`).

Lowering is *total*: a logical operator with no registered executor is
wrapped in a :class:`~repro.exec.executors.FallbackExec`, which evaluates
that whole subtree with the naive engine each tick and diffs the results
— new logical operators keep working on the incremental engine, merely
without the delta speedup.  :func:`supported_operator` reports whether a
node has a native incremental executor, which the cost model uses to
decide whether a plan's steady-state tick cost scales with deltas or with
cardinalities.

Node sharing is preserved: a logical node reachable through several plan
branches is lowered to a *single* executor (memoized by ``Operator.uid``),
mirroring the naive engine's per-node evaluation memo.
"""

from __future__ import annotations

from typing import Callable

from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import Aggregate
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import BaseRelation, Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.operators.setops import Difference, Intersection, Union
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.streaming import Streaming
from repro.algebra.operators.window import Window
from repro.exec import executors as x

__all__ = ["lower", "supported_operator", "lowering_summary"]

# Logical operator class → executor factory taking (node, *child executors).
_LOWERINGS: dict[type, Callable[..., x.Executor]] = {
    Scan: lambda node: x.ScanExec(node),
    BaseRelation: lambda node: x.BaseRelationExec(node),
    Selection: x.SelectionExec,
    Projection: x.ProjectionExec,
    Renaming: x.RenamingExec,
    Assignment: x.AssignmentExec,
    NaturalJoin: x.JoinExec,
    Union: x.UnionExec,
    Intersection: x.IntersectionExec,
    Difference: x.DifferenceExec,
    Aggregate: x.AggregateExec,
    Invocation: x.InvocationExec,
    StreamingInvocation: x.StreamingInvocationExec,
    Streaming: x.StreamingExec,
    Window: x.WindowExec,
}


def supported_operator(node: Operator) -> bool:
    """True iff ``node`` (this node alone, not its subtree) has a native
    incremental executor."""
    return type(node) in _LOWERINGS


def lower(
    node: Operator, memo: dict[int, x.Executor] | None = None
) -> x.Executor:
    """Translate a logical plan into its physical executor tree.

    ``memo`` maps ``Operator.uid`` to the already-built executor so shared
    subplans advance once per instant, exactly like the logical
    evaluation memo.
    """
    if memo is None:
        memo = {}
    built = memo.get(node.uid)
    if built is not None:
        return built
    factory = _LOWERINGS.get(type(node))
    if factory is None:
        executor = x.FallbackExec(node)
    else:
        children = [lower(child, memo) for child in node.children]
        executor = factory(node, *children)
    memo[node.uid] = executor
    return executor


def lowering_summary(node: Operator) -> dict[str, int]:
    """How much of a plan lowers natively: counts of ``native`` vs
    ``fallback`` nodes (a fallback node subsumes its whole subtree)."""
    native = fallback = 0
    stack = [node]
    while stack:
        current = stack.pop()
        if supported_operator(current):
            native += 1
            stack.extend(current.children)
        else:
            fallback += 1
    return {"native": native, "fallback": fallback}
