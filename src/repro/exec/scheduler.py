"""Quiescence-aware tick scheduling for registered continuous queries.

``QueryProcessor._on_tick`` used to walk *every* registered query at every
instant.  With thousands of queries over a mostly-idle environment that is
O(registered) work per tick even when nothing happened.  The
:class:`TickScheduler` maintains a dependency index from base XD-Relations
(and service prototypes) to the queries they feed, and per tick computes
the *affected* set:

* queries over a relation whose journal ``revision`` moved (or whose
  stored object was swapped) since the last tick,
* **live** queries — those whose physical plan contains a time-driven
  executor (window expiry, per-instant stream emission, streaming
  invocation, in-flight or pending invocations, naive fallback subtrees):
  their output can change with no source activity, so they are evaluated
  at every instant,
* freshly registered queries (no result yet), failed queries (retried
  every instant, matching the naive engine's failure log), and queries
  marked dirty by a service discovery event on a prototype they invoke.

Everything else provably evaluates to its previous result with an empty
delta and no actions, so the query processor *carries it forward*
(:meth:`~repro.continuous.continuous_query.ContinuousQuery.carry_forward`)
in O(1).  Tick cost becomes O(#indexed relations + #affected queries).
"""

from __future__ import annotations

from repro.algebra.operators.base import Operator
from repro.algebra.operators.scan import Scan
from repro.errors import SerenaError
from repro.exec.executors import InvocationExec
from repro.model.environment import PervasiveEnvironment
from repro.obs.observe import Observability

__all__ = ["TickScheduler"]


def _plan_dependencies(node: Operator) -> tuple[frozenset[str], frozenset[str]]:
    """The base relation names and invoked prototype names of a plan."""
    relations: set[str] = set()
    prototypes: set[str] = set()
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Scan):
            relations.add(current.name)
        binding = getattr(current, "binding_pattern", None)
        if binding is not None:
            prototypes.add(binding.prototype.name)
        stack.extend(current.children)
    return frozenset(relations), frozenset(prototypes)


class TickScheduler:
    """Decides, per instant, which scheduled queries must be evaluated."""

    def __init__(
        self,
        environment: PervasiveEnvironment,
        observe: "Observability | str | None" = None,
    ):
        self.environment = environment
        #: Observability facade (the query processor passes the PEMS-wide
        #: one); the evaluation/skip counters are backed by it.
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        metrics = self.obs.metrics
        self._evaluations_total = metrics.counter(
            "serena_query_evaluations_total",
            "Continuous-query evaluations the scheduler could not skip",
        )
        self._skips_total = metrics.counter(
            "serena_query_skips_total",
            "Quiescent evaluations carried forward in O(1)",
        )
        self._scheduled_gauge = metrics.gauge(
            "serena_queries_scheduled",
            "Continuous queries currently indexed by the tick scheduler",
        )
        #: relation name → names of queries scanning it.
        self._rel_index: dict[str, set[str]] = {}
        #: prototype name → names of queries invoking it.
        self._proto_index: dict[str, set[str]] = {}
        #: query name → (relation deps, prototype deps).
        self._deps: dict[str, tuple[frozenset[str], frozenset[str]]] = {}
        #: relation name → (stored object, revision) at the last plan().
        self._tokens: dict[str, tuple] = {}
        self._fresh: set[str] = set()
        self._dirty: set[str] = set()
        self._failed: set[str] = set()
        self._live: set[str] = set()
        self._static_live: set[str] = set()
        #: query name → its private invocation executors (dynamic liveness).
        self._dynamic: dict[str, tuple[InvocationExec, ...]] = {}

    @property
    def evaluations(self) -> int:
        """Total evaluations recorded (backed by
        ``serena_query_evaluations_total``)."""
        return int(self._evaluations_total.value)

    @property
    def skips(self) -> int:
        """Total carried-forward evaluations (backed by
        ``serena_query_skips_total``)."""
        return int(self._skips_total.value)

    def __contains__(self, name: object) -> bool:
        return name in self._deps

    def __len__(self) -> int:
        return len(self._deps)

    @property
    def stats(self) -> dict[str, int]:
        return {
            "scheduled": len(self._deps),
            "evaluations": self.evaluations,
            "skips": self.skips,
        }

    # -- registration ------------------------------------------------------------

    def register(self, name: str, continuous) -> None:
        """Index a registered continuous query's dependencies and classify
        its executors' liveness."""
        if name in self._deps:
            raise SerenaError(f"query {name!r} is already scheduled")
        relations, prototypes = _plan_dependencies(continuous.query.root)
        self._deps[name] = (relations, prototypes)
        for relation in relations:
            self._rel_index.setdefault(relation, set()).add(name)
        for prototype in prototypes:
            self._proto_index.setdefault(prototype, set()).add(name)
        executors = continuous.executors()
        if not executors:
            # No physical plan to classify (naive engine): never skip.
            self._static_live.add(name)
            self._dynamic[name] = ()
        else:
            self._dynamic[name] = tuple(
                e for e in executors if isinstance(e, InvocationExec)
            )
            if any(
                e.live for e in executors if not isinstance(e, InvocationExec)
            ):
                self._static_live.add(name)
        self._fresh.add(name)
        self._scheduled_gauge.set(len(self._deps))

    def deregister(self, name: str) -> None:
        deps = self._deps.pop(name, None)
        if deps is None:
            return
        relations, prototypes = deps
        for relation in relations:
            bucket = self._rel_index.get(relation)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._rel_index[relation]
                    self._tokens.pop(relation, None)
        for prototype in prototypes:
            bucket = self._proto_index.get(prototype)
            if bucket is not None:
                bucket.discard(name)
                if not bucket:
                    del self._proto_index[prototype]
        for group in (
            self._fresh,
            self._dirty,
            self._failed,
            self._live,
            self._static_live,
        ):
            group.discard(name)
        self._dynamic.pop(name, None)
        self._scheduled_gauge.set(len(self._deps))

    def refresh(self, name: str, continuous) -> None:
        """Re-index a query whose physical plan was swapped in place
        (:meth:`~repro.continuous.continuous_query.ContinuousQuery.swap_plan`):
        dependencies and liveness are recomputed for the new executors,
        and the query is marked fresh so the cold plan is evaluated (not
        carried forward) at the next instant."""
        if name not in self._deps:
            raise SerenaError(f"query {name!r} is not scheduled")
        self.deregister(name)
        self.register(name, continuous)

    def on_discovery_event(self, event) -> None:
        """ERM hook: a service appeared/left/expired — wake the queries
        invoking any prototype it implements for the next tick."""
        for prototype_name in event.service.prototype_names:
            dependents = self._proto_index.get(prototype_name)
            if dependents:
                self._dirty |= dependents

    def _token(self, relation_name: str) -> tuple:
        try:
            stored = self.environment.relation(relation_name)
        except Exception:
            return (None, None)
        return (stored, getattr(stored, "revision", None))

    def plan(self, instant: int) -> set[str]:
        """The names of the scheduled queries that must be evaluated at
        ``instant``; everything else may be carried forward."""
        affected = set(self._fresh)
        affected |= self._dirty
        affected |= self._live
        affected |= self._failed
        for relation, dependents in self._rel_index.items():
            new = self._token(relation)
            old = self._tokens.get(relation)
            if old is None or old[0] is not new[0] or old[1] != new[1]:
                self._tokens[relation] = new
                affected |= dependents
        self._dirty = set()
        return affected

    # -- evaluation feedback -----------------------------------------------------

    def evaluated(self, name: str, ok: bool) -> None:
        """Record the outcome of one query evaluation; recomputes the
        query's dynamic liveness (pending/in-flight invocations only
        change during evaluation)."""
        if name not in self._deps:
            return
        self._fresh.discard(name)
        self._evaluations_total.inc()
        if not ok:
            # Failed queries retry every instant — the naive engine logs
            # one failure per tick while the cause persists, and so do we.
            self._failed.add(name)
        else:
            self._failed.discard(name)
        # Liveness is recomputed on *every* outcome: a query whose
        # streaming/pending invocations drained (e.g. all its tuples were
        # parked by on_error="degrade", or its provider was quarantined
        # away) must leave _live, or it would be re-evaluated every tick
        # forever — defeating quiescence.  Before this downgrade ran on
        # the success path only, so a failure left a stale _live entry.
        if name in self._static_live or any(
            e.live for e in self._dynamic.get(name, ())
        ):
            self._live.add(name)
        else:
            self._live.discard(name)

    def skipped(self, name: str) -> None:
        """Record one carried-forward (skipped) evaluation."""
        self._skips_total.inc()
