"""Columnar (batch-at-a-time) executors for the Serena algebra core.

The row executors of :mod:`repro.exec.executors` interpret the algebra
per tuple: a dict row and a formula-AST walk per selection check, a
generator expression per projected tuple, a freshly built key tuple per
join probe.  The executors here process whole delta *batches* instead,
over the :class:`~repro.exec.columnar.ColumnarDelta` representation:

* predicates, key gathers and output combiners were compiled to closures
  exactly once at lowering time (:mod:`repro.exec.lowering`) — ticking
  runs them in tight comprehensions with no per-row interpretation;
* projection gathers kept columns and rebuilds rows with ``zip`` at C
  speed; assignment splices a whole column in;
* the join interns key columns through a :class:`ValuePool` and probes
  int-keyed hash indexes.

Only the hot relational core is columnar — scan, σ, π, ρ, α, ⋈.  Set
ops, γ, β, β∞, S[type], W[period] and the fallback keep their row
executors under ``backend="columnar"`` too: the delta contract is
backend-neutral (``inserted``/``deleted`` frozenset views), so row
parents consume columnar children and vice versa with no adapters.

Correctness is pinned differentially: the columnar engine must stay
tuple-identical with the naive oracle over the 55-tick Table 4 and §5.2
scenario suites.  That is also why :meth:`ColumnarExecutor.tick` may
drop the row base class's per-tuple contract asserts from the hot path.
"""

from __future__ import annotations

from collections import Counter

from repro.algebra.context import EvaluationContext
from repro.errors import FormulaError, SerenaError
from repro.exec.columnar import ColumnarDelta, ValuePool
from repro.exec.delta import EMPTY_DELTA, Delta
from repro.exec.executors import Executor, ScanExec
from repro.exec.lowering import (
    compile_combiner,
    compile_filter,
    compile_key,
)

__all__ = [
    "ColumnarExecutor",
    "ColumnarScanExec",
    "ColumnarSelectionExec",
    "ColumnarProjectionExec",
    "ColumnarRenamingExec",
    "ColumnarAssignmentExec",
    "ColumnarJoinExec",
]

_EMPTY: frozenset[tuple] = frozenset()


def _real_width(node) -> int:
    return len(node.schema.real_attributes)


class ColumnarExecutor(Executor):
    """Base of the batch executors: the row tick protocol, minus the
    per-tuple contract asserts, plus batch accounting.

    The memoization, monotonic-instant check, ``current`` maintenance
    and change/reported bookkeeping are identical to
    :meth:`Executor.tick`, so columnar and row executors interleave
    freely in one tree (shared registry, β seams, fallbacks)."""

    backend = "columnar"

    def tick(self, ctx: EvaluationContext):
        if self._instant == ctx.instant:
            return self._change
        if self._instant is not None and ctx.instant < self._instant:
            raise SerenaError(
                f"executor {type(self).__name__}: evaluation instants must "
                f"be non-decreasing (got {ctx.instant} after {self._instant})"
            )
        pair = self._advance(ctx)
        change, reported = pair if isinstance(pair, tuple) else (pair, None)
        stats = self.stats
        stats.ticks += 1
        stats.batches += 1
        if change:
            inserted = change.inserted
            deleted = change.deleted
            self.current |= inserted
            self.current -= deleted
            stats.output_inserted += len(inserted)
            stats.output_deleted += len(deleted)
            stats.batch_rows += len(inserted) + len(deleted)
        self._instant = ctx.instant
        self._change = change
        self._reported = change if reported is None else reported
        return change

    def _pull_columnar(
        self, child: Executor, ctx: EvaluationContext, width: int
    ) -> ColumnarDelta:
        """Advance ``child`` and coerce the delta this node consumes to
        the columnar representation (first-tick warm catch-up included,
        mirroring :meth:`Executor._pull`, with the same skip of the
        ``fresh_view`` snapshot when the child became warm this tick)."""
        child_was_fresh = child.is_first_tick
        delta = child.tick(ctx)
        if self.is_first_tick and not child_was_fresh:
            delta = ColumnarDelta.from_sets(child.fresh_view(), _EMPTY, width)
        elif not isinstance(delta, ColumnarDelta):
            delta = ColumnarDelta.from_sets(
                delta.inserted, delta.deleted, width
            )
        stats = self.stats
        stats.input_inserted += delta.insert_count
        stats.input_deleted += delta.delete_count
        return delta


class ColumnarScanExec(ColumnarExecutor, ScanExec):
    """Leaf over a named relation: the row scan's journal logic verbatim
    (same three regimes, same reported-delta semantics), with the change
    delta wrapped as a zero-copy columnar batch.  Subclassing
    :class:`ScanExec` keeps the ``journaled`` introspection that stream
    and window parents key their warm-share synthesis on."""

    def __init__(self, node):
        ScanExec.__init__(self, node)
        self._width = _real_width(node)

    def _advance(self, ctx: EvaluationContext):
        pair = ScanExec._advance(self, ctx)
        change, reported = pair if isinstance(pair, tuple) else (pair, None)
        if change:
            change = ColumnarDelta.from_sets(
                change.inserted, change.deleted, self._width
            )
        return change, reported


class ColumnarSelectionExec(ColumnarExecutor):
    """σ: one compiled filter call per changed batch.

    The insert side runs a single code-generated comprehension with the
    predicate expression inlined — no per-row function call at all; if
    any row raises (mixed-type ordering, contains on non-strings) the
    batch is replayed through the interpreter path so the canonical
    :class:`FormulaError` surfaces — identical error semantics, paid
    only on the failing tick.  The delete side needs no predicate at
    all: membership in ``current`` is exactly the row engine's filter."""

    def __init__(self, node, child: Executor):
        super().__init__(node, (child,))
        self._width = _real_width(node.children[0])
        self._filter, self._slow = compile_filter(
            node.formula, node.children[0].schema
        )

    def _advance(self, ctx: EvaluationContext):
        delta = self._pull_columnar(self.children[0], ctx, self._width)
        if not delta:
            return EMPTY_DELTA
        rows = delta.insert_rows()
        try:
            kept = self._filter(rows)
        except (TypeError, FormulaError):
            slow = self._slow
            kept = [t for t in rows if slow(t)]
        current = self.current
        gone = [t for t in delta.delete_rows() if t in current]
        if not kept and not gone:
            return EMPTY_DELTA
        return ColumnarDelta.from_rows(kept, gone, self._width)


class ColumnarProjectionExec(ColumnarExecutor):
    """π: gather the kept columns and rebuild rows with ``zip`` — no
    per-row tuple comprehension.  Support counts work as in the row
    executor, but the batch's gains and losses are tallied through
    :class:`collections.Counter` (a C loop) and reconciled once per
    *distinct* output row, so the emission decision (appeared /
    disappeared) costs no per-input-row Python at all."""

    def __init__(self, node, child: Executor):
        super().__init__(node, (child,))
        source = node.children[0].schema
        self._in_width = len(source.real_attributes)
        kept_real = [n for n in node.schema.names if n in node.schema.real_names]
        self._positions = [source.real_position(n) for n in kept_real]
        self._width = len(self._positions)
        self._counts: dict[tuple, int] = {}

    def _gather(self, delta: ColumnarDelta, side: str) -> list[tuple]:
        count = delta.delete_count if side == "deleted" else delta.insert_count
        if not count:
            return []
        if not self._positions:
            return [()] * count
        columns = (
            delta.delete_columns() if side == "deleted" else delta.insert_columns()
        )
        return list(zip(*(columns[p] for p in self._positions)))

    def _advance(self, ctx: EvaluationContext):
        delta = self._pull_columnar(self.children[0], ctx, self._in_width)
        if not delta:
            return EMPTY_DELTA
        counts = self._counts
        gained = Counter(self._gather(delta, "inserted"))
        lost = Counter(self._gather(delta, "deleted"))
        inserted, deleted = [], []
        for p in gained.keys() | lost.keys():
            old = counts.get(p, 0)
            removed = lost.get(p, 0)
            if removed > old:
                # The row executor decrements before re-adding, so losing
                # more support than exists raises there too.
                raise KeyError(p)
            new = old - removed + gained.get(p, 0)
            if new:
                counts[p] = new
                if old == 0:
                    inserted.append(p)
            elif old:
                del counts[p]
                deleted.append(p)
        if not inserted and not deleted:
            return EMPTY_DELTA
        return ColumnarDelta.from_rows(inserted, deleted, self._width)


class ColumnarRenamingExec(ColumnarExecutor):
    """ρ: tuple layouts coincide — the child's batch passes through
    unchanged (representation caches and all)."""

    def __init__(self, node, child: Executor):
        super().__init__(node, (child,))
        self._width = _real_width(node)

    def _advance(self, ctx: EvaluationContext):
        return self._pull_columnar(self.children[0], ctx, self._width)


class ColumnarAssignmentExec(ColumnarExecutor):
    """α: splice one whole column into the batch — the copied source
    column (or a constant column) is inserted at the target position and
    rows are rebuilt by ``zip``; no per-row transform runs at all."""

    def __init__(self, node, child: Executor):
        super().__init__(node, (child,))
        source = node.children[0].schema
        self._in_width = len(source.real_attributes)
        self._width = _real_width(node)
        self._target = node.schema.real_position(node.attribute)
        if node.from_attribute:
            self._value_position = source.real_position(node.value)
            self._constant = None
        else:
            self._value_position = None
            self._constant = node.value

    def _splice(self, columns: list[list], count: int) -> list:
        value_column = (
            columns[self._value_position]
            if self._value_position is not None
            else [self._constant] * count
        )
        return columns[: self._target] + [value_column] + columns[self._target :]

    def _advance(self, ctx: EvaluationContext):
        delta = self._pull_columnar(self.children[0], ctx, self._in_width)
        if not delta:
            return EMPTY_DELTA
        return ColumnarDelta.from_columns(
            self._splice(delta.insert_columns(), delta.insert_count),
            self._splice(delta.delete_columns(), delta.delete_count),
            self._width,
            insert_count=delta.insert_count,
            delete_count=delta.delete_count,
        )


class ColumnarJoinExec(ColumnarExecutor):
    """⋈: symmetric hash join over interned key arrays.

    Key values are gathered straight from the row batch by a closure
    compiled at lowering (no transpose of non-key attributes) and
    interned through a :class:`ValuePool`, so both persisted build-side
    indexes are keyed by dense ints — every probe is an int hash, never
    a fresh key tuple.  Matches combine through the compiled output
    builder into per-tick gain/loss row lists; deletions are processed
    before insertions (new-new pairs counted exactly once).  Support
    counts are then reconciled once per *distinct* output row from
    :class:`collections.Counter` tallies of those lists — the count
    arithmetic is commutative (negative counts are legal mid-tick,
    exactly as in the row executor's ``adjust``), so batching it after
    the index maintenance changes nothing observable."""

    def __init__(self, node, left: Executor, right: Executor):
        super().__init__(node, (left, right))
        lschema = node.children[0].schema
        rschema = node.children[1].schema
        self._lwidth = len(lschema.real_attributes)
        self._rwidth = len(rschema.real_attributes)
        keys = node.predicate_names
        self._lkeys = compile_key([lschema.real_position(n) for n in keys])
        self._rkeys = compile_key([rschema.real_position(n) for n in keys])
        out_sources: list[tuple[bool, int]] = []
        for attribute in node.schema.real_attributes:
            if attribute.name in lschema.real_names:
                out_sources.append((True, lschema.real_position(attribute.name)))
            else:
                out_sources.append((False, rschema.real_position(attribute.name)))
        self._width = len(out_sources)
        self._combine = compile_combiner(out_sources)
        self.pool = ValuePool()
        self._lindex: dict[int, set[tuple]] = {}
        self._rindex: dict[int, set[tuple]] = {}
        self._counts: dict[tuple, int] = {}

    def _side(self, delta: ColumnarDelta, gather, side: str):
        """``(rows, interned key ids)`` of one side of one batch."""
        count = delta.delete_count if side == "deleted" else delta.insert_count
        if not count:
            return (), ()
        rows = delta.delete_rows() if side == "deleted" else delta.insert_rows()
        return rows, self.pool.intern_column(gather(rows))

    def _advance(self, ctx: EvaluationContext):
        left, right = self.children
        ld = self._pull_columnar(left, ctx, self._lwidth)
        rd = self._pull_columnar(right, ctx, self._rwidth)
        if not ld and not rd:
            return EMPTY_DELTA
        counts = self._counts
        combine = self._combine
        lindex, rindex = self._lindex, self._rindex
        plus: list[tuple] = []
        minus: list[tuple] = []
        gain = plus.append
        lose = minus.append

        # Deletions first (against the other side's pre-insertion index),
        # then insertions — the row executor's order, kept exactly.
        rows, ids = self._side(ld, self._lkeys, "deleted")
        for lt, key in zip(rows, ids):
            bucket = lindex.get(key)
            if bucket is not None:
                bucket.discard(lt)
                if not bucket:
                    del lindex[key]
            matches = rindex.get(key)
            if matches:
                for rt in matches:
                    lose(combine(lt, rt))
        rows, ids = self._side(rd, self._rkeys, "deleted")
        for rt, key in zip(rows, ids):
            bucket = rindex.get(key)
            if bucket is not None:
                bucket.discard(rt)
                if not bucket:
                    del rindex[key]
            matches = lindex.get(key)
            if matches:
                for lt in matches:
                    lose(combine(lt, rt))
        rows, ids = self._side(ld, self._lkeys, "inserted")
        for lt, key in zip(rows, ids):
            bucket = lindex.get(key)
            if bucket is None:
                bucket = lindex[key] = set()
            bucket.add(lt)
            matches = rindex.get(key)
            if matches:
                for rt in matches:
                    gain(combine(lt, rt))
        rows, ids = self._side(rd, self._rkeys, "inserted")
        for rt, key in zip(rows, ids):
            bucket = rindex.get(key)
            if bucket is None:
                bucket = rindex[key] = set()
            bucket.add(rt)
            matches = lindex.get(key)
            if matches:
                for lt in matches:
                    gain(combine(lt, rt))

        # High-churn keys (inserted once, deleted a tick later) leave dead
        # pool entries behind; once they dominate, evict them and renumber
        # the surviving index keys.  Ids are only held by the two indexes,
        # so the remap below restores every reference there is.
        remap = self.pool.maybe_compact(lindex.keys() | rindex.keys())
        if remap is not None:
            self._lindex = {remap[k]: v for k, v in lindex.items()}
            self._rindex = {remap[k]: v for k, v in rindex.items()}

        if not plus and not minus:
            return EMPTY_DELTA

        gained = Counter(plus)
        lost = Counter(minus)
        inserted, deleted = [], []
        for out in gained.keys() | lost.keys():
            old = counts.get(out, 0)
            new = old + gained.get(out, 0) - lost.get(out, 0)
            if new:
                counts[out] = new
                if old == 0:
                    inserted.append(out)
            elif old:
                del counts[out]
                deleted.append(out)
        if not inserted and not deleted:
            return EMPTY_DELTA
        return ColumnarDelta.from_rows(inserted, deleted, self._width)
