"""Incremental physical executors for the Serena algebra.

One executor class per logical operator.  An executor owns the mutable
per-node state the naive engine keeps in the evaluation context (hash
indexes, support counts, invocation caches, window buffers) plus its
current instantaneous result, and advances one evaluation instant at a
time:

* :meth:`Executor.tick` pulls the children's deltas, updates local state
  in time proportional to the *size of the deltas* (plus, for the
  invocation operator, the number of in-flight asynchronous requests),
  and publishes the node's own change and reported deltas (see
  :mod:`repro.exec.delta` for the distinction);
* :attr:`Executor.current` is the maintained instantaneous result — the
  engine materializes an X-Relation from the root's ``current`` only when
  its delta is non-empty.

State lifecycle: state is created lazily on the first tick, updated by
deltas on every subsequent tick, and lives exactly as long as the
executor (i.e. as long as the continuous query is registered).  Executors
are built from a logical plan by :mod:`repro.exec.lowering` and are not
shared between queries.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.algebra.actions import Action
from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import Aggregate
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.scan import BaseRelation, Scan
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.streaming import Streaming, StreamType
from repro.algebra.operators.window import Window
from repro.errors import (
    InvalidOperatorError,
    SerenaError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.exec.delta import EMPTY_DELTA, Delta
from repro.model.relation import XRelation

__all__ = [
    "ExecStats",
    "Executor",
    "ScanExec",
    "BaseRelationExec",
    "SelectionExec",
    "ProjectionExec",
    "RenamingExec",
    "AssignmentExec",
    "JoinExec",
    "UnionExec",
    "IntersectionExec",
    "DifferenceExec",
    "AggregateExec",
    "InvocationExec",
    "StreamingInvocationExec",
    "StreamingExec",
    "WindowExec",
    "FallbackExec",
]

_EMPTY: frozenset[tuple] = frozenset()


def journal_chunks(
    ctx: EvaluationContext, stored: object, start: int, stop: int
):
    """``stored.changes_between(start, stop)``, served from the context's
    per-instant cache when an engine installed one — N executors reading
    the same XD-Relation slice then walk the journal once per tick.

    The chunk list is immutable (``(instant, frozenset, frozenset)``
    snapshots), so sharing it across executors is safe; keys carry the
    relation's identity and both bounds, so different high-water marks
    coexist."""
    cache = ctx.journal_cache
    if cache is None:
        return stored.changes_between(start, stop)  # type: ignore[attr-defined]
    key = (id(stored), start, stop)
    chunks = cache.get(key)
    if chunks is None:
        chunks = cache[key] = stored.changes_between(start, stop)  # type: ignore[attr-defined]
    return chunks


class ExecStats:
    """Cumulative per-executor counters, updated on every tick.

    Always on: each field is a plain integer bumped on the hot path (no
    registry lookups), cheap enough that EXPLAIN ANALYZE needs no arming
    step — the counts cover the executor's whole life.  ``input_*`` counts
    the delta tuples the node consumed from its children, ``output_*`` the
    change delta it published; the invocation fields are only meaningful
    on β/β∞ executors, ``rows_scanned`` on scans, and the batch fields on
    columnar executors (``batches`` counts delta batches published,
    ``batch_rows`` their total row cardinality).
    """

    __slots__ = (
        "ticks",
        "input_inserted",
        "input_deleted",
        "output_inserted",
        "output_deleted",
        "rows_scanned",
        "invocations",
        "memo_hits",
        "fast_failures",
        "failures",
        "batches",
        "batch_rows",
    )

    def __init__(self):
        self.ticks = 0
        self.input_inserted = 0
        self.input_deleted = 0
        self.output_inserted = 0
        self.output_deleted = 0
        self.rows_scanned = 0
        self.invocations = 0
        self.memo_hits = 0
        self.fast_failures = 0
        self.failures = 0
        self.batches = 0
        self.batch_rows = 0

    def snapshot(self) -> dict[str, int]:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in self.__slots__
            if getattr(self, name)
        )
        return f"ExecStats({parts})"


class Executor:
    """Base class: per-instant advancement with memoization.

    Subclasses implement :meth:`_advance`, returning the ``(change,
    reported)`` delta pair for the new instant (``reported=None`` means
    "same as change", the common case).  The base class applies the
    change delta to :attr:`current` and memoizes per instant, so a node
    shared between plan branches advances exactly once per instant — the
    physical counterpart of the logical evaluation memo.
    """

    #: Which physical representation this executor's change deltas use;
    #: the columnar executors override it.  EXPLAIN ANALYZE reports it.
    backend = "row"

    def __init__(self, node: Operator, children: Sequence["Executor"] = ()):
        self.node = node
        self.children = tuple(children)
        #: The maintained instantaneous result (tuples over node.schema).
        self.current: set[tuple] = set()
        #: Always-on cumulative counters (EXPLAIN ANALYZE reads these).
        self.stats = ExecStats()
        self._instant: int | None = None
        self._change: Delta = EMPTY_DELTA
        self._reported: Delta = EMPTY_DELTA

    # -- the tick protocol -----------------------------------------------------

    def tick(self, ctx: EvaluationContext) -> Delta:
        """Advance to ``ctx.instant``; returns the change delta."""
        if self._instant == ctx.instant:
            return self._change
        if self._instant is not None and ctx.instant < self._instant:
            raise SerenaError(
                f"executor {type(self).__name__}: evaluation instants must "
                f"be non-decreasing (got {ctx.instant} after {self._instant})"
            )
        pair = self._advance(ctx)
        change, reported = pair if isinstance(pair, tuple) else (pair, None)
        assert not (change.inserted & self.current), "insert of present tuple"
        assert change.deleted <= self.current, "delete of absent tuple"
        self.current |= change.inserted
        self.current -= change.deleted
        stats = self.stats
        stats.ticks += 1
        stats.output_inserted += len(change.inserted)
        stats.output_deleted += len(change.deleted)
        self._instant = ctx.instant
        self._change = change
        self._reported = change if reported is None else reported
        return change

    @property
    def change(self) -> Delta:
        """The change delta of the last tick."""
        return self._change

    @property
    def reported(self) -> Delta:
        """The reported delta of the last tick (Section 4.2 semantics)."""
        return self._reported

    @property
    def is_first_tick(self) -> bool:
        return self._instant is None

    @property
    def live(self) -> bool:
        """True iff this node may change its output at an instant where
        none of the query's base sources changed — time-driven semantics
        (window expiry, per-instant stream emission, in-flight or pending
        invocations).  The tick scheduler must evaluate queries containing
        a live executor at every instant."""
        return False

    def fresh_view(self) -> frozenset[tuple]:
        """The contents a *freshly registered* executor over the same
        subplan would hold at the current instant.  For state-derived
        operators that is simply :attr:`current`; stream-typed executors
        override it (their emission depends on registration time)."""
        return frozenset(self.current)

    def _pull(self, child: "Executor", ctx: EvaluationContext) -> Delta:
        """Advance ``child`` and return the delta *this* node should
        consume.  On this node's own first tick the child may already be
        warm (a shared subplan leased from the registry after other
        queries ran it): the catch-up delta is then the child's full fresh
        view as insertions, exactly what a fresh child's first tick would
        have produced.  When the child became warm in this very tick its
        change delta already *is* that view (all content as insertions,
        nothing deleted — the contract forbids first-tick deletions), so
        the O(N) ``fresh_view`` snapshot is skipped."""
        child_was_fresh = child.is_first_tick
        delta = child.tick(ctx)
        if self.is_first_tick and not child_was_fresh:
            delta = Delta(child.fresh_view(), _EMPTY)
        self.stats.input_inserted += len(delta.inserted)
        self.stats.input_deleted += len(delta.deleted)
        return delta

    def _advance(self, ctx: EvaluationContext):
        raise NotImplementedError

    # -- helpers ----------------------------------------------------------------

    def _net(
        self, touched: set[tuple], present: Callable[[tuple], bool]
    ) -> Delta:
        """Turn a set of possibly-affected tuples into a membership delta
        against :attr:`current` (cancels same-instant insert+delete)."""
        inserted, deleted = [], []
        for t in touched:
            if present(t):
                if t not in self.current:
                    inserted.append(t)
            elif t in self.current:
                deleted.append(t)
        return Delta(frozenset(inserted), frozenset(deleted))

    def walk(self):
        """All executors of the subtree, depth-first, self first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over {self.node.symbol()}>"


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class ScanExec(Executor):
    """Leaf over a named relation of the environment.

    Three regimes, chosen per tick from the stored relation object:

    * **journaled** (an :class:`~repro.continuous.xdrelation.XDRelation`):
      the change delta is read from the journal between the previous and
      the current evaluation instant — exact and O(changes); the reported
      delta is the journal's delta *at* the evaluation instant, matching
      the logical Scan's Section 4.2 refinement.
    * **static** (a plain X-Relation): the delta is empty while the
      stored object is unchanged — O(1) per tick.
    * **dynamic but unjournaled** (any other object with
      ``instantaneous``): falls back to diffing consecutive
      materializations, exactly like the naive engine.
    """

    def __init__(self, node: Scan):
        super().__init__(node)
        self._stored: object | None = None
        # Journal high-water mark: entries at instants >= _consumed may
        # still change (same-instant writes) or appear; everything below
        # has been applied to `current`.
        self._consumed: int | None = None
        #: True once the stored relation was seen to be journaled; the
        #: reported delta is then registration-independent (read from the
        #: journal), which stream/window parents and the shared engine use
        #: to decide whether a warm scan needs first-tick synthesis.
        self.journaled = False

    def _advance(self, ctx: EvaluationContext):
        node = self.node
        stored = ctx.environment.relation(node.name)
        if not stored.schema.compatible(node.schema):  # type: ignore[attr-defined]
            raise InvalidOperatorError(
                f"relation {node.name!r} changed schema since the plan was built"
            )
        journaled = hasattr(stored, "changes_between") and hasattr(
            stored, "inserted_at"
        )
        self.journaled = journaled
        rebase = self.is_first_tick or stored is not self._stored
        if not rebase and isinstance(stored, XRelation):
            return EMPTY_DELTA  # static relation, same object: nothing moved
        if rebase or not journaled:
            new = ctx.environment.instantaneous(node.name, ctx.instant).tuples
            self.stats.rows_scanned += len(new)
            change = Delta(
                frozenset(new - self.current), frozenset(self.current - new)
            )
        else:
            change = self._apply_journal(ctx, stored)
        self._stored = stored
        if journaled:
            last = stored.last_instant  # type: ignore[attr-defined]
            self._consumed = last if last <= ctx.instant else ctx.instant + 1
            reported = Delta(
                stored.inserted_at(ctx.instant),  # type: ignore[attr-defined]
                stored.deleted_at(ctx.instant),  # type: ignore[attr-defined]
            )
            return change, reported
        return change

    def _apply_journal(self, ctx: EvaluationContext, stored: object) -> Delta:
        """Net membership change from the journal since the last tick.

        The journal is re-read from the consumed high-water mark, so
        late same-instant writes are picked up; application is
        idempotent against `current`, so re-read entries are harmless.

        Entries fold in with whole-set operations (C speed, no per-tuple
        Python).  That is equivalent to the per-tuple branch cascade
        because two invariants hold across chunks: ``removed`` only ever
        holds members of ``current``, and ``added`` never does — so a
        re-insert is exactly ``removed -= inserted``, and a delete either
        cancels a pending add or (disjointly) removes a current member.
        """
        added: set[tuple] = set()
        removed: set[tuple] = set()
        current = self.current
        start = self._consumed if self._consumed is not None else 0
        for _, inserted, deleted in journal_chunks(ctx, stored, start, ctx.instant):
            self.stats.rows_scanned += len(inserted) + len(deleted)
            if inserted:
                removed -= inserted
                added |= inserted - current
            if deleted:
                removed |= deleted & current
                added -= deleted
        if not added and not removed:
            return EMPTY_DELTA
        return Delta(frozenset(added), frozenset(removed))


class BaseRelationExec(Executor):
    """Leaf over a literal X-Relation: all tuples arrive on the first tick."""

    def __init__(self, node: BaseRelation):
        super().__init__(node)

    def _advance(self, ctx: EvaluationContext) -> Delta:
        if self.is_first_tick:
            return Delta(self.node.relation.tuples, _EMPTY)  # type: ignore[attr-defined]
        return EMPTY_DELTA


# ---------------------------------------------------------------------------
# Tuple-at-a-time operators: selection, projection, renaming, assignment
# ---------------------------------------------------------------------------


class SelectionExec(Executor):
    """σ: evaluate the formula only on changed tuples."""

    def __init__(self, node, child: Executor):
        super().__init__(node, (child,))
        schema = node.children[0].schema
        self._positions = {
            name: schema.real_position(name)
            for name in sorted(node.formula.attributes())
        }
        self._formula = node.formula

    def _passes(self, t: tuple) -> bool:
        row = {name: t[p] for name, p in self._positions.items()}
        return self._formula.evaluate(row)

    def _advance(self, ctx: EvaluationContext) -> Delta:
        delta = self._pull(self.children[0], ctx)
        if not delta:
            return EMPTY_DELTA
        return Delta(
            frozenset(t for t in delta.inserted if self._passes(t)),
            frozenset(t for t in delta.deleted if t in self.current),
        )


class ProjectionExec(Executor):
    """π: support-counted projection — an output tuple leaves only when
    its last supporting input tuple leaves."""

    def __init__(self, node, child: Executor):
        super().__init__(node, (child,))
        source = node.children[0].schema
        kept_real = [n for n in node.schema.names if n in node.schema.real_names]
        self._positions = [source.real_position(n) for n in kept_real]
        self._counts: dict[tuple, int] = {}

    def _project(self, t: tuple) -> tuple:
        return tuple(t[p] for p in self._positions)

    def _advance(self, ctx: EvaluationContext) -> Delta:
        delta = self._pull(self.children[0], ctx)
        if not delta:
            return EMPTY_DELTA
        touched: set[tuple] = set()
        counts = self._counts
        for t in delta.deleted:
            p = self._project(t)
            remaining = counts[p] - 1
            if remaining:
                counts[p] = remaining
            else:
                del counts[p]
            touched.add(p)
        for t in delta.inserted:
            p = self._project(t)
            counts[p] = counts.get(p, 0) + 1
            touched.add(p)
        return self._net(touched, lambda p: p in counts)


class RenamingExec(Executor):
    """ρ: tuple layouts coincide — deltas pass through unchanged."""

    def __init__(self, node, child: Executor):
        super().__init__(node, (child,))

    def _advance(self, ctx: EvaluationContext) -> Delta:
        return self._pull(self.children[0], ctx)


class AssignmentExec(Executor):
    """α: injective per-tuple transform — deltas map through it."""

    def __init__(self, node, child: Executor):
        super().__init__(node, (child,))
        source = node.children[0].schema
        self._target = node.schema.real_position(node.attribute)
        if node.from_attribute:
            self._value_position = source.real_position(node.value)
            self._constant = None
        else:
            self._value_position = None
            self._constant = node.value

    def _transform(self, t: tuple) -> tuple:
        value = (
            t[self._value_position]
            if self._value_position is not None
            else self._constant
        )
        return t[: self._target] + (value,) + t[self._target :]

    def _advance(self, ctx: EvaluationContext) -> Delta:
        delta = self._pull(self.children[0], ctx)
        if not delta:
            return EMPTY_DELTA
        return Delta(
            frozenset(self._transform(t) for t in delta.inserted),
            frozenset(self._transform(t) for t in delta.deleted),
        )


# ---------------------------------------------------------------------------
# Natural join: delta-aware symmetric hash join with persisted build sides
# ---------------------------------------------------------------------------


class JoinExec(Executor):
    """⋈: both operands are persisted as hash indexes on the join key;
    each tick probes only the changed tuples against the other side."""

    def __init__(self, node: NaturalJoin, left: Executor, right: Executor):
        super().__init__(node, (left, right))
        lschema = node.children[0].schema
        rschema = node.children[1].schema
        keys = node.predicate_names
        self._lkey = [lschema.real_position(n) for n in keys]
        self._rkey = [rschema.real_position(n) for n in keys]
        out_sources: list[tuple[bool, int]] = []
        for attribute in node.schema.real_attributes:
            if attribute.name in lschema.real_names:
                out_sources.append((True, lschema.real_position(attribute.name)))
            else:
                out_sources.append((False, rschema.real_position(attribute.name)))
        self._out_sources = out_sources
        self._lindex: dict[tuple, set[tuple]] = {}
        self._rindex: dict[tuple, set[tuple]] = {}
        self._counts: dict[tuple, int] = {}

    def _combine(self, lt: tuple, rt: tuple) -> tuple:
        return tuple(
            lt[p] if from_left else rt[p] for from_left, p in self._out_sources
        )

    def _advance(self, ctx: EvaluationContext) -> Delta:
        left, right = self.children
        ld = self._pull(left, ctx)
        rd = self._pull(right, ctx)
        if not ld and not rd:
            return EMPTY_DELTA
        touched: set[tuple] = set()
        counts = self._counts

        def adjust(out: tuple, by: int) -> None:
            value = counts.get(out, 0) + by
            if value:
                counts[out] = value
            else:
                counts.pop(out, None)
            touched.add(out)

        # Deletions first (against the other side's pre-insertion index),
        # then insertions (new-new pairs counted exactly once in step 4).
        for lt in ld.deleted:
            key = tuple(lt[p] for p in self._lkey)
            bucket = self._lindex.get(key)
            if bucket is not None:
                bucket.discard(lt)
                if not bucket:
                    del self._lindex[key]
            for rt in self._rindex.get(key, ()):
                adjust(self._combine(lt, rt), -1)
        for rt in rd.deleted:
            key = tuple(rt[p] for p in self._rkey)
            bucket = self._rindex.get(key)
            if bucket is not None:
                bucket.discard(rt)
                if not bucket:
                    del self._rindex[key]
            for lt in self._lindex.get(key, ()):
                adjust(self._combine(lt, rt), -1)
        for lt in ld.inserted:
            key = tuple(lt[p] for p in self._lkey)
            self._lindex.setdefault(key, set()).add(lt)
            for rt in self._rindex.get(key, ()):
                adjust(self._combine(lt, rt), +1)
        for rt in rd.inserted:
            key = tuple(rt[p] for p in self._rkey)
            self._rindex.setdefault(key, set()).add(rt)
            for lt in self._lindex.get(key, ()):
                adjust(self._combine(lt, rt), +1)
        return self._net(touched, lambda out: out in counts)


# ---------------------------------------------------------------------------
# Set operators
# ---------------------------------------------------------------------------


class _SetOpExec(Executor):
    """Union/intersection/difference via membership in the children's
    maintained current sets — O(changes) per tick."""

    def __init__(self, node, left: Executor, right: Executor):
        super().__init__(node, (left, right))

    def _present(self, t: tuple) -> bool:
        raise NotImplementedError

    def _advance(self, ctx: EvaluationContext) -> Delta:
        left, right = self.children
        ld = self._pull(left, ctx)
        rd = self._pull(right, ctx)
        if not ld and not rd:
            return EMPTY_DELTA
        touched = set().union(ld.inserted, ld.deleted, rd.inserted, rd.deleted)
        return self._net(touched, self._present)


class UnionExec(_SetOpExec):
    def _present(self, t: tuple) -> bool:
        left, right = self.children
        return t in left.current or t in right.current


class IntersectionExec(_SetOpExec):
    def _present(self, t: tuple) -> bool:
        left, right = self.children
        return t in left.current and t in right.current


class DifferenceExec(_SetOpExec):
    def _present(self, t: tuple) -> bool:
        left, right = self.children
        return t in left.current and t not in right.current


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class AggregateExec(Executor):
    """γ: group membership is maintained incrementally; only groups with
    changed members recompute their aggregate row."""

    def __init__(self, node: Aggregate, child: Executor):
        super().__init__(node, (child,))
        source = node.children[0].schema
        self._key_positions = [source.real_position(n) for n in node.group_by]
        self._value_positions = [
            source.real_position(spec.attribute) if spec.attribute is not None else None
            for spec in node.aggregates
        ]
        self._groups: dict[tuple, set[tuple]] = {}
        self._rows: dict[tuple, tuple] = {}

    def _row(self, key: tuple, members: set[tuple]) -> tuple:
        node = self.node
        ordered = sorted(members)  # deterministic float accumulation order
        row = list(key)
        for spec, position in zip(node.aggregates, self._value_positions):
            values = (
                [m[position] for m in ordered] if position is not None else ordered
            )
            row.append(spec.compute(values))
        return tuple(row)

    def _advance(self, ctx: EvaluationContext) -> Delta:
        delta = self._pull(self.children[0], ctx)
        if not delta:
            return EMPTY_DELTA
        affected: set[tuple] = set()
        for t in delta.deleted:
            key = tuple(t[p] for p in self._key_positions)
            members = self._groups.get(key)
            if members is not None:
                members.discard(t)
                if not members:
                    del self._groups[key]
            affected.add(key)
        for t in delta.inserted:
            key = tuple(t[p] for p in self._key_positions)
            self._groups.setdefault(key, set()).add(t)
            affected.add(key)
        inserted, deleted = [], []
        for key in affected:
            old = self._rows.get(key)
            members = self._groups.get(key)
            new = self._row(key, members) if members else None
            if old == new:
                continue
            if old is not None:
                deleted.append(old)
            if new is not None:
                inserted.append(new)
                self._rows[key] = new
            else:
                del self._rows[key]
        return Delta(frozenset(inserted), frozenset(deleted))


# ---------------------------------------------------------------------------
# Invocation (β) — the Section 4.2 refinement, delta-driven
# ---------------------------------------------------------------------------


class InvocationExec(Executor):
    """β: a binding pattern is invoked only for newly inserted operand
    tuples; results persist in a per-tuple cache until the tuple leaves.

    Per-tick cost is O(child delta + in-flight/pending tuples): tuples
    whose asynchronous response has not landed yet, and tuples whose
    synchronous invocation failed under ``on_error="skip"`` (the naive
    engine retries those every instant while they stay present — pinned
    behaviour, see tests).  Under ``on_error="degrade"`` failed tuples are
    *parked* instead: not retried while present, not counted as live, and
    re-attempted only when the tuple leaves and re-enters the operand
    (e.g. when the ERM quarantines and later re-admits the provider).
    """

    def __init__(self, node: Invocation, child: Executor):
        super().__init__(node, (child,))
        source = node.children[0].schema
        bp = node.binding_pattern
        prototype = bp.prototype
        self._service_position = source.real_position(bp.service_attribute)
        self._input_names = prototype.input_schema.names
        self._input_positions = [
            source.real_position(n) for n in self._input_names
        ]
        output_index = {n: i for i, n in enumerate(prototype.output_schema.names)}
        out_sources: list[tuple[bool, int]] = []
        for attribute in node.schema.real_attributes:
            if attribute.name in output_index:
                out_sources.append((False, output_index[attribute.name]))
            else:
                out_sources.append((True, source.real_position(attribute.name)))
        self._out_sources = out_sources
        #: operand tuple -> combined output rows (invocation succeeded).
        self._cache: dict[tuple, frozenset[tuple]] = {}
        #: present operand tuples without a cached result yet.
        self._pending: set[tuple] = set()
        #: async mode: operand tuple -> instant its response lands.
        self._due: dict[tuple, int] = {}
        #: degrade mode: failed operand tuples, not retried while present.
        self._parked: set[tuple] = set()
        #: rows invoked but not yet published (mid-tick failure recovery).
        self._unflushed: set[tuple] = set()
        #: substitution epoch this executor's cache is consistent with
        #: (see SubstitutionState.rebound_since).
        self._sub_epoch = 0

    def _rows(self, t: tuple, outputs: list[tuple]) -> frozenset[tuple]:
        return frozenset(
            tuple(t[p] if from_child else o[p] for from_child, p in self._out_sources)
            for o in outputs
        )

    @property
    def live(self) -> bool:
        # Pending tuples are retried (sync skip) and in-flight async
        # responses land at later instants — both without any new child
        # change, so the scheduler may not skip this query meanwhile.
        # Parked tuples (degrade mode) are deliberately NOT live: they
        # wake up only through a child change, which the scheduler sees.
        return bool(self._pending or self._due)

    def _advance(self, ctx: EvaluationContext) -> Delta:
        node = self.node
        delta = self._pull(self.children[0], ctx)
        if self.is_first_tick and (self._cache or self._pending):
            # A prior first-tick attempt raised mid-invocation and the
            # operand changed before the retry: the catch-up delta carries
            # no deletions, so drop vanished operand tuples explicitly.
            vanished = (
                set(self._cache) | self._pending | set(self._due) | self._parked
            ) - set(delta.inserted)
            if vanished:
                delta = Delta(delta.inserted, frozenset(vanished))
        # Rows cached by a partial advance that raised never reached
        # `current`; publish them now that this advance completes.
        inserted: set[tuple] = set(self._unflushed)
        deleted: set[tuple] = set()
        # Rebind-instant delta protocol: operand tuples whose service
        # reference was rebound (or released) since the last advance are
        # re-invoked through the new route — their old rows are deleted
        # and the fresh rows inserted within this very tick, so every
        # engine stays tuple-identical across a substitution.
        subs = ctx.environment.registry.substitutions
        if subs.epoch != self._sub_epoch:
            rebound = subs.rebound_since(
                node.binding_pattern.prototype.name, self._sub_epoch
            )
            self._sub_epoch = subs.epoch
            if rebound:
                pos = self._service_position
                for t in [t for t in self._cache if t[pos] in rebound]:
                    rows = self._cache.pop(t)
                    self._unflushed -= rows
                    inserted -= rows
                    deleted.update(r for r in rows if r in self.current)
                    self._pending.add(t)
                for t in [t for t in self._parked if t[pos] in rebound]:
                    self._parked.discard(t)
                    self._pending.add(t)
                for t in [t for t in self._due if t[pos] in rebound]:
                    del self._due[t]  # re-scheduled with the full delay
        for t in delta.deleted:
            rows = self._cache.pop(t, None)
            if rows:
                self._unflushed -= rows
                inserted -= rows
                deleted.update(r for r in rows if r in self.current)
            self._pending.discard(t)
            self._due.pop(t, None)  # in-flight request dropped with its tuple
            self._parked.discard(t)  # re-insertion will retry (degrade mode)
        # Exclude cached tuples: a partial advance that raised may be
        # re-run against the same memoized child delta.
        self._pending.update(
            t
            for t in delta.inserted
            if t not in self._cache and t not in self._parked
        )

        if self._pending:
            bp = node.binding_pattern
            registry = ctx.environment.registry
            stats = self.stats
            asynchronous = node.delay > 0 and ctx.continuous
            for t in sorted(self._pending):
                if asynchronous:
                    ready_at = self._due.setdefault(t, ctx.instant + node.delay)
                    if ctx.instant < ready_at:
                        continue  # response still in flight
                reference = t[self._service_position]
                inputs = {
                    n: t[p]
                    for n, p in zip(self._input_names, self._input_positions)
                }
                memo_before = registry.memo_hits
                try:
                    results = registry.invoke(
                        bp.prototype, reference, inputs, ctx.instant
                    )
                except ServiceError as exc:
                    stats.invocations += 1
                    if isinstance(exc, ServiceUnavailableError):
                        stats.fast_failures += 1
                    else:
                        stats.failures += 1
                    if node.on_error == "skip":
                        # Dropped request: the tuple stays pending (sync:
                        # retried next instant; async: re-scheduled with
                        # the full delay — naive-engine parity).
                        self._due.pop(t, None)
                        continue
                    if node.on_error == "degrade":
                        self._due.pop(t, None)
                        self._pending.discard(t)
                        self._parked.add(t)
                        continue
                    raise
                stats.invocations += 1
                if registry.memo_hits > memo_before:
                    stats.memo_hits += 1
                rows = self._rows(t, results)
                self._cache[t] = rows
                self._pending.discard(t)
                self._due.pop(t, None)
                self._unflushed |= rows
                if bp.active:
                    input_tuple = tuple(t[p] for p in self._input_positions)
                    ctx.record_action(Action(bp, reference, input_tuple))
                inserted |= rows
        self._unflushed.clear()
        # A rebound tuple whose substitute returns the very same rows nets
        # to no change (the overlap is only ever produced by the rebind
        # invalidation above: distinct operand tuples embed their child
        # values in every row, so they cannot collide).
        overlap = inserted & deleted
        if overlap:
            inserted -= overlap
            deleted -= overlap
        return Delta(frozenset(inserted), frozenset(deleted))


class StreamingInvocationExec(Executor):
    """β∞: by definition every operand tuple is invoked at every instant,
    so per-tick cost is O(|operand|) — the operator models services as
    per-instant data sources (Section 7)."""

    def __init__(self, node: StreamingInvocation, child: Executor):
        super().__init__(node, (child,))
        source = node.children[0].schema
        bp = node.binding_pattern
        prototype = bp.prototype
        self._service_position = source.real_position(bp.service_attribute)
        self._input_names = prototype.input_schema.names
        self._input_positions = [
            source.real_position(n) for n in self._input_names
        ]
        output_index = {n: i for i, n in enumerate(prototype.output_schema.names)}
        sources: list[tuple[str, int]] = []
        for attribute in node.schema.real_attributes:
            if attribute.name in output_index:
                sources.append(("invocation", output_index[attribute.name]))
            elif attribute.name == node.timestamp_attribute:
                sources.append(("timestamp", 0))
            else:
                sources.append(("child", source.real_position(attribute.name)))
        self._out_sources = sources

    @property
    def live(self) -> bool:
        # β∞ models services as per-instant data sources: every operand
        # tuple is re-invoked at every instant, whether or not any base
        # relation changed.
        return True

    def _advance(self, ctx: EvaluationContext):
        node = self.node
        (child,) = self.children
        child_delta = child.tick(ctx)
        stats = self.stats
        stats.input_inserted += len(child_delta.inserted)
        stats.input_deleted += len(child_delta.deleted)
        bp = node.binding_pattern
        registry = ctx.environment.registry
        emitted: set[tuple] = set()
        for t in child.current:
            reference = t[self._service_position]
            inputs = {
                n: t[p]
                for n, p in zip(self._input_names, self._input_positions)
            }
            memo_before = registry.memo_hits
            try:
                results = registry.invoke(
                    bp.prototype, reference, inputs, ctx.instant
                )
            except ServiceError as exc:
                stats.invocations += 1
                if isinstance(exc, ServiceUnavailableError):
                    stats.fast_failures += 1
                else:
                    stats.failures += 1
                if node.on_error in ("skip", "degrade"):
                    # β∞ re-invokes every tuple each instant anyway, so
                    # degrade has nothing to park: the reading is simply
                    # absent from this instant's emission (same as skip).
                    continue
                raise
            stats.invocations += 1
            if registry.memo_hits > memo_before:
                stats.memo_hits += 1
            for output in results:
                row = []
                for kind, position in self._out_sources:
                    if kind == "child":
                        row.append(t[position])
                    elif kind == "invocation":
                        row.append(output[position])
                    else:
                        row.append(ctx.instant)
                emitted.add(tuple(row))
        change = Delta(
            frozenset(emitted - self.current), frozenset(self.current - emitted)
        )
        return change, Delta(frozenset(emitted), _EMPTY)


# ---------------------------------------------------------------------------
# Continuous operators: streaming and window
# ---------------------------------------------------------------------------


class StreamingExec(Executor):
    """S[type]: re-emits the child's reported delta (or full state for
    heartbeat); every emission is an insertion of the output stream."""

    def __init__(self, node: Streaming, child: Executor):
        super().__init__(node, (child,))

    @property
    def live(self) -> bool:
        # The emission at each instant is that instant's delta: even with
        # quiescent sources the output changes (yesterday's emission must
        # drain to an empty one), so stream queries never skip a tick.
        return True

    def _journal_scan_child(self) -> bool:
        (child,) = self.children
        return isinstance(child, ScanExec) and child.journaled

    def fresh_view(self) -> frozenset[tuple]:
        # What a freshly registered S[type] would emit right now.  Over a
        # journaled scan the reported delta is registration-independent,
        # so the warm emission is already correct; over a derived operand
        # a fresh child reports its full contents as insertions.
        if self.node.kind is StreamType.HEARTBEAT or self._journal_scan_child():
            return frozenset(self.current)
        if self.node.kind is StreamType.DELETION:
            return _EMPTY
        return self.children[0].fresh_view()

    def _advance(self, ctx: EvaluationContext):
        node = self.node
        (child,) = self.children
        child_was_fresh = child.is_first_tick
        child.tick(ctx)
        self.stats.input_inserted += len(child.reported.inserted)
        self.stats.input_deleted += len(child.reported.deleted)
        synthesize = (
            self.is_first_tick
            and not child_was_fresh
            and not self._journal_scan_child()
        )
        if node.kind is StreamType.INSERTION:
            emitted = child.fresh_view() if synthesize else child.reported.inserted
        elif node.kind is StreamType.DELETION:
            emitted = _EMPTY if synthesize else child.reported.deleted
        else:  # heartbeat: all tuples present at this instant
            emitted = frozenset(child.current)
        change = Delta(
            frozenset(emitted - self.current), frozenset(self.current - emitted)
        )
        return change, Delta(emitted, _EMPTY)


class WindowExec(Executor):
    """W[period]: support-counted buffer of the last ``period`` instants.

    Over a journaled XD-Relation scan the buffer is fed from the journal
    itself (the contents are then exact regardless of when the query was
    registered); over a derived stream it buffers the child's reported
    insertions per evaluation instant, exactly like the naive engine.
    """

    def __init__(self, node: Window, child: Executor):
        super().__init__(node, (child,))
        self.period = node.period
        self._buckets: dict[int, frozenset[tuple]] = {}
        self._counts: dict[tuple, int] = {}
        self._journal_mode: bool | None = None
        self._consumed: int | None = None

    @property
    def live(self) -> bool:
        # Window contents change by pure passage of time: a bucket expires
        # `period` instants after it was filled, with no source activity.
        return True

    def _advance(self, ctx: EvaluationContext) -> Delta:
        (child,) = self.children
        child_was_fresh = child.is_first_tick
        child.tick(ctx)
        self.stats.input_inserted += len(child.reported.inserted)
        self.stats.input_deleted += len(child.reported.deleted)
        if self._journal_mode is None:
            self._journal_mode = self._detect_journal(ctx)
        touched: set[tuple] = set()
        horizon = ctx.instant - self.period  # keep instants > horizon
        if self._journal_mode:
            self._feed_from_journal(ctx, horizon, touched)
        elif self.is_first_tick and not child_was_fresh:
            # Fresh window over a warm (shared) derived operand: a fresh
            # child would have reported its full contents as this
            # instant's insertions.
            self._feed_bucket(ctx.instant, child.fresh_view(), touched)
        else:
            self._feed_bucket(ctx.instant, child.reported.inserted, touched)
        for instant in [
            i for i in self._buckets if i <= horizon or i > ctx.instant
        ]:
            for t in self._buckets.pop(instant):
                self._discount(t, touched)
        return self._net(touched, lambda t: t in self._counts)

    # -- feeding ---------------------------------------------------------------

    def _detect_journal(self, ctx: EvaluationContext) -> bool:
        scan_node = self.node.children[0]
        if not isinstance(scan_node, Scan):
            return False
        stored = ctx.environment.relation(scan_node.name)
        return hasattr(stored, "changes_between") and hasattr(stored, "window")

    def _feed_from_journal(
        self, ctx: EvaluationContext, horizon: int, touched: set[tuple]
    ) -> None:
        scan_node = self.node.children[0]
        stored = ctx.environment.relation(scan_node.name)
        start = horizon + 1
        if self._consumed is not None:
            start = max(start, self._consumed)
        for instant, inserted, _ in journal_chunks(ctx, stored, start, ctx.instant):
            self._feed_bucket(instant, inserted, touched)
        last = stored.last_instant  # type: ignore[attr-defined]
        self._consumed = last if last <= ctx.instant else ctx.instant + 1

    def _feed_bucket(
        self, instant: int, inserted: frozenset[tuple], touched: set[tuple]
    ) -> None:
        old = self._buckets.get(instant, _EMPTY)
        if inserted == old:
            if inserted:
                self._buckets[instant] = inserted
            return
        for t in inserted - old:
            self._counts[t] = self._counts.get(t, 0) + 1
            touched.add(t)
        for t in old - inserted:
            self._discount(t, touched)
        if inserted:
            self._buckets[instant] = inserted
        else:
            self._buckets.pop(instant, None)

    def _discount(self, t: tuple, touched: set[tuple]) -> None:
        remaining = self._counts[t] - 1
        if remaining:
            self._counts[t] = remaining
        else:
            del self._counts[t]
        touched.add(t)


# ---------------------------------------------------------------------------
# Fallback: naive materialization of an unlowered subtree
# ---------------------------------------------------------------------------


class FallbackExec(Executor):
    """Wraps a logical subtree the lowering pass has no incremental
    executor for: evaluates it naively each tick (using the engine's
    persistent state store) and diffs consecutive materializations.

    This makes lowering total — new logical operators run unmodified on
    the incremental engine, at naive per-tick cost for that subtree —
    and is also the differential-testing bridge."""

    def __init__(self, node: Operator):
        super().__init__(node)

    @property
    def live(self) -> bool:
        # An unlowered subtree has unknown (possibly time-driven)
        # semantics: never skip its query.
        return True

    def _advance(self, ctx: EvaluationContext):
        node = self.node
        new = node.evaluate(ctx).tuples
        change = Delta(
            frozenset(new - self.current), frozenset(self.current - new)
        )
        reported = Delta(node.inserted(ctx), node.deleted(ctx))
        return change, reported
