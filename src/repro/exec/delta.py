"""The delta contract of the physical execution layer.

Every executor reports, per evaluation instant, which tuples entered and
left its instantaneous result.  Two notions of delta coexist, and for all
but one node they coincide:

* the **change delta** — the exact difference between the node's current
  instantaneous result and its result at the previous evaluation instant.
  This is what parent executors consume to maintain their own state.

* the **reported delta** — what the logical node's
  :meth:`~repro.algebra.operators.base.Operator.inserted` /
  :meth:`~repro.algebra.operators.base.Operator.deleted` methods would
  return, which is what the window, streaming and invocation refinements
  of Section 4.2 are defined over.  A scan of a journaled XD-Relation
  reports the journal's deltas *at the evaluation instant exactly*, which
  can differ from the change delta when evaluation instants skip over
  journaled instants; every other node reports its change delta.

Keeping both notions explicit is what lets the incremental engine be
differentially identical to the naive re-evaluating engine.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Delta", "EMPTY_DELTA"]

_EMPTY: frozenset[tuple] = frozenset()


@dataclass(frozen=True)
class Delta:
    """An ``(inserted, deleted)`` pair of disjoint tuple sets."""

    inserted: frozenset[tuple] = _EMPTY
    deleted: frozenset[tuple] = _EMPTY

    def __bool__(self) -> bool:
        return bool(self.inserted or self.deleted)

    def __len__(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def __repr__(self) -> str:
        return f"Delta(+{len(self.inserted)}, -{len(self.deleted)})"


EMPTY_DELTA = Delta()
