"""The delta contract of the physical execution layer.

Every executor reports, per evaluation instant, which tuples entered and
left its instantaneous result.  Two notions of delta coexist, and for all
but one node they coincide:

* the **change delta** — the exact difference between the node's current
  instantaneous result and its result at the previous evaluation instant.
  This is what parent executors consume to maintain their own state.

* the **reported delta** — what the logical node's
  :meth:`~repro.algebra.operators.base.Operator.inserted` /
  :meth:`~repro.algebra.operators.base.Operator.deleted` methods would
  return, which is what the window, streaming and invocation refinements
  of Section 4.2 are defined over.  A scan of a journaled XD-Relation
  reports the journal's deltas *at the evaluation instant exactly*, which
  can differ from the change delta when evaluation instants skip over
  journaled instants; every other node reports its change delta.

Keeping both notions explicit is what lets the incremental engine be
differentially identical to the naive re-evaluating engine.

Backend neutrality
------------------
The contract is an *interface*, not a class: executors consume any object
exposing ``inserted``/``deleted`` (as frozensets of row tuples),
truthiness, ``coalesce`` and order-insensitive equality.  Two
implementations exist — the row-oriented :class:`Delta` below and the
column-oriented :class:`~repro.exec.columnar.ColumnarDelta` — and they
compare equal whenever their tuple sets coincide, so executors of
different backends interoperate freely at the seams (β invocation
executors, naive fallbacks, the oracle engines all stay row-based).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Delta", "EMPTY_DELTA", "coalesce_sets", "render_delta"]

_EMPTY: frozenset[tuple] = frozenset()

#: Most failure-message reprs list every tuple (sorted, so two backends
#: produce byte-identical text); beyond this many per side the listing is
#: truncated to keep accidental reprs of bulk deltas readable.
_REPR_LIMIT = 24


def _sorted_tuples(tuples) -> list[tuple]:
    """Deterministic ordering over possibly mixed-type tuples."""
    return sorted(tuples, key=repr)


def _render_side(tuples) -> str:
    ordered = _sorted_tuples(tuples)
    shown = ", ".join(repr(t) for t in ordered[:_REPR_LIMIT])
    if len(ordered) > _REPR_LIMIT:
        shown += f", … {len(ordered) - _REPR_LIMIT} more"
    return "{" + shown + "}"


def render_delta(inserted, deleted) -> str:
    """The shared, order-insensitive delta repr: both backends render the
    same tuple sets to the same text, so differential-test failure
    messages diff cleanly whichever engines disagreed."""
    return (
        f"(+{len(inserted)} {_render_side(inserted)}, "
        f"-{len(deleted)} {_render_side(deleted)})"
    )


def coalesce_sets(first_inserted, first_deleted, later_inserted, later_deleted):
    """Merge two *consecutive* deltas into one ``(inserted, deleted)``
    pair with the same net effect.

    Assumes the two-delta contract on both inputs (each side internally
    disjoint, the later delta applied to the state the first produced).
    Insert-then-delete pairs cancel — a tuple inserted by the first delta
    and deleted by the later one never happened; symmetrically a tuple
    deleted then re-inserted nets to no change.
    """
    return (
        (first_inserted - later_deleted) | (later_inserted - first_deleted),
        (first_deleted - later_inserted) | (later_deleted - first_inserted),
    )


@dataclass(frozen=True, eq=False)
class Delta:
    """An ``(inserted, deleted)`` pair of disjoint tuple sets."""

    inserted: frozenset[tuple] = _EMPTY
    deleted: frozenset[tuple] = _EMPTY

    def __bool__(self) -> bool:
        return bool(self.inserted or self.deleted)

    def __len__(self) -> int:
        return len(self.inserted) + len(self.deleted)

    def coalesce(self, later: "Delta") -> "Delta":
        """The single delta equivalent to applying ``self`` then ``later``
        (see :func:`coalesce_sets`); the result is again contract-clean.
        Accepts any delta backend; always returns a row :class:`Delta`."""
        # Identity fast paths: the server's overflow coalescing folds
        # long chains where one side is often empty (carried instants).
        if not later:
            return self if self else EMPTY_DELTA
        if not self:
            return Delta(frozenset(later.inserted), frozenset(later.deleted))
        inserted, deleted = coalesce_sets(
            self.inserted,
            self.deleted,
            frozenset(later.inserted),
            frozenset(later.deleted),
        )
        if not inserted and not deleted:
            return EMPTY_DELTA
        return Delta(inserted, deleted)

    def __eq__(self, other: object):
        other_inserted = getattr(other, "inserted", None)
        other_deleted = getattr(other, "deleted", None)
        if other_inserted is None or other_deleted is None:
            return NotImplemented
        return (
            self.inserted == frozenset(other_inserted)
            and self.deleted == frozenset(other_deleted)
        )

    def __hash__(self) -> int:
        return hash((self.inserted, self.deleted))

    def __repr__(self) -> str:
        return f"Delta{render_delta(self.inserted, self.deleted)}"


EMPTY_DELTA = Delta()
