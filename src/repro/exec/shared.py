"""Cross-query shared-subplan execution.

N registered continuous queries over the same ``sensors ⋈ getTemperature``
prefix should not pay the scan, join and maintenance cost N times.  This
module provides:

* :class:`SharedPlanRegistry` — keyed by *canonical* operator subtrees
  (structural ``__eq__``/``__hash__`` on the
  :func:`~repro.algebra.fingerprint.canonical_plan` normal form, so
  Table-5-equivalent subplans coincide), it lowers each distinct shareable
  subtree once and hands the **same executor instance** to every query
  whose plan contains it, with refcounting so deregistration releases
  state exactly when the last owner leaves;
* :class:`SharedEngine` — the per-query driver: the drop-in counterpart of
  :class:`~repro.exec.engine.IncrementalEngine` whose physical plan is
  acquired from a registry instead of lowered privately.

What may be shared
------------------
A subtree is shareable when every node in it is registration-independent:
its state at instant τ is a function of the environment's history alone,
never of *when* the owning query was registered, and advancing it has no
side effects.  That holds for scans, selections, projections, renamings,
assignments, joins, set operators, aggregates, streaming operators, the
streaming invocation β∞ (it re-invokes its whole operand every instant and
carries no actions) and windows fed from an XD-Relation journal.  It does
**not** hold for the invocation operator β: its per-tuple result cache is
frozen at first invocation (two queries registered at different instants
may legitimately hold different cached results for the same tuple), and an
active binding pattern triggers actions that belong to one query's action
set — so every β node always gets a private executor, over (possibly
shared) children.  A consequence the engine relies on: **shared subtrees
never produce actions**.

A query leasing a shared subtree after other queries have run it finds the
executor *warm*; the executors' ``fresh_view``/``_pull`` protocol (see
:mod:`repro.exec.executors`) synthesizes the first-tick catch-up delta so
the late query still observes exactly what a freshly registered one would.
"""

from __future__ import annotations

import hashlib

from repro.algebra.context import EvaluationContext
from repro.algebra.fingerprint import canonical_plan, structural_key
from repro.algebra.operators.base import Operator
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.scan import Scan
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.window import Window
from repro.algebra.query import Query, QueryResult
from repro.errors import SerenaError
from repro.exec.delta import Delta
from repro.exec.executors import Executor, FallbackExec, ScanExec
from repro.exec.lowering import _LOWERINGS, lowerings_for
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation
from repro.obs.observe import Observability

__all__ = ["SharedPlanRegistry", "SharedPlan", "SharedEngine"]


def _digest(node: Operator) -> str:
    """Fingerprint of an already-canonical subtree."""
    return hashlib.sha1(structural_key(node).encode("utf-8")).hexdigest()[:16]


class _Entry:
    """One shared subtree: its executor and how many queries lease it."""

    __slots__ = ("executor", "refcount", "fingerprint")

    def __init__(self, executor: Executor, fingerprint: str):
        self.executor = executor
        self.refcount = 0
        self.fingerprint = fingerprint


class SharedPlanRegistry:
    """Lowers each distinct shareable canonical subtree exactly once.

    One registry per environment (normally owned by the PEMS query
    processor).  Entries are keyed by the canonical operator subtree
    itself; a query leases every distinct shareable subtree of its plan —
    including nested ones, so refcounts stay symmetric under release and a
    parent entry can never outlive its children.
    """

    def __init__(
        self,
        environment: PervasiveEnvironment,
        observe: "Observability | str | None" = None,
        backend: str = "row",
    ):
        self.environment = environment
        #: Every executor this registry builds — shared or private — comes
        #: from one backend's lowering table: a shared subtree's physical
        #: representation is part of its identity, so mixed-backend
        #: leasing of one entry is ruled out by construction.
        self.backend = backend
        self._table = lowerings_for(backend)
        self._entries: dict[Operator, _Entry] = {}
        # Per-instant journal read cache shared by every engine on this
        # registry: (relation id, start, stop) → chunk list, cleared when
        # the instant advances.  N queries folding the same XD-Relation
        # slice then read the journal once per tick, not N times.
        self._journal_cache: dict = {}
        self._journal_cache_instant: int | None = None
        #: Observability facade (the query processor passes the PEMS-wide
        #: one); standalone registries default to "off".
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        metrics = self.obs.metrics
        self._lease_hits_total = metrics.counter(
            "serena_shared_lease_hits_total",
            "Subtree leases satisfied by an already-lowered shared executor",
        )
        self._lease_misses_total = metrics.counter(
            "serena_shared_lease_misses_total",
            "Subtree leases that lowered a new shared executor",
        )
        self._subplans_gauge = metrics.gauge(
            "serena_shared_subplans",
            "Distinct shared subtrees currently live in the registry",
        )
        self._refcount_gauge = metrics.gauge(
            "serena_shared_refcount_total",
            "Sum of refcounts over all live shared subtrees",
        )

    def _sync_gauges(self) -> None:
        self._subplans_gauge.set(len(self._entries))
        self._refcount_gauge.set(self.total_refcount)

    def journal_cache(self, instant: int) -> dict:
        """The shared per-instant journal read cache (see
        :func:`repro.exec.executors.journal_chunks`), reset whenever the
        instant advances."""
        if self._journal_cache_instant != instant:
            self._journal_cache = {}
            self._journal_cache_instant = instant
        return self._journal_cache

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total_refcount(self) -> int:
        return sum(entry.refcount for entry in self._entries.values())

    def refcounts(self) -> dict[str, int]:
        """Fingerprint → refcount of every live entry."""
        return {e.fingerprint: e.refcount for e in self._entries.values()}

    def lookup(self, plan: Operator | Query) -> Executor | None:
        """The shared executor currently registered for ``plan`` (after
        canonicalization), or None — the identity tests hang off this."""
        entry = self._entries.get(canonical_plan(plan))
        return entry.executor if entry is not None else None

    # -- shareability ------------------------------------------------------------

    def _node_shareable(self, node: Operator) -> bool:
        kind = type(node)
        if kind is Invocation:
            return False  # registration-time caches + action side effects
        if kind is StreamingInvocation:
            return not node.binding_pattern.active  # type: ignore[attr-defined]
        if kind is Window:
            # Only a journal-fed window has registration-independent
            # contents; a window over a derived stream buffers what it
            # saw since *its* first tick.
            child = node.children[0]
            if not isinstance(child, Scan):
                return False
            try:
                stored = self.environment.relation(child.name)
            except Exception:
                return False
            return hasattr(stored, "changes_between") and hasattr(
                stored, "window"
            )
        return kind in _LOWERINGS

    def _subtree_shareable(self, node: Operator) -> bool:
        return self._node_shareable(node) and all(
            self._subtree_shareable(child) for child in node.children
        )

    # -- acquire / release -------------------------------------------------------

    def acquire(self, query: Query) -> "SharedPlan":
        """Build (or reuse) the physical plan for ``query``: shareable
        subtrees come refcounted from the registry, the rest is private."""
        canonical = canonical_plan(query)
        leased: dict[Operator, None] = {}
        root = self._build(canonical, leased, {})
        return SharedPlan(self, root, canonical, tuple(leased))

    def acquire_subtree(self, node: Operator) -> "SharedPlan":
        """Lease an already-canonical subtree directly — the federation's
        scatter path: each zone registry hosts its copies of scattered
        subtrees as ordinary shared plans, so two coordinator queries
        scattering the same subtree share one executor per zone."""
        leased: dict[Operator, None] = {}
        root = self._build(node, leased, {})
        return SharedPlan(self, root, node, tuple(leased))

    def _build(
        self,
        node: Operator,
        leased: dict[Operator, None],
        memo: dict[int, Executor],
    ) -> Executor:
        built = memo.get(node.uid)
        if built is not None:  # a node shared within this one plan
            return built
        if self._subtree_shareable(node):
            executor = self._lease(node, leased)
        elif type(node) not in self._table:
            executor = FallbackExec(node)  # naive subtree, like lower()
        else:
            children = [self._build(c, leased, memo) for c in node.children]
            executor = self._table[type(node)](node, *children)
        memo[node.uid] = executor
        return executor

    def _lease(
        self, node: Operator, leased: dict[Operator, None]
    ) -> Executor:
        entry = self._entries.get(node)
        if entry is None:
            self._lease_misses_total.inc()
            children = [self._lease(c, leased) for c in node.children]
            executor = self._table[type(node)](node, *children)
            entry = _Entry(executor, _digest(node))
            self._entries[node] = entry
        else:
            self._lease_hits_total.inc()
            for child in node.children:  # keep descendant refcounts symmetric
                self._lease(child, leased)
        if node not in leased:
            entry.refcount += 1
            leased[node] = None
        self._sync_gauges()
        return entry.executor

    def _release(self, leases: tuple[Operator, ...]) -> None:
        for node in leases:
            entry = self._entries.get(node)
            if entry is None:
                continue
            entry.refcount -= 1
            if entry.refcount <= 0:
                del self._entries[node]
        self._sync_gauges()


class SharedPlan:
    """One query's lease on the registry: the physical root plus every
    shared subtree it holds a refcount on."""

    def __init__(
        self,
        registry: SharedPlanRegistry,
        root: Executor,
        canonical: Operator,
        leases: tuple[Operator, ...],
    ):
        self.registry = registry
        self.root = root
        self.canonical = canonical
        self._leases = leases
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Give back every leased subtree (idempotent); entries whose
        refcount reaches zero are dropped, executor state and all."""
        if self._released:
            return
        self._released = True
        self.registry._release(self._leases)

    def summary(self) -> dict:
        """The sharing summary: plan fingerprint, executor counts, and
        each leased subtree with its current refcount."""
        executors: dict[int, Executor] = {}
        for executor in self.root.walk():
            executors.setdefault(id(executor), executor)
        shared_ids = {
            id(entry.executor) for entry in self.registry._entries.values()
        }
        shared = sum(1 for i in executors if i in shared_ids)
        leases = []
        for node in self._leases:
            entry = self.registry._entries.get(node)
            if entry is None:
                continue
            leases.append(
                {
                    "fingerprint": entry.fingerprint,
                    "operator": node.symbol(),
                    "refcount": entry.refcount,
                }
            )
        return {
            "fingerprint": _digest(self.canonical),
            "executors": len(executors),
            "shared": shared,
            "private": len(executors) - shared,
            "leases": leases,
        }


class SharedEngine:
    """Delta-driven execution of one continuous query over a shared
    physical plan — same contract as
    :class:`~repro.exec.engine.IncrementalEngine`.

    The only behavioural addition is the first tick over a *warm* root
    (the whole plan was already running for other queries): the engine
    then materializes the root's fresh view and reports it as the initial
    insertion delta, which is exactly what a freshly built plan would
    have produced — except over a journaled scan, whose reported delta is
    registration-independent already.
    """

    def __init__(
        self,
        query: Query,
        environment: PervasiveEnvironment,
        registry: SharedPlanRegistry | None = None,
        observe: "Observability | str | None" = None,
        backend: str | None = None,
    ):
        if registry is None:
            registry = SharedPlanRegistry(
                environment, observe=observe, backend=backend or "row"
            )
        elif registry.environment is not environment:
            raise SerenaError(
                "shared-plan registry belongs to a different environment"
            )
        elif backend is not None and backend != registry.backend:
            raise SerenaError(
                f"shared-plan registry lowers to backend "
                f"{registry.backend!r}, cannot run this query on "
                f"{backend!r}: executors of one registry share one "
                "physical representation"
            )
        self.backend = registry.backend
        self.query = query
        self.environment = environment
        self.registry = registry
        self.obs = (
            registry.obs
            if observe is None
            else Observability.coerce(observe)
        )
        self._materializations_total = self.obs.metrics.counter(
            "serena_materializations_total",
            "Root X-Relations rebuilt because the tick's delta was non-empty",
            engine="shared",
        )
        self.plan = registry.acquire(query)
        self.root: Executor = self.plan.root
        # Private per-node state for naive-evaluated fallback subtrees.
        self._states: dict[int, dict] = {}
        self._relation: XRelation | None = None
        self._first = True
        self._resync = False
        self._synth_reported: Delta | None = None

    def tick(self, instant: int) -> QueryResult:
        ctx = EvaluationContext(
            self.environment, instant, self._states, continuous=True
        )
        ctx.journal_cache = self.registry.journal_cache(instant)
        root_warm = not self.root.is_first_tick
        change = self.root.tick(ctx)
        if self._first and root_warm:
            tuples = frozenset(self.root.fresh_view())
            self._relation = XRelation(
                self.query.schema, tuples, validated=True
            )
            if self.obs.metrics_on:
                self._materializations_total.inc()
            if isinstance(self.root, ScanExec) and self.root.journaled:
                self._synth_reported = None  # journal delta is already right
            else:
                self._synth_reported = Delta(tuples, frozenset())
            # The synthesized view may differ from the shared root's
            # maintained current (e.g. a warm stream's emission); force a
            # rebuild on the next tick even if the root reports no change.
            self._resync = True
        else:
            if self._resync or change or self._relation is None:
                self._relation = XRelation(
                    self.query.schema,
                    frozenset(self.root.current),
                    validated=True,
                )
                if self.obs.metrics_on:
                    self._materializations_total.inc()
            self._resync = False
            self._synth_reported = None
        self._first = False
        return QueryResult(self._relation, ctx.action_set, instant)

    @property
    def reported(self) -> Delta:
        if self._synth_reported is not None:
            return self._synth_reported
        return self.root.reported

    @property
    def change(self) -> Delta:
        return self.root.change

    def executors(self) -> list[Executor]:
        """All executors of the physical plan, deduplicated (the plan is
        a DAG under sharing)."""
        seen: set[int] = set()
        out: list[Executor] = []
        for executor in self.root.walk():
            if id(executor) not in seen:
                seen.add(id(executor))
                out.append(executor)
        return out

    def release(self) -> None:
        """Release every shared subtree this engine leases."""
        self.plan.release()
