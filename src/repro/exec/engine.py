"""The incremental engine: drives an executor tree instant by instant.

One :class:`IncrementalEngine` belongs to one registered continuous query.
It lowers the query's logical plan once, then on every tick builds the
evaluation context (shared with any naive-evaluated fallback subtrees via
a persistent state store), advances the executor tree, and materializes a
:class:`~repro.algebra.query.QueryResult` — the exact same product as the
naive re-evaluating engine, so callers (:class:`ContinuousQuery`, the
PEMS query processor) cannot tell the engines apart except by speed.

Materialization is itself incremental: the root's instantaneous relation
is rebuilt only on ticks where the root's delta is non-empty; unchanged
ticks return the cached X-Relation in O(1).
"""

from __future__ import annotations

from repro.algebra.context import EvaluationContext
from repro.algebra.query import Query, QueryResult
from repro.exec.delta import Delta
from repro.exec.executors import Executor
from repro.exec.lowering import lower
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation
from repro.obs.observe import Observability

__all__ = ["IncrementalEngine"]


class IncrementalEngine:
    """Delta-driven execution of one continuous query."""

    def __init__(
        self,
        query: Query,
        environment: PervasiveEnvironment,
        observe: "Observability | str | None" = None,
        backend: str = "row",
    ):
        self.query = query
        self.environment = environment
        #: Which physical backend the plan was lowered to ("row" or
        #: "columnar"; see :data:`repro.exec.lowering.BACKENDS`).
        self.backend = backend
        #: The physical plan (one executor per logical node, shared nodes
        #: lowered once).
        self.root: Executor = lower(query.root, backend=backend)
        # Persistent per-node state for naive-evaluated fallback subtrees
        # (FallbackExec) — the physical counterpart of ContinuousQuery's
        # state store.
        self._states: dict[int, dict] = {}
        self._relation: XRelation | None = None
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        self._materializations_total = self.obs.metrics.counter(
            "serena_materializations_total",
            "Root X-Relations rebuilt because the tick's delta was non-empty",
            engine="incremental",
        )

    def tick(self, instant: int) -> QueryResult:
        """Advance every executor to ``instant`` and materialize the
        result.  Instants must be non-decreasing; re-ticking the current
        instant is an idempotent no-op (memoized in the executors)."""
        ctx = EvaluationContext(
            self.environment, instant, self._states, continuous=True
        )
        change = self.root.tick(ctx)
        if change or self._relation is None:
            self._relation = XRelation(
                self.query.schema, frozenset(self.root.current), validated=True
            )
            if self.obs.metrics_on:
                self._materializations_total.inc()
        return QueryResult(self._relation, ctx.action_set, instant)

    @property
    def reported(self) -> Delta:
        """The root's reported delta at the last ticked instant — what the
        naive engine's ``inserted()``/``deleted()`` would return, used for
        stream emission."""
        return self.root.reported

    @property
    def change(self) -> Delta:
        """The root's change delta at the last ticked instant."""
        return self.root.change

    def executors(self) -> list[Executor]:
        """All executors of the physical plan (debugging/inspection)."""
        return list(self.root.walk())
