"""Columnar deltas: per-attribute parallel arrays behind the delta contract.

The row engines move ``frozenset``-of-tuples deltas between executors and
pay per-tuple Python work at every operator (a dict per selection
predicate evaluation, a generator expression per projected tuple, a key
tuple per join probe).  The columnar backend moves :class:`ColumnarDelta`
objects instead: the insert and delete sides of the two-delta contract
are kept as parallel per-attribute arrays, transposed to and from row
tuples only at the representation seams — and the transposes themselves
run at C speed (``zip(*columns)``).

Design points
-------------
* **Dual lazy representation.**  A delta born from journal sets (a scan)
  holds row tuples; a delta born from a column gather (a projection)
  holds columns.  Either view materializes the other on first use and
  caches it, so a chain of columnar operators converts each batch at most
  once per direction.
* **Tombstone-free insert/delete split.**  The two sides are independent
  arrays — deletions are never encoded as tombstone markers inside the
  insert arrays, which keeps every side directly iterable and keeps the
  contract's set semantics (``inserted``/``deleted`` frozenset views)
  trivially derivable.
* **Interned values.**  :class:`ValuePool` assigns dense integer ids to
  values; the columnar join probes int-keyed hash indexes built over
  interned key arrays instead of hashing freshly built key tuples per
  probe.
* **Contract compatibility.**  ``inserted``/``deleted``, truthiness,
  ``coalesce``, order-insensitive equality and repr all match
  :class:`~repro.exec.delta.Delta`, so row and columnar executors
  interoperate at every seam and differential failure messages diff
  cleanly across backends.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exec.delta import EMPTY_DELTA, Delta, coalesce_sets, render_delta

__all__ = ["ColumnarDelta", "ValuePool", "as_rows"]

_NO_ROWS: tuple = ()

#: Pool size below which :meth:`ValuePool.maybe_compact` never triggers.
#: High-churn join keys (sensor readings keyed by ``(value, instant)``,
#: rotating session ids...) intern a fresh value every tick and never
#: look it up again — without a bound the pool grows monotonically for
#: the life of the executor.
POOL_COMPACT_THRESHOLD = 4096


class ValuePool:
    """Interns values to dense integer ids (id 0, 1, 2, … in first-seen
    order).  One pool per columnar join executor: the ids are private to
    the executor's hash indexes and never leave it.

    The pool is bounded: when it outgrows ``compact_threshold`` the owner
    calls :meth:`maybe_compact` with the ids still referenced by its
    indexes; dead entries are dropped, survivors are re-numbered densely
    and the owner rewrites its index keys through the returned remap."""

    __slots__ = ("_ids", "_values", "_floor", "_threshold", "compactions")

    def __init__(self, compact_threshold: int = POOL_COMPACT_THRESHOLD):
        self._ids: dict = {}
        self._values: list = []
        self._floor = compact_threshold
        self._threshold = compact_threshold
        #: Compactions performed so far (observability / tests).
        self.compactions = 0

    def intern(self, value) -> int:
        """The id of ``value``, allocating one on first sight."""
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self._values)
            self._ids[value] = ident
            self._values.append(value)
        return ident

    def intern_column(self, column: Iterable) -> list[int]:
        """Intern every value of a column (one hot loop, no per-call
        overhead beyond the dict probe)."""
        ids = self._ids
        values = self._values
        out = []
        append = out.append
        for value in column:
            ident = ids.get(value)
            if ident is None:
                ident = len(values)
                ids[value] = ident
                values.append(value)
            append(ident)
        return out

    def value(self, ident: int):
        """The value interned under ``ident``."""
        return self._values[ident]

    def maybe_compact(self, live: Iterable[int]) -> dict[int, int] | None:
        """Compact the pool if it outgrew its threshold.

        ``live`` is the set of ids the owner still references (its index
        keys).  Returns ``None`` when no compaction ran; otherwise every
        dead entry is evicted, the survivors get fresh dense ids, and the
        old-id → new-id remap is returned so the owner can rewrite its
        keys.  When most entries are still live, eviction would reclaim
        almost nothing — the threshold doubles instead, keeping the
        amortized cost of the scan O(1) per interned value.
        """
        if len(self._values) < self._threshold:
            return None
        keep = sorted(set(live))
        if 2 * len(keep) > len(self._values):
            self._threshold = 2 * len(self._values)
            return None
        values = self._values
        remap: dict[int, int] = {}
        survivors: list = []
        ids: dict = {}
        for old in keep:
            value = values[old]
            remap[old] = len(survivors)
            ids[value] = len(survivors)
            survivors.append(value)
        self._values = survivors
        self._ids = ids
        self._threshold = max(self._floor, 2 * len(survivors))
        self.compactions += 1
        return remap

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value) -> bool:
        return value in self._ids

    def __repr__(self) -> str:
        return f"ValuePool({len(self._values)} values)"


def _transpose(rows: Sequence[tuple], width: int) -> list[list]:
    """Rows → per-attribute arrays, at C speed."""
    if not rows:
        return [[] for _ in range(width)]
    return [list(column) for column in zip(*rows)]


def _rows_from_columns(columns: Sequence[Sequence], width: int, count: int):
    if width == 0:
        return [()] * count
    return list(zip(*columns))


class ColumnarDelta:
    """A two-delta whose insert and delete sides are column batches.

    Construct with :meth:`from_rows` (row-tuple lists — duplicates and
    ``None`` values are preserved verbatim in the arrays),
    :meth:`from_sets` (frozensets straight off the row contract; zero
    copying) or :meth:`from_columns` (per-attribute arrays).  ``width``
    is the number of *real* attributes of the producing operator's
    schema — the arity of every row tuple.
    """

    __slots__ = (
        "width",
        "_insert_rows",
        "_delete_rows",
        "_insert_columns",
        "_delete_columns",
        "_inserted",
        "_deleted",
    )

    def __init__(self):  # use the from_* constructors
        self.width = 0
        self._insert_rows = None
        self._delete_rows = None
        self._insert_columns = None
        self._delete_columns = None
        self._inserted = None
        self._deleted = None

    # -- constructors ----------------------------------------------------------

    @classmethod
    def from_rows(
        cls, inserted: Sequence[tuple], deleted: Sequence[tuple], width: int
    ) -> "ColumnarDelta":
        delta = cls.__new__(cls)
        delta.width = width
        delta._insert_rows = inserted
        delta._delete_rows = deleted
        delta._insert_columns = None
        delta._delete_columns = None
        delta._inserted = None
        delta._deleted = None
        return delta

    @classmethod
    def from_sets(
        cls, inserted: frozenset, deleted: frozenset, width: int
    ) -> "ColumnarDelta":
        """Wrap the row contract's frozensets without copying; the sets
        double as the cached ``inserted``/``deleted`` views."""
        delta = cls.from_rows(inserted, deleted, width)
        delta._inserted = inserted
        delta._deleted = deleted
        return delta

    @classmethod
    def from_columns(
        cls,
        insert_columns: Sequence[Sequence],
        delete_columns: Sequence[Sequence],
        width: int,
        insert_count: int | None = None,
        delete_count: int | None = None,
    ) -> "ColumnarDelta":
        """Adopt per-attribute arrays.  The explicit counts are only
        needed for width-0 schemas, where no array exists to measure."""
        delta = cls.__new__(cls)
        delta.width = width
        delta._insert_rows = None
        delta._delete_rows = None
        delta._insert_columns = list(insert_columns)
        delta._delete_columns = list(delete_columns)
        delta._inserted = None
        delta._deleted = None
        if width == 0:
            delta._insert_rows = [()] * (insert_count or 0)
            delta._delete_rows = [()] * (delete_count or 0)
        return delta

    @classmethod
    def coerce(cls, delta, width: int) -> "ColumnarDelta":
        """``delta`` as a ColumnarDelta (identity when it already is one)."""
        if isinstance(delta, cls):
            return delta
        return cls.from_sets(delta.inserted, delta.deleted, width)

    # -- row views -------------------------------------------------------------

    def insert_rows(self) -> Sequence[tuple]:
        """The insert side as row tuples (computed once, cached)."""
        rows = self._insert_rows
        if rows is None:
            rows = self._insert_rows = _rows_from_columns(
                self._insert_columns, self.width, self.insert_count
            )
        return rows

    def delete_rows(self) -> Sequence[tuple]:
        rows = self._delete_rows
        if rows is None:
            rows = self._delete_rows = _rows_from_columns(
                self._delete_columns, self.width, self.delete_count
            )
        return rows

    # -- column views ----------------------------------------------------------

    def insert_columns(self) -> list[list]:
        """The insert side as per-attribute arrays (computed once, cached)."""
        columns = self._insert_columns
        if columns is None:
            columns = self._insert_columns = _transpose(
                list(self._insert_rows), self.width
            )
        return columns

    def delete_columns(self) -> list[list]:
        columns = self._delete_columns
        if columns is None:
            columns = self._delete_columns = _transpose(
                list(self._delete_rows), self.width
            )
        return columns

    @property
    def insert_count(self) -> int:
        if self._insert_rows is not None:
            return len(self._insert_rows)
        columns = self._insert_columns
        return len(columns[0]) if columns else 0

    @property
    def delete_count(self) -> int:
        if self._delete_rows is not None:
            return len(self._delete_rows)
        columns = self._delete_columns
        return len(columns[0]) if columns else 0

    # -- the delta contract ----------------------------------------------------

    @property
    def inserted(self) -> frozenset:
        tuples = self._inserted
        if tuples is None:
            tuples = self._inserted = frozenset(self.insert_rows())
        return tuples

    @property
    def deleted(self) -> frozenset:
        tuples = self._deleted
        if tuples is None:
            tuples = self._deleted = frozenset(self.delete_rows())
        return tuples

    def to_delta(self) -> Delta:
        """The equivalent row :class:`~repro.exec.delta.Delta`."""
        if not self:
            return EMPTY_DELTA
        return Delta(self.inserted, self.deleted)

    def coalesce(self, later) -> "ColumnarDelta":
        """The single delta equivalent to applying ``self`` then ``later``
        (any backend); stays columnar."""
        # Identity fast paths — mirror Delta.coalesce: no set algebra (and
        # no column rebuild) when either side is empty.
        if not later:
            return self
        if not self:
            return ColumnarDelta.from_sets(
                frozenset(later.inserted), frozenset(later.deleted), self.width
            )
        inserted, deleted = coalesce_sets(
            self.inserted,
            self.deleted,
            frozenset(later.inserted),
            frozenset(later.deleted),
        )
        return ColumnarDelta.from_sets(inserted, deleted, self.width)

    def __bool__(self) -> bool:
        return bool(self.insert_count or self.delete_count)

    def __len__(self) -> int:
        return self.insert_count + self.delete_count

    def __eq__(self, other: object):
        other_inserted = getattr(other, "inserted", None)
        other_deleted = getattr(other, "deleted", None)
        if other_inserted is None or other_deleted is None:
            return NotImplemented
        return (
            self.inserted == frozenset(other_inserted)
            and self.deleted == frozenset(other_deleted)
        )

    def __hash__(self) -> int:
        return hash((self.inserted, self.deleted))

    def __repr__(self) -> str:
        return f"ColumnarDelta{render_delta(self.inserted, self.deleted)}"


def as_rows(delta) -> tuple[Iterable[tuple], Iterable[tuple]]:
    """``(insert rows, delete rows)`` of either delta backend, without
    forcing a representation change."""
    if isinstance(delta, ColumnarDelta):
        return delta.insert_rows(), delta.delete_rows()
    return delta.inserted, delta.deleted
