"""Uniform report formatting for the benchmark suite.

Every benchmark prints its result through these helpers so the output of
``pytest benchmarks/ --benchmark-only`` reads like the paper's tables, and
mirrors each report into ``benchmarks/reports/<name>.txt`` for
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Sequence

__all__ = ["format_table", "Report"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width text table with a separator line under the header."""
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in text_rows)
    return "\n".join(parts)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class Report:
    """Accumulates a benchmark's textual report; prints and persists it."""

    def __init__(self, name: str, directory: str | None = None):
        self.name = name
        if directory is None:
            directory = os.path.join(os.path.dirname(__file__), "..", "..", "..")
            directory = os.path.normpath(
                os.path.join(directory, "benchmarks", "reports")
            )
        self.directory = directory
        self._sections: list[str] = []

    def add(self, text: str) -> None:
        self._sections.append(text)

    def table(
        self,
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        title: str | None = None,
    ) -> None:
        self.add(format_table(headers, rows, title))

    def render(self) -> str:
        header = f"== {self.name} =="
        return "\n\n".join([header, *self._sections])

    def emit(self) -> str:
        """Print the report and write it under ``benchmarks/reports/``."""
        text = self.render()
        print("\n" + text)
        try:
            os.makedirs(self.directory, exist_ok=True)
            path = os.path.join(self.directory, f"{self.name}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
        except OSError:
            pass  # reports are best-effort; the printout is authoritative
        return text
