"""Benchmark substrate: workload generators, measurement harness and
report formatting (the hybrid-query benchmark the paper defers to the
OPTIMACS project, Section 7)."""

from repro.bench.harness import RunStats, measure_run
from repro.bench.reporting import Report, format_table
from repro.bench.workloads import (
    RandomEnvironment,
    build_surveillance_workload,
    random_environment,
)

__all__ = [
    "RandomEnvironment",
    "Report",
    "RunStats",
    "build_surveillance_workload",
    "format_table",
    "measure_run",
    "random_environment",
]
