"""Parametric workload generators for the benchmark harness.

The paper defers a quantitative evaluation ("no benchmark can be used for
that purpose", Section 5.2) and announces a pervasive-environment benchmark
for *hybrid queries* involving data and services (the OPTIMACS project,
Section 7).  This module provides that missing workload generator:

* :func:`build_surveillance_workload` — a scaled temperature-surveillance
  environment: N sensors over L locations, M contacts/managers, K cameras,
  with the standard alert query registered; used for throughput/latency
  sweeps (experiment X1 of DESIGN.md).

* :func:`random_environment` — a randomized, seeded relational pervasive
  environment with generic passive and active prototypes and tables bound
  to them; used by property-based equivalence tests and the rewriting
  benchmarks (experiment T5/X2).
"""

from __future__ import annotations

from repro.devices.cameras import Camera
from repro.devices.determinism import stable_int, stable_unit
from repro.devices.messengers import Outbox, email_service, jabber_service, sms_service
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.devices.scenario import (
    Scenario,
    cameras_schema,
    contacts_schema,
    sensors_schema,
    surveillance_schema,
    temperatures_schema,
)
from repro.devices.sensors import SensorStreamFeeder, TemperatureSensor
from repro.algebra.builder import scan
from repro.algebra.formula import col
from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.environment import PervasiveEnvironment
from repro.model.prototypes import Prototype
from repro.model.relation import XRelation
from repro.model.schema import RelationSchema
from repro.model.services import Service
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.pems import PEMS

__all__ = ["build_surveillance_workload", "random_environment", "RandomEnvironment"]


def build_surveillance_workload(
    num_sensors: int = 20,
    num_contacts: int = 5,
    num_cameras: int = 5,
    num_locations: int = 5,
    threshold: float = 28.0,
    hot_fraction: float = 0.2,
    with_queries: bool = True,
    seed: int = 0,
) -> Scenario:
    """A scaled surveillance environment.

    ``hot_fraction`` of the sensors run permanently hot (base temperature
    above ``threshold``), so every tick produces a predictable share of
    alert-triggering readings — the load knob of the throughput sweeps.
    """
    pems = PEMS()
    env = pems.environment
    for prototype in STANDARD_PROTOTYPES:
        env.declare_prototype(prototype)
    outbox = Outbox()
    scenario = Scenario(pems, outbox)

    locations = [f"room{i:02d}" for i in range(num_locations)]
    field_erm = pems.create_local_erm("field")
    gateway_erm = pems.create_local_erm("gateway")

    hot_count = int(num_sensors * hot_fraction)
    for i in range(num_sensors):
        location = locations[i % num_locations]
        base = threshold + 4.0 if i < hot_count else threshold - 8.0
        sensor = TemperatureSensor(f"sensor{i:03d}", location, base)
        scenario.sensors[sensor.reference] = sensor
        field_erm.register(sensor.as_service())
    for i in range(num_cameras):
        camera = Camera(f"camera{i:03d}", locations[i % num_locations])
        scenario.cameras[camera.reference] = camera
        field_erm.register(camera.as_service())

    channels = [email_service(outbox), jabber_service(outbox), sms_service(outbox)]
    for messenger in channels:
        scenario.messengers[messenger.reference] = messenger
        gateway_erm.register(messenger.as_service())

    tables = pems.tables
    tables.create_relation(sensors_schema())
    tables.create_relation(cameras_schema())
    tables.create_relation(contacts_schema())
    tables.create_relation(surveillance_schema())
    tables.create_relation(temperatures_schema(), infinite=True)

    tables.insert(
        "contacts",
        [
            {
                "name": f"manager{i:02d}",
                "address": f"manager{i:02d}@example.org",
                "messenger": channels[i % len(channels)].reference,
            }
            for i in range(num_contacts)
        ],
    )
    tables.insert(
        "surveillance",
        [
            {
                "name": f"manager{i % num_contacts:02d}",
                "location": locations[i],
                "threshold": threshold,
            }
            for i in range(num_locations)
        ],
    )

    pems.queries.register_discovery("getTemperature", "sensors", "sensor")
    pems.queries.register_discovery("checkPhoto", "cameras", "camera")
    pems.add_stream_source(
        SensorStreamFeeder(env.registry, lambda rows: tables.insert("temperatures", rows))
    )

    if with_queries:
        alerts = (
            scan(env, "temperatures")
            .window(1)
            .join(scan(env, "surveillance"))
            .select(col("temperature").gt(col("threshold")))
            .join(scan(env, "contacts"))
            .assign("text", "Hot!")
            .invoke("sendMessage", on_error="skip")
            .query("alerts")
        )
        scenario.queries["alerts"] = pems.queries.register_continuous(alerts)
    return scenario


# ---------------------------------------------------------------------------
# Randomized environments for equivalence checking
# ---------------------------------------------------------------------------

#: The generic environment wraps everything needed to build plans on it.
class RandomEnvironment:
    """A seeded random relational pervasive environment.

    Contains one X-Relation ``items`` with:

    * real attributes ``item`` (SERVICE), ``category`` (STRING),
      ``size`` (INTEGER);
    * virtual attributes ``score`` (REAL, output of the passive
      ``getScore`` prototype) and ``done`` (BOOLEAN, output of the active
      ``doWork`` prototype with input ``category``);

    and a second plain relation ``categories(category, priority)`` to join
    with.  Services are deterministic functions of (reference, instant).
    """

    def __init__(self, seed: int = 0, num_items: int = 8, num_services: int = 4):
        self.seed = seed
        self.get_score = Prototype(
            "getScore", RelationSchema(()), RelationSchema.of(score="REAL")
        )
        self.do_work = Prototype(
            "doWork",
            RelationSchema.of(category="STRING"),
            RelationSchema.of(done="BOOLEAN"),
            active=True,
        )
        self.work_log: list[tuple[str, str, int]] = []

        env = PervasiveEnvironment()
        env.declare_prototype(self.get_score)
        env.declare_prototype(self.do_work)

        for i in range(num_services):
            reference = f"svc{i:02d}"
            env.register_service(self._make_service(reference))

        items_schema = ExtendedRelationSchema(
            "items",
            [
                Attribute("item", DataType.SERVICE),
                Attribute("category", DataType.STRING),
                Attribute("size", DataType.INTEGER),
                Attribute("score", DataType.REAL),
                Attribute("done", DataType.BOOLEAN),
            ],
            virtual={"score", "done"},
            binding_patterns=[
                BindingPattern(self.get_score, "item"),
                BindingPattern(self.do_work, "item"),
            ],
        )
        categories = ("alpha", "beta", "gamma")
        rows = []
        for i in range(num_items):
            rows.append(
                {
                    "item": f"svc{stable_int(num_services, seed, 'svc', i):02d}",
                    "category": categories[stable_int(len(categories), seed, "cat", i)],
                    "size": stable_int(50, seed, "size", i),
                }
            )
        env.add_relation(XRelation.from_mappings(items_schema, rows))

        categories_schema = ExtendedRelationSchema(
            "categories",
            [
                Attribute("category", DataType.STRING),
                Attribute("priority", DataType.INTEGER),
            ],
        )
        env.add_relation(
            XRelation.from_mappings(
                categories_schema,
                [
                    {"category": c, "priority": stable_int(5, seed, "prio", c)}
                    for c in categories
                ],
            )
        )
        self.environment = env
        self.items_schema = items_schema

    def _make_service(self, reference: str) -> Service:
        def get_score(inputs, instant):
            return [{"score": round(stable_unit(reference, "score", instant) * 10, 3)}]

        def do_work(inputs, instant):
            self.work_log.append((reference, str(inputs["category"]), instant))
            return [{"done": stable_unit(reference, "work", instant) > 0.2}]

        return Service(reference, {self.get_score: get_score, self.do_work: do_work})


def random_environment(seed: int = 0, num_items: int = 8) -> RandomEnvironment:
    """Build a :class:`RandomEnvironment` (seeded, deterministic)."""
    return RandomEnvironment(seed, num_items)
