"""Measurement harness for scenario and scalability benchmarks.

Drives a scenario's clock for a number of instants while sampling:

* wall-clock latency per tick (the cost of one full PEMS cycle: stream
  ingestion + discovery sync + continuous query evaluation) — read from
  the PEMS observability facade's exact per-tick samples when metrics are
  on, or timed locally when they are off,
* service invocations performed and per-instant memo hits (from the
  registry's metrics-backed counters),
* stream tuples produced and messages sent.

Results come back as a :class:`RunStats` with simple percentile helpers,
which the benchmark files format through :mod:`repro.bench.reporting`.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.devices.scenario import Scenario

__all__ = ["RunStats", "measure_run"]


@dataclass
class RunStats:
    """Aggregated measurements of one scenario run."""

    instants: int
    tick_seconds: list[float] = field(default_factory=list)
    invocations: int = 0
    memo_hits: int = 0
    stream_tuples: int = 0
    messages: int = 0
    actions: int = 0

    @property
    def total_seconds(self) -> float:
        return sum(self.tick_seconds)

    @property
    def ticks_per_second(self) -> float:
        total = self.total_seconds
        return self.instants / total if total > 0 else float("inf")

    @property
    def mean_tick_ms(self) -> float:
        return 1000.0 * statistics.fmean(self.tick_seconds) if self.tick_seconds else 0.0

    def percentile_tick_ms(self, fraction: float) -> float:
        """Tick latency percentile in milliseconds (e.g. 0.95)."""
        if not self.tick_seconds:
            return 0.0
        ordered = sorted(self.tick_seconds)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return 1000.0 * ordered[index]

    @property
    def invocations_per_instant(self) -> float:
        return self.invocations / self.instants if self.instants else 0.0


def measure_run(
    scenario: Scenario,
    instants: int,
    stream_relation: str = "temperatures",
) -> RunStats:
    """Run ``scenario`` for ``instants`` ticks and measure everything.

    The registry invocation counter is reset at the start, so the counts
    cover exactly this run.
    """
    registry = scenario.environment.registry
    registry.reset_invocation_count()
    stats = RunStats(instants)

    stream = None
    if stream_relation in scenario.environment:
        stream = scenario.environment.relation(stream_relation)
    tuples_before = len(stream) if stream is not None else 0
    messages_before = len(scenario.outbox)
    actions_before = sum(
        len(cq.action_log) for cq in scenario.queries.values()
    )
    memo_before = registry.memo_hits

    # With metrics on, PEMS.tick already records exact per-tick seconds in
    # the observability facade's bounded sample ring: read those instead of
    # double-timing.  Fall back to local timing when observability is off
    # or the run would overflow the ring.
    obs = getattr(scenario.pems, "obs", None)
    from_obs = (
        obs is not None
        and obs.metrics_on
        and obs.tick_samples.maxlen is not None
        and instants <= obs.tick_samples.maxlen
    )
    if from_obs:
        samples_before = obs.tick_samples_total
        for _ in range(instants):
            scenario.pems.tick()
        recorded = obs.tick_samples_total - samples_before
        stats.tick_seconds = list(obs.tick_samples)[-recorded:]
    else:
        for _ in range(instants):
            started = time.perf_counter()
            scenario.pems.tick()
            stats.tick_seconds.append(time.perf_counter() - started)

    stats.invocations = registry.invocation_count
    stats.memo_hits = registry.memo_hits - memo_before
    stats.stream_tuples = (len(stream) - tuples_before) if stream is not None else 0
    stats.messages = len(scenario.outbox) - messages_before
    stats.actions = (
        sum(len(cq.action_log) for cq in scenario.queries.values()) - actions_before
    )
    return stats
