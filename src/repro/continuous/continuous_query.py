"""Continuous queries over XD-Relations (Section 4.2).

A continuous query re-evaluates a Serena plan at every time instant,
keeping per-node state across instants in a persistent evaluation context:

* the invocation operator's cache, so that "a binding pattern is actually
  invoked only for newly inserted tuples, and not for every tuple from the
  relation at each time instant";
* window buffers and delta bookkeeping for the W and S operators.

The result of each tick is a :class:`~repro.algebra.query.QueryResult`; if
the query's last operator is a streaming operator (like Q4 of Table 4),
the per-tick relation is the stream's emission at that instant and
:attr:`ContinuousQuery.emitted` accumulates the output stream.

Three execution engines are available (the ``engine`` parameter):

* ``"incremental"`` (default) — the plan is lowered to the delta-driven
  physical executors of :mod:`repro.exec`; steady-state tick cost is
  proportional to the environment's churn, not to relation sizes.
* ``"shared"`` — like incremental, but the physical plan is acquired from
  a :class:`~repro.exec.shared.SharedPlanRegistry`: structurally
  equivalent subplans of co-registered queries run on the *same* executor
  instances (the PEMS query processor uses this, together with its tick
  scheduler, for multi-query workloads).
* ``"naive"`` — the original engine: the logical plan re-evaluates its
  full instantaneous result each tick.  Kept as the differential-testing
  oracle; all engines produce identical results, deltas, emissions and
  actions at every instant.
* ``"columnar"`` — sugar for the incremental engine with
  ``backend="columnar"``: the relational core runs the batch-evaluating
  executors of :mod:`repro.exec.vectorized` over
  :class:`~repro.exec.columnar.ColumnarDelta` batches.

Orthogonally, ``backend`` ("row"/"columnar") selects the physical
representation for the incremental and shared engines — so a shared
registry built with ``backend="columnar"`` serves whole multi-query
workloads columnar, with unchanged sharing and carry-forward semantics.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algebra.actions import Action, ActionSet
from repro.algebra.context import EvaluationContext
from repro.algebra.query import Query, QueryResult
from repro.errors import SerenaError
from repro.exec.delta import EMPTY_DELTA, Delta
from repro.exec.engine import IncrementalEngine
from repro.exec.shared import SharedEngine, SharedPlanRegistry
from repro.model.environment import PervasiveEnvironment
from repro.obs.observe import Observability

__all__ = ["ContinuousQuery"]

_ENGINES = ("incremental", "naive", "shared", "columnar")

#: Shared by every carried-forward result; ActionSet is a frozenset, so
#: one instance is safe and keeps the O(1) carry path allocation-free.
_NO_ACTIONS = ActionSet()


class ContinuousQuery:
    """A registered continuous query with persistent evaluation state."""

    def __init__(
        self,
        query: Query,
        environment: PervasiveEnvironment,
        keep_history: bool = False,
        engine: str = "incremental",
        shared: SharedPlanRegistry | None = None,
        observe: "Observability | str | None" = None,
        backend: str | None = None,
    ):
        if engine not in _ENGINES:
            raise SerenaError(
                f"unknown execution engine {engine!r} (expected one of "
                f"{', '.join(_ENGINES)})"
            )
        if engine == "columnar":  # sugar: incremental plan, columnar backend
            if backend not in (None, "columnar"):
                raise SerenaError(
                    f'engine "columnar" implies backend="columnar", '
                    f"got backend={backend!r}"
                )
            engine, backend = "incremental", "columnar"
        if engine == "naive" and backend not in (None, "row"):
            raise SerenaError(
                "the naive engine has no physical plan to lower; "
                f"backend={backend!r} does not apply"
            )
        self.query = query
        self.environment = environment
        self.engine = engine
        #: Observability facade shared with the physical engine (the PEMS
        #: query processor passes its environment-wide one).
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        if engine == "incremental":
            self._engine = IncrementalEngine(
                query, environment, observe=self.obs, backend=backend or "row"
            )
        elif engine == "shared":
            # Without a caller-supplied registry the query gets a private
            # one: correct, just with nothing to share against.
            self._engine = SharedEngine(
                query, environment, shared, observe=self.obs, backend=backend
            )
        else:
            self._engine = None
        #: The resolved physical backend ("row" for the naive engine).
        self.backend = getattr(self._engine, "backend", None) or "row"
        self._states: dict[int, dict[str, Any]] = {}
        self._last_instant = -1
        self._last_result: QueryResult | None = None
        self._carried = False
        self._all_actions: list[Action] = []
        self._emitted: list[tuple[int, tuple]] = []
        self._history: list[QueryResult] | None = [] if keep_history else None
        self._listeners: list[Callable[[QueryResult], None]] = []
        #: Plan-swap bookkeeping (see :meth:`swap_plan`): the relation
        #: right before the last swap, and the netted reported delta of
        #: the first post-swap evaluation.
        self._swap_baseline: frozenset[tuple] | None = None
        self._reported_override: Delta | None = None
        #: How many times :meth:`swap_plan` replaced the physical plan.
        self.swaps = 0

    # -- observation -------------------------------------------------------------

    def on_result(self, listener: Callable[[QueryResult], None]) -> None:
        """Register a callback fired after each evaluation (real-time
        consumers: GUIs, alert sinks...)."""
        self._listeners.append(listener)

    @property
    def last_result(self) -> QueryResult | None:
        return self._last_result

    @property
    def history(self) -> list[QueryResult]:
        if self._history is None:
            raise SerenaError(
                "history was not enabled; construct with keep_history=True"
            )
        return list(self._history)

    @property
    def actions(self) -> ActionSet:
        """All actions triggered since registration (cumulative)."""
        return ActionSet(self._all_actions)

    @property
    def action_log(self) -> list[Action]:
        """All actions in trigger order (with duplicates, unlike the set)."""
        return list(self._all_actions)

    @property
    def emitted(self) -> list[tuple[int, tuple]]:
        """For stream-producing queries: the accumulated (instant, tuple)
        output stream."""
        return list(self._emitted)

    @property
    def last_reported_delta(self) -> Delta:
        """The Section 4.2 reported delta of the last evaluation — empty
        when the last instant was carried forward."""
        if self._last_result is None:
            raise SerenaError(
                f"continuous query {self.query.name!r} has not been "
                "evaluated yet"
            )
        if self._carried:
            return EMPTY_DELTA
        if self._reported_override is not None:
            # First evaluation after a plan swap: the cold plan's own
            # reported delta describes a from-scratch materialization, not
            # the change the *query* observed — return the net difference
            # against the pre-swap relation instead (two-delta contract).
            return self._reported_override
        if self._engine is not None:
            return self._engine.reported
        ctx = EvaluationContext(
            self.environment, self._last_instant, self._states, continuous=True
        )
        return Delta(
            frozenset(self.query.root.inserted(ctx)),
            frozenset(self.query.root.deleted(ctx)),
        )

    @property
    def sharing_summary(self) -> dict | None:
        """For the shared engine: the plan fingerprint, shared/private
        executor counts and leased subtrees (None on other engines)."""
        if isinstance(self._engine, SharedEngine):
            return self._engine.plan.summary()
        return None

    def executors(self) -> list:
        """The executors of the physical plan ([] on the naive engine)."""
        if self._engine is None:
            return []
        return self._engine.executors()

    def release(self) -> None:
        """Release engine resources (shared-subplan refcounts); idempotent.
        Called by the query processor on deregistration."""
        engine = self._engine
        if engine is not None and hasattr(engine, "release"):
            engine.release()

    # -- plan swapping ------------------------------------------------------------

    @property
    def swappable(self) -> bool:
        """Whether :meth:`swap_plan` may replace this query's plan.

        Three classes are excluded: the naive engine (no physical plan),
        stream-typed queries (emissions depend on plan registration time,
        so a cold plan would re-emit history) and queries invoking an
        *active* prototype (a cold invocation executor would re-fire the
        side-effecting actions for every already-seen tuple).
        """
        if self._engine is None or self.query.is_stream:
            return False
        stack = [self.query.root]
        while stack:
            node = stack.pop()
            binding = getattr(node, "binding_pattern", None)
            if binding is not None and binding.prototype.active:
                return False
            stack.extend(node.children)
        return True

    def swap_plan(self, query: Query) -> None:
        """Replace the physical plan in place with a re-lowered ``query``
        (same result schema), preserving the two-delta contract.

        The new engine is built *before* the old one is released, so on
        the shared engine every structurally common subtree is re-leased
        warm from the registry (its refcount never reaches zero) and only
        the genuinely restructured executors start cold.  The first
        post-swap evaluation reports the *net* delta against the pre-swap
        relation — for an equivalent plan that is the ordinary per-tick
        delta, exactly as if no swap had happened.
        """
        if not self.swappable:
            raise SerenaError(
                f"continuous query {self.query.name!r} is not swappable "
                "(naive engine, stream query, or active binding pattern)"
            )
        if query.root.schema.names != self.query.root.schema.names:
            raise SerenaError(
                f"swap_plan for {self.query.name!r}: the new plan's output "
                f"schema {query.root.schema.names} differs from "
                f"{self.query.root.schema.names}"
            )
        old_engine = self._engine
        if isinstance(old_engine, SharedEngine):
            # Acquire-before-release: common subtrees stay warm.
            new_engine = SharedEngine(
                query,
                self.environment,
                old_engine.registry,
                observe=self.obs,
                backend=self.backend,
            )
        else:
            new_engine = IncrementalEngine(
                query, self.environment, observe=self.obs, backend=self.backend
            )
        if self._last_result is not None:
            self._swap_baseline = frozenset(self._last_result.relation)
            if not self._carried and self._reported_override is None:
                # Until the new plan's first tick, ``last_reported_delta``
                # must keep describing the evaluation that already
                # happened — freeze the outgoing engine's delta.
                self._reported_override = old_engine.reported
        if hasattr(old_engine, "release"):
            old_engine.release()
        self.query = query
        self._engine = new_engine
        self.swaps += 1

    # -- evaluation ---------------------------------------------------------------

    def evaluate_at(self, instant: int) -> QueryResult:
        """Evaluate the query at ``instant`` (must be non-decreasing).

        Re-evaluating the current instant is idempotent: the cached result
        is returned and no bookkeeping (actions, emissions, history,
        listeners) happens twice.
        """
        if instant < self._last_instant:
            raise SerenaError(
                f"continuous query {self.query.name!r}: evaluation instants "
                f"must be non-decreasing (got {instant} after "
                f"{self._last_instant})"
            )
        if instant == self._last_instant and self._last_result is not None:
            return self._last_result
        if self._engine is not None:
            result = self._engine.tick(instant)
        else:
            ctx = EvaluationContext(
                self.environment, instant, self._states, continuous=True
            )
            result = self.query.evaluate_in(ctx)
        self._last_instant = instant
        self._last_result = result
        self._carried = False
        if self._swap_baseline is not None:
            relation = frozenset(result.relation)
            self._reported_override = Delta(
                relation - self._swap_baseline,
                self._swap_baseline - relation,
            )
            self._swap_baseline = None
        else:
            self._reported_override = None
        self._all_actions.extend(
            sorted(
                result.actions,
                key=lambda a: (
                    a.binding_pattern.prototype.name,
                    str(a.service),
                    tuple(repr(v) for v in a.inputs),
                ),
            )
        )
        if self.query.is_stream:
            self._emitted.extend((instant, t) for t in result.relation)
        if self._history is not None:
            self._history.append(result)
        for listener in list(self._listeners):
            listener(result)
        return result

    def carry_forward(self, instant: int) -> QueryResult:
        """Advance to ``instant`` without evaluating: reuse the previous
        result relation with an empty delta and no actions.

        Only sound when the caller (the tick scheduler) has established
        that none of the query's sources changed and its plan has no
        time-driven (live) executor — the evaluation would then provably
        reproduce the cached relation.  History and listeners observe the
        carried result exactly as if it had been evaluated; stream
        emissions are never carried (stream queries are always live).
        """
        if instant < self._last_instant:
            raise SerenaError(
                f"continuous query {self.query.name!r}: evaluation instants "
                f"must be non-decreasing (got {instant} after "
                f"{self._last_instant})"
            )
        if instant == self._last_instant and self._last_result is not None:
            return self._last_result
        if self._last_result is None:
            return self.evaluate_at(instant)  # nothing to carry yet
        result = QueryResult(self._last_result.relation, _NO_ACTIONS, instant)
        self._last_instant = instant
        self._last_result = result
        self._carried = True
        if self._history is not None:
            self._history.append(result)
        for listener in list(self._listeners):
            listener(result)
        return result

    def run(self, instants: range) -> list[QueryResult]:
        """Evaluate at every instant of ``instants``; returns all results."""
        return [self.evaluate_at(instant) for instant in instants]

    def __repr__(self) -> str:
        return (
            f"ContinuousQuery({self.query.name or self.query.render()}, "
            f"last instant {self._last_instant})"
        )
