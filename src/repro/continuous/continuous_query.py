"""Continuous queries over XD-Relations (Section 4.2).

A continuous query re-evaluates a Serena plan at every time instant,
keeping per-node state across instants in a persistent evaluation context:

* the invocation operator's cache, so that "a binding pattern is actually
  invoked only for newly inserted tuples, and not for every tuple from the
  relation at each time instant";
* window buffers and delta bookkeeping for the W and S operators.

The result of each tick is a :class:`~repro.algebra.query.QueryResult`; if
the query's last operator is a streaming operator (like Q4 of Table 4),
the per-tick relation is the stream's emission at that instant and
:attr:`ContinuousQuery.emitted` accumulates the output stream.

Three execution engines are available (the ``engine`` parameter):

* ``"incremental"`` (default) — the plan is lowered to the delta-driven
  physical executors of :mod:`repro.exec`; steady-state tick cost is
  proportional to the environment's churn, not to relation sizes.
* ``"shared"`` — like incremental, but the physical plan is acquired from
  a :class:`~repro.exec.shared.SharedPlanRegistry`: structurally
  equivalent subplans of co-registered queries run on the *same* executor
  instances (the PEMS query processor uses this, together with its tick
  scheduler, for multi-query workloads).
* ``"naive"`` — the original engine: the logical plan re-evaluates its
  full instantaneous result each tick.  Kept as the differential-testing
  oracle; all engines produce identical results, deltas, emissions and
  actions at every instant.
* ``"columnar"`` — sugar for the incremental engine with
  ``backend="columnar"``: the relational core runs the batch-evaluating
  executors of :mod:`repro.exec.vectorized` over
  :class:`~repro.exec.columnar.ColumnarDelta` batches.

Orthogonally, ``backend`` ("row"/"columnar") selects the physical
representation for the incremental and shared engines — so a shared
registry built with ``backend="columnar"`` serves whole multi-query
workloads columnar, with unchanged sharing and carry-forward semantics.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.algebra.actions import Action, ActionSet
from repro.algebra.context import EvaluationContext
from repro.algebra.query import Query, QueryResult
from repro.errors import SerenaError
from repro.exec.delta import EMPTY_DELTA, Delta
from repro.exec.engine import IncrementalEngine
from repro.exec.shared import SharedEngine, SharedPlanRegistry
from repro.model.environment import PervasiveEnvironment
from repro.obs.observe import Observability

__all__ = ["ContinuousQuery"]

_ENGINES = ("incremental", "naive", "shared", "columnar")

#: Shared by every carried-forward result; ActionSet is a frozenset, so
#: one instance is safe and keeps the O(1) carry path allocation-free.
_NO_ACTIONS = ActionSet()


class ContinuousQuery:
    """A registered continuous query with persistent evaluation state."""

    def __init__(
        self,
        query: Query,
        environment: PervasiveEnvironment,
        keep_history: bool = False,
        engine: str = "incremental",
        shared: SharedPlanRegistry | None = None,
        observe: "Observability | str | None" = None,
        backend: str | None = None,
    ):
        if engine not in _ENGINES:
            raise SerenaError(
                f"unknown execution engine {engine!r} (expected one of "
                f"{', '.join(_ENGINES)})"
            )
        if engine == "columnar":  # sugar: incremental plan, columnar backend
            if backend not in (None, "columnar"):
                raise SerenaError(
                    f'engine "columnar" implies backend="columnar", '
                    f"got backend={backend!r}"
                )
            engine, backend = "incremental", "columnar"
        if engine == "naive" and backend not in (None, "row"):
            raise SerenaError(
                "the naive engine has no physical plan to lower; "
                f"backend={backend!r} does not apply"
            )
        self.query = query
        self.environment = environment
        self.engine = engine
        #: Observability facade shared with the physical engine (the PEMS
        #: query processor passes its environment-wide one).
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        if engine == "incremental":
            self._engine = IncrementalEngine(
                query, environment, observe=self.obs, backend=backend or "row"
            )
        elif engine == "shared":
            # Without a caller-supplied registry the query gets a private
            # one: correct, just with nothing to share against.
            self._engine = SharedEngine(
                query, environment, shared, observe=self.obs, backend=backend
            )
        else:
            self._engine = None
        #: The resolved physical backend ("row" for the naive engine).
        self.backend = getattr(self._engine, "backend", None) or "row"
        self._states: dict[int, dict[str, Any]] = {}
        self._last_instant = -1
        self._last_result: QueryResult | None = None
        self._carried = False
        self._all_actions: list[Action] = []
        self._emitted: list[tuple[int, tuple]] = []
        self._history: list[QueryResult] | None = [] if keep_history else None
        self._listeners: list[Callable[[QueryResult], None]] = []

    # -- observation -------------------------------------------------------------

    def on_result(self, listener: Callable[[QueryResult], None]) -> None:
        """Register a callback fired after each evaluation (real-time
        consumers: GUIs, alert sinks...)."""
        self._listeners.append(listener)

    @property
    def last_result(self) -> QueryResult | None:
        return self._last_result

    @property
    def history(self) -> list[QueryResult]:
        if self._history is None:
            raise SerenaError(
                "history was not enabled; construct with keep_history=True"
            )
        return list(self._history)

    @property
    def actions(self) -> ActionSet:
        """All actions triggered since registration (cumulative)."""
        return ActionSet(self._all_actions)

    @property
    def action_log(self) -> list[Action]:
        """All actions in trigger order (with duplicates, unlike the set)."""
        return list(self._all_actions)

    @property
    def emitted(self) -> list[tuple[int, tuple]]:
        """For stream-producing queries: the accumulated (instant, tuple)
        output stream."""
        return list(self._emitted)

    @property
    def last_reported_delta(self) -> Delta:
        """The Section 4.2 reported delta of the last evaluation — empty
        when the last instant was carried forward."""
        if self._last_result is None:
            raise SerenaError(
                f"continuous query {self.query.name!r} has not been "
                "evaluated yet"
            )
        if self._carried:
            return EMPTY_DELTA
        if self._engine is not None:
            return self._engine.reported
        ctx = EvaluationContext(
            self.environment, self._last_instant, self._states, continuous=True
        )
        return Delta(
            frozenset(self.query.root.inserted(ctx)),
            frozenset(self.query.root.deleted(ctx)),
        )

    @property
    def sharing_summary(self) -> dict | None:
        """For the shared engine: the plan fingerprint, shared/private
        executor counts and leased subtrees (None on other engines)."""
        if isinstance(self._engine, SharedEngine):
            return self._engine.plan.summary()
        return None

    def executors(self) -> list:
        """The executors of the physical plan ([] on the naive engine)."""
        if self._engine is None:
            return []
        return self._engine.executors()

    def release(self) -> None:
        """Release engine resources (shared-subplan refcounts); idempotent.
        Called by the query processor on deregistration."""
        engine = self._engine
        if engine is not None and hasattr(engine, "release"):
            engine.release()

    # -- evaluation ---------------------------------------------------------------

    def evaluate_at(self, instant: int) -> QueryResult:
        """Evaluate the query at ``instant`` (must be non-decreasing).

        Re-evaluating the current instant is idempotent: the cached result
        is returned and no bookkeeping (actions, emissions, history,
        listeners) happens twice.
        """
        if instant < self._last_instant:
            raise SerenaError(
                f"continuous query {self.query.name!r}: evaluation instants "
                f"must be non-decreasing (got {instant} after "
                f"{self._last_instant})"
            )
        if instant == self._last_instant and self._last_result is not None:
            return self._last_result
        if self._engine is not None:
            result = self._engine.tick(instant)
        else:
            ctx = EvaluationContext(
                self.environment, instant, self._states, continuous=True
            )
            result = self.query.evaluate_in(ctx)
        self._last_instant = instant
        self._last_result = result
        self._carried = False
        self._all_actions.extend(
            sorted(
                result.actions,
                key=lambda a: (
                    a.binding_pattern.prototype.name,
                    str(a.service),
                    tuple(repr(v) for v in a.inputs),
                ),
            )
        )
        if self.query.is_stream:
            self._emitted.extend((instant, t) for t in result.relation)
        if self._history is not None:
            self._history.append(result)
        for listener in list(self._listeners):
            listener(result)
        return result

    def carry_forward(self, instant: int) -> QueryResult:
        """Advance to ``instant`` without evaluating: reuse the previous
        result relation with an empty delta and no actions.

        Only sound when the caller (the tick scheduler) has established
        that none of the query's sources changed and its plan has no
        time-driven (live) executor — the evaluation would then provably
        reproduce the cached relation.  History and listeners observe the
        carried result exactly as if it had been evaluated; stream
        emissions are never carried (stream queries are always live).
        """
        if instant < self._last_instant:
            raise SerenaError(
                f"continuous query {self.query.name!r}: evaluation instants "
                f"must be non-decreasing (got {instant} after "
                f"{self._last_instant})"
            )
        if instant == self._last_instant and self._last_result is not None:
            return self._last_result
        if self._last_result is None:
            return self.evaluate_at(instant)  # nothing to carry yet
        result = QueryResult(self._last_result.relation, _NO_ACTIONS, instant)
        self._last_instant = instant
        self._last_result = result
        self._carried = True
        if self._history is not None:
            self._history.append(result)
        for listener in list(self._listeners):
            listener(result)
        return result

    def run(self, instants: range) -> list[QueryResult]:
        """Evaluate at every instant of ``instants``; returns all results."""
        return [self.evaluate_at(instant) for instant in instants]

    def __repr__(self) -> str:
        return (
            f"ContinuousQuery({self.query.name or self.query.render()}, "
            f"last instant {self._last_instant})"
        )
