"""Discrete time for pervasive environments (Sections 3.2 and 4.1).

The paper assumes a discrete and ordered time domain ``T`` of instants; a
query evaluation occurs at a given instant, and continuous queries are
re-evaluated at every instant.  :class:`VirtualClock` realizes this domain:
instants are non-negative integers, advanced explicitly by the test or
benchmark harness, which makes every run deterministic and as fast as the
CPU allows (the substitution for wall-clock time documented in DESIGN.md).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import SerenaError

__all__ = ["VirtualClock"]


class VirtualClock:
    """A discrete, monotonically advancing clock.

    Tick listeners (registered with :meth:`on_tick`) fire after each
    advance, in registration order — PEMS uses them to drive simulated
    devices and continuous query evaluation.
    """

    def __init__(self, start: int = 0):
        if start < 0:
            raise SerenaError("clock cannot start before instant 0")
        self._now = start
        self._listeners: list[Callable[[int], None]] = []

    @property
    def now(self) -> int:
        """The current instant τ."""
        return self._now

    def on_tick(self, listener: Callable[[int], None]) -> None:
        """Register a listener called with the new instant after each tick."""
        self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[int], None]) -> None:
        self._listeners = [l for l in self._listeners if l is not listener]

    def tick(self) -> int:
        """Advance time by one instant and notify listeners."""
        self._now += 1
        for listener in list(self._listeners):
            listener(self._now)
        return self._now

    def run(self, instants: int) -> int:
        """Advance by ``instants`` ticks; returns the final instant."""
        if instants < 0:
            raise SerenaError("cannot run the clock backwards")
        for _ in range(instants):
            self.tick()
        return self._now

    def iter_ticks(self, instants: int) -> Iterator[int]:
        """Yield each new instant while advancing ``instants`` times."""
        for _ in range(instants):
            yield self.tick()

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now})"
