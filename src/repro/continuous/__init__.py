"""Continuous extension (Section 4): discrete time, XD-Relations and
continuous queries."""

from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.time import VirtualClock
from repro.continuous.xdrelation import XDRelation

__all__ = ["ContinuousQuery", "VirtualClock", "XDRelation"]
