"""eXtended Dynamic relations, or XD-Relations (Section 4.1).

An XD-Relation over an extended relation schema maps each time instant to
a set of tuples over that schema.  It may be *finite* (a dynamic relation:
tuples are inserted and deleted over time, like the ``contacts`` table) or
*infinite* (a data stream: an append-only sequence, like ``temperatures``).

The implementation journals insertions and deletions per instant, which
gives three views used by the algebra:

* :meth:`instantaneous` — the relation at an instant (Section 4.2:
  "for each time instant, a finite XD-Relation is like an X-Relation");
* :meth:`inserted_at` / :meth:`deleted_at` — exact per-instant deltas,
  consumed by the invocation refinement and the streaming operator;
* :meth:`window` — the tuples inserted during the last *period* instants,
  consumed by the window operator.

Following the core model (Sections 2–3) relations are *sets*: inserting a
tuple already present at the same instant is a no-op.  Streams that may
legitimately repeat readings should carry a timestamp attribute (as the
paper's ``temperatures`` stream does in our scenarios), which is also how
CQL-style systems disambiguate physically identical events.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Mapping

from repro.errors import SerenaError
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["XDRelation"]


class XDRelation:
    """A journaled dynamic relation or stream over an extended schema."""

    def __init__(
        self,
        schema: ExtendedRelationSchema,
        infinite: bool = False,
        initial: Iterable[tuple] = (),
    ):
        self.schema = schema
        self.infinite = infinite
        # Journal: parallel sorted list of instants and per-instant deltas.
        self._instants: list[int] = []
        self._inserted: dict[int, set[tuple]] = {}
        self._deleted: dict[int, set[tuple]] = {}
        # Running state and cache for instantaneous(): state after the last
        # journaled instant.
        self._state: set[tuple] = set()
        self._last_instant = -1
        self._revision = 0
        initial = list(initial)
        if initial:
            self.insert(initial, instant=0)

    # -- writes -----------------------------------------------------------------

    def _delta(self, instant: int) -> tuple[set[tuple], set[tuple]]:
        if instant < self._last_instant:
            raise SerenaError(
                f"XD-Relation {self.schema.name!r}: writes must be in "
                f"non-decreasing time order (got instant {instant} after "
                f"{self._last_instant})"
            )
        if instant not in self._inserted:
            bisect.insort(self._instants, instant)
            self._inserted[instant] = set()
            self._deleted[instant] = set()
        self._last_instant = instant
        return self._inserted[instant], self._deleted[instant]

    def insert(self, tuples: Iterable[tuple], instant: int) -> int:
        """Insert tuples at ``instant``; returns how many were new."""
        inserted, deleted = self._delta(instant)
        count = 0
        for values in tuples:
            values = self.schema.validate_tuple(values)
            if values in self._state:
                continue
            self._state.add(values)
            deleted.discard(values)
            inserted.add(values)
            count += 1
        if count:
            self._revision += 1
        return count

    def insert_mappings(
        self, rows: Iterable[Mapping[str, object]], instant: int
    ) -> int:
        """Insert name→value rows (real attributes only) at ``instant``."""
        return self.insert(
            (self.schema.tuple_from_mapping(row) for row in rows), instant
        )

    def delete(self, tuples: Iterable[tuple], instant: int) -> int:
        """Delete tuples at ``instant``; returns how many were present.

        Streams are append-only (Section 4.1): deleting from an infinite
        XD-Relation is an error.
        """
        if self.infinite:
            raise SerenaError(
                f"stream {self.schema.name!r} is append-only: deletion is "
                "not defined on infinite XD-Relations"
            )
        inserted, deleted = self._delta(instant)
        count = 0
        for values in tuples:
            values = self.schema.validate_tuple(values)
            if values not in self._state:
                continue
            self._state.discard(values)
            if values in inserted:
                inserted.discard(values)  # inserted and deleted same instant
            else:
                deleted.add(values)
            count += 1
        if count:
            self._revision += 1
        return count

    def delete_mappings(
        self, rows: Iterable[Mapping[str, object]], instant: int
    ) -> int:
        return self.delete(
            (self.schema.tuple_from_mapping(row) for row in rows), instant
        )

    # -- reads ---------------------------------------------------------------------

    def instantaneous(self, instant: int) -> XRelation:
        """The X-Relation at ``instant``.

        For a finite XD-Relation: every tuple inserted and not yet deleted
        as of ``instant``.  For a stream: every tuple inserted up to
        ``instant`` (the unbounded prefix — normally consumed through a
        window instead).
        """
        if instant >= self._last_instant:
            return XRelation(self.schema, self._state, validated=True)
        # Replay the journal up to the requested instant.
        state: set[tuple] = set()
        for journaled in self._instants:
            if journaled > instant:
                break
            state |= self._inserted[journaled]
            state -= self._deleted[journaled]
        return XRelation(self.schema, state, validated=True)

    def inserted_at(self, instant: int) -> frozenset[tuple]:
        """Exact insertions at ``instant``."""
        return frozenset(self._inserted.get(instant, ()))

    def deleted_at(self, instant: int) -> frozenset[tuple]:
        """Exact deletions at ``instant``."""
        return frozenset(self._deleted.get(instant, ()))

    def window(self, instant: int, period: int) -> frozenset[tuple]:
        """Tuples inserted during ``(instant − period, instant]``."""
        tuples: set[tuple] = set()
        start = bisect.bisect_right(self._instants, instant - period)
        stop = bisect.bisect_right(self._instants, instant)
        for journaled in self._instants[start:stop]:
            tuples |= self._inserted[journaled]
        return frozenset(tuples)

    def changes_between(
        self, start: int, stop: int
    ) -> list[tuple[int, frozenset[tuple], frozenset[tuple]]]:
        """Journal entries at instants in ``[start, stop]``, in time order.

        Each entry is ``(instant, inserted, deleted)`` with snapshot copies
        of the per-instant delta sets.  This is the journaled-leaf fast
        path of the incremental execution engine
        (:mod:`repro.exec`): a scan over this relation reads the exact
        deltas between two evaluation instants instead of diffing whole
        materializations.  Entries are snapshots, so a caller may hold
        them across later writes.
        """
        lo = bisect.bisect_left(self._instants, start)
        hi = bisect.bisect_right(self._instants, stop)
        return [
            (
                journaled,
                frozenset(self._inserted[journaled]),
                frozenset(self._deleted[journaled]),
            )
            for journaled in self._instants[lo:hi]
        ]

    @property
    def last_instant(self) -> int:
        """The latest journaled instant (−1 when empty)."""
        return self._last_instant

    @property
    def revision(self) -> int:
        """Monotone write counter: bumped by every effective insert or
        delete batch.  The tick scheduler (:mod:`repro.exec.scheduler`)
        compares revisions to decide in O(1) whether a relation moved
        since a query's last evaluation."""
        return self._revision

    def __len__(self) -> int:
        """Current cardinality (total inserted count for a stream)."""
        return len(self._state)

    def __repr__(self) -> str:
        kind = "stream" if self.infinite else "dynamic relation"
        return (
            f"XDRelation({self.schema.name or '<anonymous>'}, {kind}, "
            f"{len(self._state)} tuples @ {self._last_instant})"
        )
