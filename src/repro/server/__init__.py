"""The subscription server: continuous queries over the wire.

A long-running asyncio service wrapping one :class:`~repro.pems.pems.PEMS`
(or :class:`~repro.fed.pems.FederatedPEMS`): the server drives the
virtual-clock tick loop and pushes each registered continuous query's
per-instant result deltas to subscribed clients.  Clients speak a
line-delimited JSON protocol over TCP (:mod:`repro.server.protocol`);
the same listener also answers plain ``GET`` requests with an HTTP
Server-Sent-Events stream, so a browser ``EventSource`` subscribes with
no extra port.

The tick loop stays single-threaded on the virtual clock — only
*delivery* is asynchronous.  Each subscription owns a bounded
:class:`~repro.server.delivery.DeliveryQueue`; when a slow consumer
falls behind, the queue coalesces its oldest pending deltas with the
two-delta ``coalesce`` instead of blocking the loop, which is lossless
for final state (DESIGN.md §12).
"""

from repro.server.admission import AdmissionControl, AdmissionError
from repro.server.delivery import DeliveryQueue, QueuedDelta
from repro.server.service import SubscriptionServer

__all__ = [
    "AdmissionControl",
    "AdmissionError",
    "DeliveryQueue",
    "QueuedDelta",
    "SubscriptionServer",
]
