"""The wire protocol of the subscription server.

One JSON object per ``\\n``-terminated line, both directions (UTF-8).

The client speaks first (like HTTP — the server sniffs the first line
to tell a JSONL client from an SSE ``GET``): open with any operation,
typically ``ping``.  The server answers with its ``hello`` greeting
followed by the response to that first operation.

Client → server operations (the ``op`` key selects):

``{"op": "register", "sql": "SELECT …", "name": "hot"?}``
    Register a continuous query by Serena SQL text.  ``name`` is the
    client-chosen handle deltas are tagged with; defaults to a
    server-assigned ``q<N>``.
``{"op": "deregister", "name": "hot"}``
    Drop one subscription (the underlying query survives while other
    clients still share it).
``{"op": "ping"}`` / ``{"op": "quit"}``
    Liveness probe / orderly goodbye.

Server → client messages (the ``type`` key selects): ``hello``,
``registered``, ``deregistered``, ``delta``, ``pong``, ``bye`` and
``error``.  A ``delta`` carries the half-open work of one queue entry::

    {"type": "delta", "name": "hot", "first": 3, "last": 5,
     "inserted": [["cam2", 21.5]], "deleted": [], "coalesced": 2}

``first``/``last`` bound the instants the entry spans (equal unless the
delivery queue coalesced), rows are sorted by repr so two servers render
byte-identical streams, and ``coalesced`` counts how many merges were
folded in.  Applying ``deleted`` then ``inserted`` to the client's
replica yields the query's exact result relation at instant ``last``.

The SSE shim reuses the same JSON payloads: each server message becomes
one ``data:`` event on a ``text/event-stream`` response.
"""

from __future__ import annotations

import json

from repro.errors import SerenaError

__all__ = [
    "ProtocolError",
    "decode_line",
    "encode",
    "render_rows",
    "sse_event",
    "sse_response_head",
]

#: Protect the reader loop from unbounded lines (64 KiB of SQL is ample).
MAX_LINE_BYTES = 65536


class ProtocolError(SerenaError):
    """A malformed client line or unsupported operation."""


def encode(message: dict) -> bytes:
    """One wire line: compact JSON + newline."""
    return (
        json.dumps(message, separators=(",", ":"), default=str) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one client line into its operation object."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed line: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError("expected a JSON object per line")
    if "op" not in message:
        raise ProtocolError("missing 'op' key")
    return message


def render_rows(tuples) -> list[list]:
    """Row tuples as sorted JSON arrays (deterministic wire order)."""
    return [list(row) for row in sorted(tuples, key=repr)]


# -- the HTTP Server-Sent-Events shim -----------------------------------------


def sse_response_head() -> bytes:
    """The response head opening an unbounded event stream."""
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-cache\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )


def sse_error_response(status: str, detail: str) -> bytes:
    body = (detail + "\n").encode("utf-8")
    return (
        f"HTTP/1.1 {status}\r\n"
        f"Content-Type: text/plain\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("utf-8") + body


def sse_event(message: dict) -> bytes:
    """One server message as one SSE ``data:`` event."""
    payload = json.dumps(message, separators=(",", ":"), default=str)
    return f"data: {payload}\n\n".encode("utf-8")
