"""The subscription server: the tick loop and the subscriber registry.

One :class:`SubscriptionServer` wraps one PEMS (plain or federated) and
owns its virtual clock.  Distinct continuous queries — keyed by
whitespace-normalized SQL — register once on the wrapped query
processor regardless of subscriber count; each subscriber of a query
gets its own bounded delivery queue.  The flow per instant:

1. ``tick()`` advances the PEMS (every registered query evaluates under
   the engine's ordinary scheduling, single-threaded on the clock);
2. ``_publish`` reads each query's reported delta and fans it out to
   the query's subscriber queues — synchronous O(subscribers) set
   handoffs, never blocking on any socket;
3. each subscription's pump task delivers from its queue at whatever
   pace its socket sustains (see :mod:`repro.server.delivery` for the
   overflow semantics).

A warm subscriber — joining a query that has already evaluated — first
receives a synthetic *snapshot* delta (the query's current result as
insertions at its last instant), the wire equivalent of the engine's
fresh-over-warm ``fresh_view()`` catch-up, so every client replica
starts from the true standing state.

The TCP listener also answers HTTP ``GET /subscribe?sql=…`` with a
Server-Sent-Events stream carrying the same JSON payloads (one
``data:`` event per message), sniffed from the first request line —
browsers subscribe on the same port.
"""

from __future__ import annotations

import asyncio
import time
import urllib.parse
from typing import Optional

from repro.errors import SerenaError
from repro.exec.delta import Delta
from repro.obs.observe import Observability
from repro.pems.pems import PEMS
from repro.server.admission import AdmissionControl, AdmissionError
from repro.server.delivery import DeliveryQueue, QueuedDelta
from repro.server.protocol import (
    encode,
    sse_error_response,
    sse_event,
    sse_response_head,
)
from repro.server.session import ClientSession, Subscription

__all__ = ["ServerQuery", "SubscriptionServer"]

#: Delivery-latency buckets: sub-millisecond to seconds (wall time from
#: publish to socket write, per entry).
_DELIVERY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
)


def normalize_sql(sql: str) -> str:
    """The sharing key: whitespace-collapsed, semicolon-stripped text."""
    return " ".join(sql.split()).rstrip(";").strip()


class ServerQuery:
    """One distinct continuous query and its current subscriber set."""

    __slots__ = ("key", "sql", "name", "continuous", "subscribers", "published")

    def __init__(self, key: str, sql: str, name: str, continuous):
        self.key = key
        self.sql = sql
        self.name = name
        self.continuous = continuous
        self.subscribers: dict[Subscription, None] = {}
        #: False until the first post-evaluation publish.  That first
        #: publish sends the full result as a snapshot rather than the
        #: engine's reported delta: a scan's Section 4.2 reported delta
        #: is journal-exact at the evaluation instant and omits rows
        #: standing from *before* registration, which a cold subscriber
        #: replica has never seen.
        self.published = False


class SubscriptionServer:
    """An asyncio service pushing continuous-query deltas to clients."""

    def __init__(
        self,
        pems: Optional[PEMS] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_depth: int = 64,
        tick_interval: float | None = None,
        admission: AdmissionControl | None = None,
    ):
        self.pems = pems if pems is not None else PEMS()
        self.obs: Observability = self.pems.obs
        self.host = host
        self.port = port
        self.queue_depth = queue_depth
        #: Seconds between automatic ticks; None = manual ``tick()`` only
        #: (deterministic mode — what the tests and the differential use).
        self.tick_interval = tick_interval
        self.admission = (
            admission
            if admission is not None
            else AdmissionControl(observe=self.obs)
        )
        self._queries: dict[str, ServerQuery] = {}
        self._sessions: dict[ClientSession, None] = {}
        self._sse_clients = 0
        self._client_seq = 0
        self._query_seq = 0
        self._server: asyncio.AbstractServer | None = None
        self._ticker: asyncio.Task | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._closed = False
        metrics = self.obs.metrics
        self._clients_gauge = metrics.gauge(
            "serena_server_clients", "Connected clients (JSONL + SSE)"
        )
        self._subscriptions_gauge = metrics.gauge(
            "serena_server_subscriptions", "Live subscriptions"
        )
        self._queries_gauge = metrics.gauge(
            "serena_server_queries", "Distinct continuous queries served"
        )
        self._deltas_published = metrics.counter(
            "serena_server_deltas_published_total",
            "Non-empty per-instant deltas fanned out to subscribers",
        )
        self.messages_sent = metrics.counter(
            "serena_server_messages_sent_total",
            "Delta messages written to client sockets",
        )
        self._delivery_hist = metrics.histogram(
            "serena_server_delivery_seconds",
            "Wall time from delta publish to socket write",
            buckets=_DELIVERY_BUCKETS,
        )

    # -- lifecycle ----------------------------------------------------------------

    async def start(self) -> "SubscriptionServer":
        """Bind the listener (and the ticker when an interval is set)."""
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.tick_interval is not None:
            self._ticker = asyncio.ensure_future(self._tick_loop())
        return self

    async def _tick_loop(self) -> None:
        try:
            while not self._closed:
                self.tick()
                await asyncio.sleep(self.tick_interval)
        except asyncio.CancelledError:
            pass

    def tick(self) -> int:
        """Advance one instant and fan out the resulting deltas.

        Synchronous on purpose: evaluation stays single-threaded on the
        virtual clock; only delivery (the pump tasks) is asynchronous.
        """
        if self.obs.tracing_on:
            with self.obs.tracer.span(
                "server.tick", self.pems.clock.now + 1
            ):
                instant = self.pems.tick()
                self._publish(instant)
            return instant
        instant = self.pems.tick()
        self._publish(instant)
        return instant

    async def shutdown(self) -> None:
        """Orderly teardown: stop ticking, close every session, release
        every query, then ``close()`` the wrapped PEMS (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._ticker is not None:
            self._ticker.cancel()
            try:
                await self._ticker
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions):
            await session.close()
        for query in list(self._queries.values()):
            for subscription in list(query.subscribers):
                self.unsubscribe(subscription)
        # Reap the connection handlers (their queues just closed, their
        # sockets just died) before the caller tears the loop down —
        # otherwise asyncio.run cancels them mid-close and the streams
        # machinery logs spurious CancelledError callbacks.
        pending = [task for task in self._conn_tasks if not task.done()]
        if pending:
            await asyncio.wait(pending, timeout=5.0)
        self.pems.close()
        self._sync_gauges()

    # -- connections ---------------------------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            await self._handle_connection(reader, writer)
        finally:
            if task is not None:
                self._conn_tasks.discard(task)

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            self.admission.admit_client(self._connected())
        except AdmissionError as exc:
            writer.write(
                encode(
                    {"type": "error", "reason": exc.reason, "detail": str(exc)}
                )
            )
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return
        try:
            first = await reader.readline()
        except (ConnectionError, asyncio.IncompleteReadError):
            first = b""
        if not first:
            writer.close()
            return
        if first.split(b" ", 1)[0] in (b"GET", b"HEAD"):
            await self._serve_sse(first, reader, writer)
        else:
            self._client_seq += 1
            session = ClientSession(
                self, reader, writer, f"c{self._client_seq}"
            )
            self._sessions[session] = None
            self._sync_gauges()
            await session.run(first_line=first)

    def _connected(self) -> int:
        return len(self._sessions) + self._sse_clients

    def forget_session(self, session: ClientSession) -> None:
        self._sessions.pop(session, None)
        self._sync_gauges()

    # -- subscriptions ---------------------------------------------------------------

    def subscribe(
        self, session, sql: str, name: str
    ) -> Subscription:
        """Admit + register one subscription; returns it with any warm
        snapshot catch-up already queued."""
        key = normalize_sql(sql)
        if not key:
            raise SerenaError("empty query text")
        query = self._queries.get(key)
        self.admission.admit_subscription(
            len(session.subscriptions),
            len(self._queries),
            shared=query is not None,
        )
        if query is None:
            self._query_seq += 1
            server_name = f"server-q{self._query_seq}"
            continuous = self.pems.queries.register_continuous_sql(
                key, name=server_name
            )
            query = ServerQuery(key, sql, server_name, continuous)
            self._queries[key] = query
        subscription = Subscription(
            name,
            query,
            DeliveryQueue(self.queue_depth),
            session.client_id,
            self.obs.metrics,
        )
        query.subscribers[subscription] = None
        self._queue_snapshot(query, subscription)
        self._sync_gauges()
        return subscription

    def _queue_snapshot(
        self, query: ServerQuery, subscription: Subscription
    ) -> None:
        """Warm catch-up: the query's standing result as one insertion
        delta at its last evaluation instant (nothing for cold queries —
        they evaluate at the next tick, and empty results need no wire)."""
        result = query.continuous.last_result
        if result is None:
            return
        tuples = frozenset(result.relation.tuples)
        if not tuples:
            return
        subscription.queue.publish(
            QueuedDelta(
                result.instant,
                result.instant,
                Delta(tuples, frozenset()),
                0,
                time.perf_counter(),
            )
        )

    def unsubscribe(self, subscription: Subscription) -> None:
        """Drop one subscription; the underlying query deregisters when
        its last subscriber leaves (idempotent per subscription)."""
        query = subscription.query
        if subscription not in query.subscribers:
            return
        del query.subscribers[subscription]
        subscription.queue.close()
        subscription.sync_metrics()
        if not query.subscribers and self._queries.get(query.key) is query:
            del self._queries[query.key]
            self.pems.queries.deregister_continuous(query.name)
        self._sync_gauges()

    # -- delta fan-out ---------------------------------------------------------------

    def _publish(self, instant: int) -> None:
        """Fan each query's reported delta out to its subscriber queues."""
        tracing = self.obs.tracing_on
        span = (
            self.obs.tracer.span(
                "server.publish", instant, queries=len(self._queries)
            )
            if tracing
            else None
        )
        now = time.perf_counter()
        published = 0
        with span if span is not None else _NULL_CONTEXT:
            for query in self._queries.values():
                continuous = query.continuous
                result = continuous.last_result
                if result is None or result.instant != instant:
                    continue  # failed/skipped this tick; nothing to report
                if not query.published:
                    # First publish after registration: full-result
                    # snapshot (cold subscribers start from the empty
                    # replica — see ServerQuery.published).
                    query.published = True
                    tuples = frozenset(result.relation.tuples)
                    if not tuples:
                        continue
                    row = Delta(tuples, frozenset())
                else:
                    delta = continuous.last_reported_delta
                    if not delta:
                        continue
                    row = Delta(
                        frozenset(delta.inserted), frozenset(delta.deleted)
                    )
                entry = QueuedDelta(instant, instant, row, 0, now)
                published += 1
                for subscription in query.subscribers:
                    subscription.queue.publish(entry)
                    subscription.sync_metrics()
        if published:
            self._deltas_published.inc(published)

    def observe_delivery(self, seconds: float) -> None:
        self._delivery_hist.observe(seconds)

    # -- the SSE shim ----------------------------------------------------------------

    async def _serve_sse(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Answer ``GET /subscribe?sql=…[&name=…]`` with an event stream."""
        try:
            while True:  # drain request headers
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        try:
            target = request_line.split()[1].decode("utf-8", "replace")
        except IndexError:
            target = "/"
        parsed = urllib.parse.urlsplit(target)
        params = urllib.parse.parse_qs(parsed.query)
        sql = (params.get("sql") or [""])[0]
        name = (params.get("name") or ["sse"])[0]
        if parsed.path != "/subscribe" or not sql.strip():
            writer.write(
                sse_error_response(
                    "400 Bad Request", "expected GET /subscribe?sql=SELECT..."
                )
            )
            await _close_quietly(writer)
            return
        self._client_seq += 1
        self._sse_clients += 1
        shim = _SSESession(f"sse{self._client_seq}")
        try:
            subscription = self.subscribe(shim, sql, name)
        except (AdmissionError, SerenaError) as exc:
            self._sse_clients -= 1
            writer.write(sse_error_response("409 Conflict", str(exc)))
            await _close_quietly(writer)
            return
        self._sync_gauges()
        try:
            writer.write(sse_response_head())
            writer.write(
                sse_event(
                    {
                        "type": "hello",
                        "server": "serena",
                        "instant": self.pems.clock.now,
                        "client": shim.client_id,
                    }
                )
            )
            await writer.drain()
            while True:
                entry = await subscription.queue.get()
                if entry is None:
                    break
                # Same batching as the JSONL pump: whatever else is
                # already pending goes out in the same writelines.
                batch = [entry, *subscription.queue.drain_ready()]
                writer.writelines(
                    sse_event(ClientSession._delta_message(subscription, e))
                    for e in batch
                )
                await writer.drain()
                now = time.perf_counter()
                for queued in batch:
                    if queued.published_at:
                        self.observe_delivery(now - queued.published_at)
                self.messages_sent.inc(len(batch))
                subscription.sync_metrics()
        except (ConnectionError, OSError):
            pass
        finally:
            self.unsubscribe(subscription)
            self._sse_clients -= 1
            self._sync_gauges()
            await _close_quietly(writer)

    # -- introspection ----------------------------------------------------------------

    def _sync_gauges(self) -> None:
        self._clients_gauge.set(self._connected())
        self._queries_gauge.set(len(self._queries))
        self._subscriptions_gauge.set(
            sum(len(q.subscribers) for q in self._queries.values())
        )

    @property
    def queries(self) -> dict[str, ServerQuery]:
        return dict(self._queries)

    def summary(self) -> dict:
        """The ``.serve`` status payload."""
        return {
            "instant": self.pems.clock.now,
            "port": self.port,
            "clients": self._connected(),
            "queries": len(self._queries),
            "subscriptions": sum(
                len(q.subscribers) for q in self._queries.values()
            ),
            "deltas_published": int(self._deltas_published.value),
            "messages_sent": int(self.messages_sent.value),
        }

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"port={self.port}"
        return (
            f"SubscriptionServer({state}, "
            f"clients={self._connected()}, queries={len(self._queries)})"
        )


class _SSESession:
    """The minimal session shape ``subscribe`` needs for an SSE client."""

    __slots__ = ("client_id", "subscriptions")

    def __init__(self, client_id: str):
        self.client_id = client_id
        self.subscriptions: dict[str, Subscription] = {}


class _NullContextType:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_CONTEXT = _NullContextType()


async def _close_quietly(writer: asyncio.StreamWriter) -> None:
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        pass
    writer.close()
    try:
        # Bounded: ``wait_closed`` can hang on an abruptly-aborted peer
        # (observed with a killed SSE client on CPython 3.11 streams).
        await asyncio.wait_for(writer.wait_closed(), 1.0)
    except (ConnectionError, OSError, asyncio.TimeoutError):
        pass
