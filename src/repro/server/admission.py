"""Admission control: bounding what one server instance accepts.

Three independent caps, each a hard reject (the client gets an
``error`` message and, for connection admission, the socket closes):

* ``max_clients`` — concurrent connections (TCP and SSE alike);
* ``max_queries_per_client`` — subscriptions held by one connection;
* ``max_total_queries`` — *distinct* continuous queries registered on
  the wrapped PEMS across all clients.  Shared subscriptions (same
  normalized SQL) count once — admission bounds the tick-loop load,
  and the shared registry evaluates each distinct query once per tick
  regardless of its subscriber count.

Rejections are counted on the obs registry by reason
(``serena_server_admission_rejected_total{reason=…}``), so a saturated
server is visible in ``.metrics`` without log archaeology.
"""

from __future__ import annotations

from repro.errors import SerenaError
from repro.obs.observe import Observability

__all__ = ["AdmissionControl", "AdmissionError"]


class AdmissionError(SerenaError):
    """A registration or connection rejected by admission control."""

    def __init__(self, reason: str, detail: str):
        super().__init__(detail)
        self.reason = reason


class AdmissionControl:
    """Caps on clients, per-client subscriptions and total queries."""

    def __init__(
        self,
        max_clients: int = 2048,
        max_queries_per_client: int = 32,
        max_total_queries: int = 512,
        observe: "Observability | str | None" = None,
    ):
        self.max_clients = max_clients
        self.max_queries_per_client = max_queries_per_client
        self.max_total_queries = max_total_queries
        self.obs = Observability.coerce(observe)
        self._rejected = {
            reason: self.obs.metrics.counter(
                "serena_server_admission_rejected_total",
                "Connections/registrations rejected by admission control",
                reason=reason,
            )
            for reason in ("clients", "client_queries", "total_queries")
        }

    def _reject(self, reason: str, detail: str) -> None:
        self._rejected[reason].inc()
        raise AdmissionError(reason, detail)

    def admit_client(self, connected: int) -> None:
        """Gate a new connection given the current connection count."""
        if connected >= self.max_clients:
            self._reject(
                "clients",
                f"server full: {self.max_clients} clients connected",
            )

    def admit_subscription(
        self, client_subscriptions: int, distinct_queries: int, shared: bool
    ) -> None:
        """Gate one ``register`` op.  ``shared`` marks a subscription
        joining an already-registered query (no new tick-loop load)."""
        if client_subscriptions >= self.max_queries_per_client:
            self._reject(
                "client_queries",
                f"client limit reached: {self.max_queries_per_client} "
                "subscriptions on this connection",
            )
        if not shared and distinct_queries >= self.max_total_queries:
            self._reject(
                "total_queries",
                f"registry full: {self.max_total_queries} distinct "
                "continuous queries registered",
            )

    def rejected(self, reason: str) -> int:
        return int(self._rejected[reason].value)

    def __repr__(self) -> str:
        return (
            f"AdmissionControl(clients<={self.max_clients}, "
            f"per-client<={self.max_queries_per_client}, "
            f"total<={self.max_total_queries})"
        )
