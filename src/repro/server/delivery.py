"""Bounded per-subscription delivery queues with coalesce-on-overflow.

The tick loop publishes one :class:`QueuedDelta` per instant per
subscription — synchronously, O(1), never blocking.  A consumer task
awaits entries and writes them to the socket; when the consumer is
slower than the clock, the queue fills and *overflow coalesces*: the two
oldest pending entries merge into one via the two-delta ``coalesce``,
spanning ``[older.first, newer.last]``.  Coalescing always evicts from
the old end, so the freshest instants keep their full resolution and the
slow consumer loses only intermediate states — by the coalesce laws
(``tests/property/test_prop_coalesce.py``), applying the merged entry
lands the client replica exactly where applying both originals would
have, so final state is lossless at any consumer speed.

A merge that nets to the empty delta (churn that cancelled out) drops
the entry entirely; the ``dropped`` counter records it, and the next
delivered entry's ``first`` still documents the skipped span.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass

from repro.exec.delta import Delta

__all__ = ["DeliveryQueue", "QueuedDelta"]


@dataclass(frozen=True)
class QueuedDelta:
    """One pending wire delta spanning instants ``[first, last]``."""

    first: int
    last: int
    delta: Delta
    #: Merges folded into this entry (0 for a fresh per-instant delta).
    coalesced: int = 0
    #: Publish wall-time of the *oldest* instant folded in (delivery-lag
    #: measurements want worst-case age, so merges keep the older stamp).
    published_at: float = 0.0

    def merge(self, newer: "QueuedDelta") -> "QueuedDelta":
        return QueuedDelta(
            self.first,
            newer.last,
            self.delta.coalesce(newer.delta),
            self.coalesced + newer.coalesced + 1,
            self.published_at,
        )


class DeliveryQueue:
    """A bounded FIFO of :class:`QueuedDelta` for one subscription."""

    def __init__(self, depth: int = 64):
        if depth < 2:
            raise ValueError("delivery queue depth must be at least 2")
        self.depth = depth
        self._entries: deque[QueuedDelta] = deque()
        self._ready = asyncio.Event()
        self._closed = False
        self.published = 0
        self.delivered = 0
        self.coalesced = 0
        self.dropped = 0

    # -- producer side (the tick loop; synchronous, non-blocking) -----------------

    def publish(self, entry: QueuedDelta) -> None:
        """Append one entry, coalescing the two oldest on overflow."""
        if self._closed:
            return
        entries = self._entries
        entries.append(entry)
        self.published += 1
        if len(entries) > self.depth:
            older = entries.popleft()
            newer = entries.popleft()
            merged = older.merge(newer)
            self.coalesced += 1
            if merged.delta:
                entries.appendleft(merged)
            else:
                self.dropped += 1  # the span netted to no change
        self._ready.set()

    def close(self) -> None:
        """Stop the queue: pending entries still drain, then consumers
        get ``None`` (idempotent)."""
        self._closed = True
        self._ready.set()

    # -- consumer side (one writer task per subscription) -------------------------

    async def get(self) -> QueuedDelta | None:
        """The next entry, or ``None`` once closed and drained."""
        while True:
            if self._entries:
                entry = self._entries.popleft()
                self.delivered += 1
                if not self._entries and not self._closed:
                    self._ready.clear()
                return entry
            if self._closed:
                return None
            self._ready.clear()
            await self._ready.wait()

    def drain_ready(self) -> list["QueuedDelta"]:
        """Every entry pending *right now*, in FIFO order (possibly
        empty), without awaiting.  A writer that just awaited
        :meth:`get` calls this to collect the rest of the backlog and
        turn the whole batch into one ``writelines`` — one syscall per
        socket per tick instead of one per entry."""
        entries = self._entries
        batch = list(entries)
        entries.clear()
        self.delivered += len(batch)
        if not self._closed:
            self._ready.clear()
        return batch

    # -- introspection -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def lag(self) -> int:
        """Entries currently pending (the consumer's backlog)."""
        return len(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"DeliveryQueue({self.lag}/{self.depth} pending, "
            f"{self.delivered} delivered, {self.coalesced} coalesced, "
            f"{self.dropped} dropped)"
        )
