"""One connected client: the reader loop and per-subscription pumps.

A :class:`ClientSession` owns one TCP connection speaking the JSONL
protocol.  Its ``run`` loop parses one operation per line; each
subscription it registers gets its own *pump* task that awaits the
subscription's delivery queue and writes ``delta`` messages to the
socket.  Backpressure composes naturally: a slow socket blocks only its
own session's ``drain()``, the pump stops consuming, the bounded queue
fills, and overflow coalescing kicks in — the tick loop never waits.

Errors are per-operation: a malformed line, a rejected registration or a
bad query produces an ``error`` message and the session lives on; only
EOF, ``quit`` or a transport failure end it.
"""

from __future__ import annotations

import asyncio
import time
from typing import TYPE_CHECKING

from repro.errors import SerenaError
from repro.server.admission import AdmissionError
from repro.server.delivery import DeliveryQueue, QueuedDelta
from repro.server.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    render_rows,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.service import ServerQuery, SubscriptionServer

__all__ = ["ClientSession", "Subscription"]


class Subscription:
    """One (client, continuous query) pairing with its delivery queue."""

    __slots__ = (
        "name",
        "query",
        "queue",
        "client_id",
        "task",
        "_lag_gauge",
        "_coalesced_counter",
        "_dropped_counter",
        "_synced_coalesced",
        "_synced_dropped",
    )

    def __init__(
        self,
        name: str,
        query: "ServerQuery",
        queue: DeliveryQueue,
        client_id: str,
        metrics,
    ):
        self.name = name
        self.query = query
        self.queue = queue
        self.client_id = client_id
        self.task: asyncio.Task | None = None
        self._lag_gauge = metrics.gauge(
            "serena_server_lag",
            "Pending delivery-queue entries per subscription",
            client=client_id,
            sub=name,
        )
        self._coalesced_counter = metrics.counter(
            "serena_server_coalesced_total",
            "Overflow merges per subscription",
            client=client_id,
            sub=name,
        )
        self._dropped_counter = metrics.counter(
            "serena_server_dropped_total",
            "Net-zero coalesced spans dropped per subscription",
            client=client_id,
            sub=name,
        )
        self._synced_coalesced = 0
        self._synced_dropped = 0

    def sync_metrics(self) -> None:
        """Mirror the queue's counters onto the obs registry."""
        queue = self.queue
        self._lag_gauge.set(queue.lag)
        if queue.coalesced > self._synced_coalesced:
            self._coalesced_counter.inc(
                queue.coalesced - self._synced_coalesced
            )
            self._synced_coalesced = queue.coalesced
        if queue.dropped > self._synced_dropped:
            self._dropped_counter.inc(queue.dropped - self._synced_dropped)
            self._synced_dropped = queue.dropped


class ClientSession:
    """The JSONL protocol endpoint for one connection."""

    def __init__(
        self,
        server: "SubscriptionServer",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        client_id: str,
    ):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.client_id = client_id
        self.subscriptions: dict[str, Subscription] = {}
        self._quitting = False
        self._write_lock = asyncio.Lock()

    # -- outbound ----------------------------------------------------------------

    async def send(self, message: dict) -> None:
        async with self._write_lock:
            self.writer.write(encode(message))
            await self.writer.drain()

    async def send_batch(self, messages: list[dict]) -> None:
        """All of ``messages``, in order, as one ``writelines`` and one
        drain — the per-tick batching of the delivery pumps."""
        async with self._write_lock:
            self.writer.writelines(encode(message) for message in messages)
            await self.writer.drain()

    async def _send_error(self, reason: str, detail: str) -> None:
        await self.send(
            {"type": "error", "reason": reason, "detail": detail}
        )

    # -- the reader loop ---------------------------------------------------------

    async def run(self, first_line: bytes | None = None) -> None:
        server = self.server
        await self.send(
            {
                "type": "hello",
                "server": "serena",
                "instant": server.pems.clock.now,
                "client": self.client_id,
                "max_queries": server.admission.max_queries_per_client,
            }
        )
        try:
            line = first_line
            while not self._quitting:
                if line is None:
                    line = await self.reader.readline()
                if not line:
                    break
                if len(line) > MAX_LINE_BYTES:
                    await self._send_error("protocol", "line too long")
                    break
                try:
                    await self._handle(decode_line(line))
                except ProtocolError as exc:
                    await self._send_error("protocol", str(exc))
                except AdmissionError as exc:
                    await self._send_error(exc.reason, str(exc))
                except SerenaError as exc:
                    await self._send_error("query", str(exc))
                line = None
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            await self.close()

    async def _handle(self, message: dict) -> None:
        op = message["op"]
        if op == "register":
            await self._op_register(message)
        elif op == "deregister":
            await self._op_deregister(message)
        elif op == "ping":
            await self.send(
                {"type": "pong", "instant": self.server.pems.clock.now}
            )
        elif op == "quit":
            self._quitting = True
            await self.send({"type": "bye"})
        else:
            raise ProtocolError(f"unsupported op {op!r}")

    async def _op_register(self, message: dict) -> None:
        sql = message.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            raise ProtocolError("register needs a non-empty 'sql' string")
        name = message.get("name") or f"q{len(self.subscriptions) + 1}"
        if not isinstance(name, str):
            raise ProtocolError("'name' must be a string")
        if name in self.subscriptions:
            raise ProtocolError(f"subscription {name!r} already exists")
        subscription = self.server.subscribe(self, sql, name)
        self.subscriptions[name] = subscription
        subscription.task = asyncio.ensure_future(self._pump(subscription))
        await self.send(
            {
                "type": "registered",
                "name": name,
                "sql": subscription.query.sql,
                "instant": self.server.pems.clock.now,
            }
        )

    async def _op_deregister(self, message: dict) -> None:
        name = message.get("name")
        subscription = self.subscriptions.get(name)
        if subscription is None:
            raise ProtocolError(f"no subscription named {name!r}")
        del self.subscriptions[name]
        self.server.unsubscribe(subscription)
        await self.send({"type": "deregistered", "name": name})

    # -- the delivery pump (one task per subscription) ----------------------------

    async def _pump(self, subscription: Subscription) -> None:
        server = self.server
        queue = subscription.queue
        try:
            while True:
                entry = await queue.get()
                if entry is None:
                    break
                # Everything else already pending rides the same
                # writelines: one syscall per socket per tick, FIFO
                # order (and so delivery order) unchanged.
                batch = [entry, *queue.drain_ready()]
                await self.send_batch(
                    [self._delta_message(subscription, e) for e in batch]
                )
                now = time.perf_counter()
                for queued in batch:
                    if queued.published_at:
                        server.observe_delivery(now - queued.published_at)
                server.messages_sent.inc(len(batch))
                subscription.sync_metrics()
        except (ConnectionError, asyncio.CancelledError):
            pass

    @staticmethod
    def _delta_message(
        subscription: Subscription, entry: QueuedDelta
    ) -> dict:
        return {
            "type": "delta",
            "name": subscription.name,
            "first": entry.first,
            "last": entry.last,
            "inserted": render_rows(entry.delta.inserted),
            "deleted": render_rows(entry.delta.deleted),
            "coalesced": entry.coalesced,
        }

    # -- teardown ----------------------------------------------------------------

    async def close(self) -> None:
        pending = list(self.subscriptions.values())
        self.subscriptions.clear()
        for subscription in pending:
            self.server.unsubscribe(subscription)
        # Unsubscribing closed the queues; pumps flush what's pending and
        # exit on the ``None`` sentinel (or on the dying transport).
        tasks = [s.task for s in pending if s.task is not None]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self.server.forget_session(self)
        writer = self.writer
        writer.close()
        try:
            # Bounded for the same reason as the server's _close_quietly:
            # an aborted peer can leave wait_closed pending forever.
            await asyncio.wait_for(writer.wait_closed(), 1.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass

    def __repr__(self) -> str:
        return (
            f"ClientSession({self.client_id}, "
            f"{len(self.subscriptions)} subscriptions)"
        )
