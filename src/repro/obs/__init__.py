"""Observability for PEMS: metrics, tick tracing, EXPLAIN ANALYZE.

Zero-dependency instrumentation of the pervasive environment (DESIGN.md
§9): a :class:`~repro.obs.metrics.MetricsRegistry` of counters, gauges and
fixed-bucket histograms with Prometheus/JSON export; a
:class:`~repro.obs.trace.TickTracer` recording structured spans of the
tick cycle; the :class:`~repro.obs.observe.Observability` facade behind
the ``PEMS(observe=...)`` knob; and the EXPLAIN ANALYZE renderers of
:mod:`repro.obs.analyze`.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.observe import OBSERVE_MODES, Observability
from repro.obs.trace import NullTracer, Span, TickTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Observability",
    "OBSERVE_MODES",
    "NullTracer",
    "Span",
    "TickTracer",
]
