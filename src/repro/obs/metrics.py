"""A zero-dependency metrics registry: counters, gauges, histograms.

The paper's evaluation (Section 5) argues for the algebra by *measuring*
the running PEMS — invocation counts saved by rewritings, per-tick
latencies, discovery churn.  This module gives the reproduction one
always-on model for those measurements:

* every instrument is addressed by a ``(name, labels)`` pair, exactly like
  the Prometheus data model, and created lazily on first use;
* hot paths hold a direct reference to the instrument (``counter(...)``
  returns the same object for the same address), so recording a sample is
  one attribute addition — cheap enough to leave enabled in production;
* :meth:`MetricsRegistry.to_prometheus` renders the whole registry in the
  Prometheus text exposition format (with label escaping), and
  :meth:`MetricsRegistry.snapshot` as a plain JSON-serializable dict.

Naming scheme (DESIGN.md §9): every metric is prefixed ``serena_``,
counters end in ``_total``, time is measured in seconds (``_seconds``),
and label names are lowercase snake_case.
"""

from __future__ import annotations

import re
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Ewma",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TICK_BUCKETS",
]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds) for per-tick histograms: 50µs to ~5s,
#: roughly ×3 apart — tick costs span naive-engine milliseconds down to
#: carried-forward microseconds.
DEFAULT_TICK_BUCKETS = (
    0.00005,
    0.0002,
    0.0005,
    0.002,
    0.005,
    0.02,
    0.05,
    0.2,
    0.5,
    2.0,
    5.0,
)

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


class Counter:
    """A monotonically increasing count (resettable only for test shims)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        """Zero the counter.  Exists for the legacy ad-hoc counters that
        exposed a reset (e.g. ``ServiceRegistry.reset_invocation_count``);
        new code should read deltas instead."""
        self.value = 0


class Gauge:
    """A value that can go up and down (sizes, refcounts, states)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey):
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram (cumulative buckets, Prometheus-style).

    ``buckets`` are the inclusive upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the rest.  ``observe`` costs one
    linear scan over the (small, fixed) bucket list plus three additions.
    """

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey, buckets: tuple[float, ...]):
        if not buckets or any(
            b >= c for b, c in zip(buckets, buckets[1:])
        ):
            raise ValueError(
                f"histogram {name!r}: buckets must be non-empty and "
                f"strictly increasing, got {buckets!r}"
            )
        self.name = name
        self.labels = labels
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, fraction: float) -> float:
        """Bucket-resolution quantile estimate: the upper bound of the
        bucket containing the requested rank (``inf`` if it lands in the
        overflow bucket)."""
        if not self.count:
            return 0.0
        rank = fraction * self.count
        seen = 0
        for i, bound in enumerate(self.buckets):
            seen += self.counts[i]
            if seen >= rank:
                return bound
        return float("inf")


class Ewma:
    """Exponentially-weighted moving average of a stream of samples.

    Used for per-service invocation-latency tracking on the substitution
    scoring path: an EWMA keeps one float of state per series (no bucket
    list), forgets stale behaviour geometrically, and reads in O(1).  The
    first sample seeds the average directly so cold services are scored
    by their actual first observation, not by a decay from zero.
    """

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float = 0.2):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"ewma alpha must be in (0, 1], got {alpha!r}")
        self.alpha = alpha
        self.value = 0.0
        self.count = 0

    def observe(self, sample: float) -> float:
        if self.count == 0:
            self.value = float(sample)
        else:
            self.value += self.alpha * (sample - self.value)
        self.count += 1
        return self.value


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """All instruments of one observability domain, by ``(name, labels)``.

    One registry per PEMS (the :class:`~repro.obs.observe.Observability`
    facade owns it); standalone components create a private one.  A metric
    *family* (the name) has a single kind and help string; instruments are
    the labeled children.  Re-requesting an address returns the cached
    instrument, so callers keep direct references on hot paths.
    """

    def __init__(self):
        self._instruments: dict[tuple[str, LabelKey], Instrument] = {}
        #: name -> (kind, help, buckets-or-None)
        self._families: dict[str, tuple[str, str, tuple[float, ...] | None]] = {}

    # -- instrument access -------------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        buckets: tuple[float, ...] | None,
    ) -> None:
        known = self._families.get(name)
        if known is None:
            if not _METRIC_NAME.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            self._families[name] = (kind, help, buckets)
            return
        if known[0] != kind:
            raise ValueError(
                f"metric {name!r} is a {known[0]}, requested as {kind}"
            )

    def _instrument(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Mapping[str, object],
        buckets: tuple[float, ...] | None = None,
    ) -> Instrument:
        key = _label_key(labels)
        address = (name, key)
        existing = self._instruments.get(address)
        if existing is not None:
            self._family(name, kind, help, buckets)
            return existing
        self._family(name, kind, help, buckets)
        for label in labels:
            if not _LABEL_NAME.match(label):
                raise ValueError(f"invalid label name {label!r} on {name!r}")
        if kind == "counter":
            instrument: Instrument = Counter(name, key)
        elif kind == "gauge":
            instrument = Gauge(name, key)
        else:
            family_buckets = self._families[name][2]
            if family_buckets is None:
                family_buckets = DEFAULT_TICK_BUCKETS
            instrument = Histogram(name, key, family_buckets)
        self._instruments[address] = instrument
        return instrument

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        """Get or create the counter addressed by ``(name, labels)``."""
        return self._instrument(name, "counter", help, labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        """Get or create the gauge addressed by ``(name, labels)``."""
        return self._instrument(name, "gauge", help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: object,
    ) -> Histogram:
        """Get or create the histogram addressed by ``(name, labels)``.

        ``buckets`` is fixed per family at first creation; later callers
        inherit it.
        """
        return self._instrument(name, "histogram", help, labels, buckets)  # type: ignore[return-value]

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def get(
        self, name: str, **labels: object
    ) -> Instrument | None:
        """The instrument at ``(name, labels)``, or None (tests, shims)."""
        return self._instruments.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0, **labels: object) -> float:
        """The current value of a counter/gauge (``default`` if absent)."""
        instrument = self._instruments.get((name, _label_key(labels)))
        if instrument is None or isinstance(instrument, Histogram):
            return default
        return instrument.value

    def family_total(self, name: str) -> float:
        """Sum of a counter/gauge family's values across all label sets."""
        return sum(
            i.value
            for (n, _), i in self._instruments.items()
            if n == name and not isinstance(i, Histogram)
        )

    # -- export ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain JSON-serializable view of every instrument."""
        out: dict = {}
        for (name, key), instrument in sorted(self._instruments.items()):
            family = out.setdefault(
                name,
                {"kind": instrument.kind, "help": self._families[name][1], "series": []},
            )
            series: dict = {"labels": dict(key)}
            if isinstance(instrument, Histogram):
                series["count"] = instrument.count
                series["sum"] = instrument.sum
                series["buckets"] = {
                    _format_value(b): c
                    for b, c in zip(
                        tuple(instrument.buckets) + (float("inf"),),
                        _cumulate(instrument.counts),
                    )
                }
            else:
                series["value"] = instrument.value
            family["series"].append(series)
        return out

    def to_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format."""
        lines: list[str] = []
        by_family: dict[str, list[Instrument]] = {}
        for (name, _), instrument in sorted(self._instruments.items()):
            by_family.setdefault(name, []).append(instrument)
        for name, instruments in by_family.items():
            kind, help, _ = self._families[name]
            if help:
                lines.append(f"# HELP {name} {help}")
            lines.append(f"# TYPE {name} {kind}")
            for instrument in instruments:
                if isinstance(instrument, Histogram):
                    cumulative = _cumulate(instrument.counts)
                    bounds = tuple(instrument.buckets) + (float("inf"),)
                    for bound, count in zip(bounds, cumulative):
                        labels = _render_labels(
                            instrument.labels, (("le", _format_value(bound)),)
                        )
                        lines.append(f"{name}_bucket{labels} {count}")
                    suffix = _render_labels(instrument.labels)
                    lines.append(f"{name}_sum{suffix} {_format_value(instrument.sum)}")
                    lines.append(f"{name}_count{suffix} {instrument.count}")
                else:
                    labels = _render_labels(instrument.labels)
                    lines.append(
                        f"{name}{labels} {_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")


def _cumulate(counts: list[int]) -> list[int]:
    out = []
    total = 0
    for c in counts:
        total += c
        out.append(total)
    return out
