"""The observability facade: one knob, one registry, one tracer.

Every instrumented PEMS component holds an :class:`Observability` and
records through it.  Three modes (the ``PEMS(observe=...)`` knob):

* ``"off"`` — the disabled baseline: the metrics registry still exists
  (the migrated legacy counters — invocation counts, memo hits, dropped
  announcements — are backed by it and stay correct), but no timing, no
  gauges, no labeled outcome series, and a :class:`NullTracer`;
* ``"metrics"`` (the default) — always-on production observability:
  per-tick latency histograms, evaluation/skip/failure counters,
  discovery and health-transition series, service/query gauges;
* ``"full"`` — metrics plus :class:`~repro.obs.trace.TickTracer` spans
  for every tick, scheduler decision, query evaluation, executor delta
  and service invocation.

Observation never changes behaviour: instrumentation only reads engine
state, and a differential test pins 55-tick results byte-identical across
modes on all three engines (tests/obs/test_observe_differential.py).
"""

from __future__ import annotations

from collections import deque

from repro.obs.metrics import DEFAULT_TICK_BUCKETS, MetricsRegistry
from repro.obs.trace import TRACE_CAPACITY, NullTracer, TickTracer

__all__ = ["Observability", "OBSERVE_MODES"]

OBSERVE_MODES = ("off", "metrics", "full")

#: Recent per-tick wall-clock samples retained for exact percentiles
#: (histograms are bucketed); benchmarks read these instead of keeping
#: private timers.
TICK_SAMPLE_CAPACITY = 8192


class Observability:
    """Shared observability state of one PEMS (or one component)."""

    def __init__(
        self,
        mode: str = "metrics",
        trace_capacity: int = TRACE_CAPACITY,
        tick_sample_capacity: int = TICK_SAMPLE_CAPACITY,
    ):
        if mode not in OBSERVE_MODES:
            raise ValueError(
                f"unknown observe mode {mode!r} (expected one of "
                f"{', '.join(OBSERVE_MODES)})"
            )
        self.mode = mode
        self.metrics = MetricsRegistry()
        #: True when engine-level metrics (timing, gauges, outcome labels)
        #: are recorded; the migrated legacy counters record regardless.
        self.metrics_on = mode != "off"
        #: True when spans are recorded.
        self.tracing_on = mode == "full"
        self.tracer: TickTracer | NullTracer = (
            TickTracer(trace_capacity) if self.tracing_on else NullTracer()
        )
        #: Recent per-tick durations in seconds (exact, bounded).
        self.tick_samples: deque[float] = deque(maxlen=tick_sample_capacity)
        #: Total tick samples ever recorded (detects ring overflow).
        self.tick_samples_total = 0
        self._tick_seconds = self.metrics.histogram(
            "serena_tick_seconds",
            "Wall-clock cost of one full environment tick",
            buckets=DEFAULT_TICK_BUCKETS,
        )
        self._ticks_total = self.metrics.counter(
            "serena_ticks_total", "Environment ticks driven through PEMS"
        )

    @classmethod
    def disabled(cls) -> "Observability":
        """The off-mode facade standalone components default to."""
        return cls(mode="off")

    @classmethod
    def coerce(cls, value: "Observability | str | None") -> "Observability":
        """Normalize the ``observe=`` knob: an instance passes through, a
        mode string builds a fresh facade, None means the default mode."""
        if isinstance(value, Observability):
            return value
        if value is None:
            return cls()
        return cls(mode=value)

    # -- recording helpers --------------------------------------------------------

    def record_tick(self, seconds: float) -> None:
        """One full environment tick took ``seconds`` (metrics mode+)."""
        self._ticks_total.inc()
        self._tick_seconds.observe(seconds)
        self.tick_samples.append(seconds)
        self.tick_samples_total += 1

    # -- export -------------------------------------------------------------------

    def to_prometheus(self) -> str:
        return self.metrics.to_prometheus()

    def snapshot(self) -> dict:
        """JSON view: mode, metrics, and trace statistics."""
        return {
            "mode": self.mode,
            "metrics": self.metrics.snapshot(),
            "trace": {
                "enabled": self.tracer.enabled,
                "recorded": self.tracer.recorded,
                "retained": len(self.tracer),
                "dropped": self.tracer.dropped,
            },
        }

    def __repr__(self) -> str:
        return (
            f"Observability(mode={self.mode!r}, "
            f"{len(self.metrics)} instruments, {len(self.tracer)} spans)"
        )
