"""EXPLAIN ANALYZE: the lowered physical plan annotated with run stats.

Two views over a continuous query's physical plan:

* :func:`analyze_rows` — structured per-executor rows (one dict per
  physical node, depth-first): operator symbol, executor class,
  shared/private status (with the shared entry's refcount), cumulative
  input/output delta cardinalities, rows scanned, invocation outcome
  counts (issued vs. memo-hit vs. fast-failed vs. device failure) and the
  current parked/pending tuple counts;
* :func:`render_analyze` — the human-readable indented tree the CLI's
  ``.analyze`` command (and ``lang/printer.explain_analyze``) prints.

The stats come from the always-on :class:`~repro.exec.executors.ExecStats`
counters every executor maintains — EXPLAIN ANALYZE is a pure read and
never perturbs the plan.  Under sharing the physical plan is a DAG: an
executor reached through a second parent is rendered once, with a
back-reference marker.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily at runtime (exec layers on obs)
    from repro.continuous.continuous_query import ContinuousQuery
    from repro.exec.executors import Executor
    from repro.exec.shared import SharedPlanRegistry

__all__ = [
    "analyze_rows",
    "render_analyze",
    "render_federated",
    "render_physical",
]


def _shared_index(registry: "SharedPlanRegistry | None") -> dict[int, int]:
    """id(executor) → refcount for every live shared entry."""
    if registry is None:
        return {}
    return {
        id(entry.executor): entry.refcount
        for entry in registry._entries.values()
    }


def _executor_registry(continuous: "ContinuousQuery"):
    engine = getattr(continuous, "_engine", None)
    if engine is None:
        return None, None
    root = getattr(engine, "root", None)
    registry = getattr(engine, "registry", None)
    return root, registry


def analyze_rows(continuous: "ContinuousQuery") -> list[dict]:
    """Per-executor stat rows of a registered continuous query's plan
    (empty on the naive engine, which has no physical plan)."""
    from repro.exec.executors import (
        InvocationExec,
        ScanExec,
        StreamingInvocationExec,
    )

    root, registry = _executor_registry(continuous)
    if root is None:
        return []
    shared = _shared_index(registry)
    rows: list[dict] = []
    seen: dict[int, int] = {}

    def visit(executor: "Executor", depth: int) -> None:
        key = id(executor)
        if key in seen:
            rows.append(
                {
                    "depth": depth,
                    "operator": executor.node.symbol(),
                    "executor": type(executor).__name__,
                    "backend": executor.backend,
                    "ref": seen[key],
                    "repeat": True,
                }
            )
            return
        index = len(rows)
        seen[key] = index
        stats = executor.stats
        row: dict = {
            "depth": depth,
            "index": index,
            "operator": executor.node.symbol(),
            "executor": type(executor).__name__,
            "backend": executor.backend,
            "shared": key in shared,
            "refcount": shared.get(key),
            "ticks": stats.ticks,
            "input_inserted": stats.input_inserted,
            "input_deleted": stats.input_deleted,
            "output_inserted": stats.output_inserted,
            "output_deleted": stats.output_deleted,
            "repeat": False,
        }
        if executor.backend == "columnar":
            row["batches"] = stats.batches
            row["batch_rows"] = stats.batch_rows
        if isinstance(executor, ScanExec):
            row["rows_scanned"] = stats.rows_scanned
        if isinstance(executor, (InvocationExec, StreamingInvocationExec)):
            row["invocations"] = stats.invocations
            row["memo_hits"] = stats.memo_hits
            row["fast_failed"] = stats.fast_failures
            row["failures"] = stats.failures
        if isinstance(executor, InvocationExec):
            row["parked"] = len(executor._parked)
            row["pending"] = len(executor._pending)
        rows.append(row)
        for child in executor.children:
            visit(child, depth + 1)

    visit(root, 0)
    return rows


def _format_row(row: dict) -> str:
    indent = "  " * row["depth"]
    if row.get("repeat"):
        return (
            f"{indent}{row['operator']}  [{row['executor']}/{row['backend']}]"
            f"  (shared node — see #{row['ref']})"
        )
    status = (
        f"shared(refs={row['refcount']})" if row["shared"] else "private"
    )
    parts = [
        f"{indent}#{row['index']} {row['operator']}"
        f"  [{row['executor']}/{row['backend']}]  {status}",
        f"ticks={row['ticks']}",
        f"in Δ+{row['input_inserted']}/-{row['input_deleted']}",
        f"out Δ+{row['output_inserted']}/-{row['output_deleted']}",
    ]
    if "batches" in row:
        parts.append(f"batches={row['batches']} batch-rows={row['batch_rows']}")
    if "rows_scanned" in row:
        parts.append(f"scanned={row['rows_scanned']}")
    if "invocations" in row:
        parts.append(
            "invoked={invocations} memo-hit={memo_hits} "
            "fast-failed={fast_failed} failed={failures}".format(**row)
        )
    if "parked" in row:
        parts.append(f"parked={row['parked']} pending={row['pending']}")
    return "  ".join(parts)


def render_analyze(continuous: "ContinuousQuery") -> str:
    """EXPLAIN ANALYZE text for one registered continuous query."""
    rows = analyze_rows(continuous)
    if not rows:
        return (
            "(no physical plan — the naive engine re-evaluates the logical "
            "tree; register with engine='incremental' or 'shared')"
        )
    header = [
        f"EXPLAIN ANALYZE {continuous.query.name or '(unnamed query)'}"
        f"  engine={continuous.engine}  last instant="
        f"{continuous._last_instant if continuous._last_instant >= 0 else '(never)'}"
    ]
    summary = continuous.sharing_summary
    if summary is not None:
        header.append(
            f"plan {summary['fingerprint']}: {summary['executors']} executors, "
            f"{summary['shared']} shared / {summary['private']} private"
        )
    return "\n".join(header + [_format_row(row) for row in rows])


def render_physical(
    plan,
    registry: "SharedPlanRegistry | None" = None,
    backend: str | None = None,
) -> str:
    """The lowered physical plan of a (not yet registered) logical plan:
    executor classes and backends plus shared/private markers against
    ``registry``.

    The plan is canonicalized (Table 5 normal form — what the shared
    engine executes) and lowered privately to ``backend`` (defaulting to
    the registry's backend, or "row"); a subtree is marked shared when
    the registry currently holds a live entry for it, i.e. a registered
    query is already running that exact subplan.
    """
    from repro.algebra.fingerprint import canonical_plan
    from repro.exec.lowering import lower

    if backend is None:
        backend = registry.backend if registry is not None else "row"
    canonical = canonical_plan(plan)
    root = lower(canonical, backend=backend)
    entries = registry._entries if registry is not None else {}
    lines: list[str] = []
    seen: set[int] = set()

    def visit(executor: "Executor", depth: int) -> None:
        indent = "  " * depth
        label = f"[{type(executor).__name__}/{executor.backend}]"
        if id(executor) in seen:
            lines.append(
                f"{indent}{executor.node.symbol()}  {label}"
                "  (shared node above)"
            )
            return
        seen.add(id(executor))
        entry = entries.get(executor.node)
        status = (
            f"shared(refs={entry.refcount})" if entry is not None else "private"
        )
        lines.append(
            f"{indent}{executor.node.symbol()}  {label}  {status}"
        )
        for child in executor.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def render_federated(plan, registry) -> str:
    """The federated execution plan of a logical query: which subtrees
    scatter to which zone shards, and which nodes stay at the
    coordinator.

    ``registry`` must be a
    :class:`~repro.fed.registry.FederatedPlanRegistry`; the plan is
    canonicalized first (what the federation actually scatters).  A
    scattered subtree shows its routed zones — ``(pruned)`` when a
    partition-attribute pin routed it to fewer zones than the federation
    has — and whether a registered query is already running it.
    """
    from repro.algebra.fingerprint import canonical_plan

    if not hasattr(registry, "_scatterable"):
        return "(not a federated PEMS — .explain federated needs zone shards)"
    canonical = canonical_plan(plan)
    lines: list[str] = []

    def visit(node, depth: int, in_shard: bool) -> None:
        indent = "  " * depth
        if not in_shard and registry._scatterable(node):
            zones = registry._route_zones(node)
            pruned = " (pruned)" if len(zones) < len(registry.zones) else ""
            entry = registry._entries.get(node)
            status = (
                f"live, refs={entry.refcount}"
                if entry is not None
                else "not registered"
            )
            lines.append(
                f"{indent}{node.symbol()}  ⇒ scatter to "
                f"[{', '.join(zones)}]{pruned}  ({status})"
            )
            for child in node.children:
                visit(child, depth + 1, True)
            return
        marker = "[shard]" if in_shard else "[coordinator]"
        lines.append(f"{indent}{node.symbol()}  {marker}")
        for child in node.children:
            visit(child, depth + 1, in_shard)

    visit(canonical, 0, False)
    return "\n".join(lines)
