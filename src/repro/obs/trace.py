"""Structured tick tracing: spans over the PEMS evaluation cycle.

A :class:`TickTracer` records *spans* — named, timed segments of one
environment tick — with parent/child links, wall-clock stamps **and** the
logical instant τ they belong to (the paper's time domain is discrete, so
every span carries both clocks).  The span taxonomy (DESIGN.md §9):

* ``tick`` — one full environment tick (PEMS.tick),
* ``queries.tick`` — the query processor's slice of the tick,
* ``scheduler.plan`` — the quiescence scheduler's affected-set decision,
* ``query.evaluate`` / ``query.carry`` — one continuous query's turn,
* ``executor.delta`` — one physical executor's delta application
  (cardinalities as attributes; emitted as zero-length child spans),
* ``service.invoke`` — one device invocation, with its outcome.

Spans live in a bounded ring buffer (old spans are dropped, never the
tick), and export as JSONL — one JSON object per line, newest last — for
offline analysis.  When tracing is disabled the engine holds a
:class:`NullTracer`, whose ``span`` returns a shared no-op context
manager: the disabled path costs one method call and no allocation.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Iterator

__all__ = ["Span", "TickTracer", "NullTracer", "TRACE_CAPACITY"]

#: Default ring-buffer capacity (spans); at ~30 spans per traced tick on
#: the §5.2 scenario this retains on the order of a hundred ticks.
TRACE_CAPACITY = 4096


class Span:
    """One recorded trace segment."""

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "instant",
        "started_at",
        "duration",
        "attributes",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        instant: int | None,
        started_at: float,
        attributes: dict,
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        #: The logical instant τ the span belongs to (None outside ticks).
        self.instant = instant
        #: Wall-clock stamp (``time.time()`` seconds).
        self.started_at = started_at
        #: Wall-clock duration in seconds; 0.0 for point events.
        self.duration = 0.0
        self.attributes = attributes

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "instant": self.instant,
            "started_at": self.started_at,
            "duration": self.duration,
            "attributes": self.attributes,
        }

    def __repr__(self) -> str:
        parent = f" parent={self.parent_id}" if self.parent_id is not None else ""
        return (
            f"<Span #{self.span_id}{parent} {self.name!r} @τ={self.instant} "
            f"{self.duration * 1000:.3f}ms {self.attributes}>"
        )


class _ActiveSpan:
    """Context manager for one open span; closes it on exit."""

    __slots__ = ("tracer", "span", "_t0")

    def __init__(self, tracer: "TickTracer", span: Span):
        self.tracer = tracer
        self.span = span
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self.tracer._stack.append(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> None:
        self.span.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.span.attributes["error"] = exc_type.__name__
        stack = self.tracer._stack
        if stack and stack[-1] is self.span:
            stack.pop()


class TickTracer:
    """Bounded recorder of the span tree, one instance per PEMS."""

    enabled = True

    def __init__(self, capacity: int = TRACE_CAPACITY):
        self._spans: deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._next_id = 1
        self.recorded = 0
        self.capacity = capacity

    # -- recording ---------------------------------------------------------------

    def _record(self, name: str, instant: int | None, attributes: dict) -> Span:
        span = Span(
            self._next_id,
            self._stack[-1].span_id if self._stack else None,
            name,
            instant,
            time.time(),
            attributes,
        )
        self._next_id += 1
        self.recorded += 1
        self._spans.append(span)
        return span

    def span(
        self, name: str, instant: int | None = None, **attributes: object
    ) -> _ActiveSpan:
        """Open a timed span: ``with tracer.span("tick", instant=τ): ...``.

        The span is parented to the innermost open span and recorded
        immediately (its duration is filled in on exit), so even a span
        that raises is retained with an ``error`` attribute.
        """
        return _ActiveSpan(self, self._record(name, instant, attributes))

    def event(
        self, name: str, instant: int | None = None, **attributes: object
    ) -> Span:
        """Record a zero-duration point event under the current span."""
        return self._record(name, instant, attributes)

    # -- reading -----------------------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """The retained spans, oldest first."""
        return list(self._spans)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring buffer."""
        return self.recorded - len(self._spans)

    def recent(self, count: int = 20) -> list[Span]:
        """The last ``count`` retained spans, oldest first."""
        if count <= 0:
            return []
        spans = self._spans
        return list(spans)[-count:]

    def for_instant(self, instant: int) -> list[Span]:
        """All retained spans stamped with logical instant ``instant``."""
        return [s for s in self._spans if s.instant == instant]

    def children(self, span: Span) -> list[Span]:
        """Retained direct children of ``span``."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def clear(self) -> None:
        self._spans.clear()
        self._stack.clear()

    # -- export ------------------------------------------------------------------

    def iter_jsonl(self) -> Iterator[str]:
        for span in self._spans:
            yield json.dumps(span.to_dict(), sort_keys=True, default=repr)

    def export_jsonl(self) -> str:
        """The retained spans as JSONL (one object per line, oldest first)."""
        lines = list(self.iter_jsonl())
        return "\n".join(lines) + ("\n" if lines else "")

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return (
            f"TickTracer({len(self._spans)}/{self.capacity} spans, "
            f"{self.dropped} dropped)"
        )


class _NullSpanContext:
    """Shared no-op context manager returned by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer:
    """Tracing disabled: every operation is a no-op."""

    enabled = False
    recorded = 0
    dropped = 0
    capacity = 0

    def span(self, name, instant=None, **attributes) -> _NullSpanContext:
        return _NULL_SPAN

    def event(self, name, instant=None, **attributes) -> None:
        return None

    @property
    def spans(self) -> list:
        return []

    def recent(self, count: int = 20) -> list:
        return []

    def for_instant(self, instant: int) -> list:
        return []

    def clear(self) -> None:
        return None

    def export_jsonl(self) -> str:
        return ""

    def __len__(self) -> int:
        return 0

    def __repr__(self) -> str:
        return "NullTracer()"
