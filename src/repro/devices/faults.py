"""Deterministic chaos harness: scripted faults on any service.

The paper's evaluation runs against flaky physical devices (Section 5.2);
this module makes that flakiness *reproducible*.  A :class:`FaultInjector`
wraps any :class:`~repro.model.services.Service` and replays a
:class:`FaultScript` against it — crash windows, intermittent invocation
errors, latency spikes that exceed the client timeout, and episodes of
malformed output tuples.  The wrapped service travels through the exact
same registration → discovery → invocation path as the real one, so the
whole fault-tolerance stack (policy gates, health tracking, ERM
quarantine, ``on_error="degrade"``) is exercised end to end.

Determinism (Section 3.2) is preserved: whether an invocation at instant
τ faults is a pure function of ``(seed, reference, τ)`` — derived through
:mod:`repro.devices.determinism`, never from RNG state or call counts —
so the same invocation at the same instant behaves identically however
many times and in whatever order the execution engines attempt it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.determinism import stable_unit
from repro.model.prototypes import Prototype
from repro.model.services import MethodHandler, Service

__all__ = ["FaultScript", "FaultInjector", "InjectedFault"]


class InjectedFault(RuntimeError):
    """Raised by a wrapped handler when the script trips a fault.

    The registry converts it (like any handler exception) into an
    :class:`~repro.errors.InvocationError`, so queries and policies see a
    plain invocation failure — exactly what a real flaky device produces.
    """

    def __init__(self, reference: str, kind: str, instant: int):
        super().__init__(f"injected {kind} on {reference!r} at instant {instant}")
        self.reference = reference
        self.kind = kind
        self.instant = instant


@dataclass(frozen=True)
class FaultScript:
    """A deterministic fault schedule for one wrapped service.

    Parameters
    ----------
    crash_at:
        Permanent crash: from this instant on, every invocation fails
        forever (kind ``"crash_permanent"``).  Unlike a crash *window*
        the device never recovers — the probe after every quarantine
        backoff keeps failing, which is what drives the semantic
        substitution path (a substitute takes over the binding for good).
    crash_windows:
        Half-open instant intervals ``[start, end)`` during which every
        invocation fails (the device is unreachable).
    failure_rate:
        Probability that an invocation at a given instant fails with an
        intermittent error (drawn deterministically per instant).
    intermittent_windows:
        Half-open instant intervals outside of which ``failure_rate`` is
        ignored.  Empty (the default) means the rate applies at every
        instant — the original behaviour.  The cascading-failure compiler
        (:mod:`repro.city.cascade`) uses this to script *episodes* of
        flakiness ("the relays downstream of the dead substation go
        intermittent for the next k ticks") without a per-tick schedule.
    latency_spike_rate:
        Probability that a response at a given instant is slow enough to
        exceed the client timeout; in this instant-granular model an
        over-timeout response *is* a failure, so a spike faults the
        invocation (with kind ``"timeout"``).
    malformed_windows:
        Half-open instant intervals during which the device returns rows
        that violate its output schema (a firmware-glitch episode); the
        registry's schema validation turns them into invocation errors.
    """

    crash_at: int | None = None
    crash_windows: tuple[tuple[int, int], ...] = ()
    failure_rate: float = 0.0
    intermittent_windows: tuple[tuple[int, int], ...] = ()
    latency_spike_rate: float = 0.0
    malformed_windows: tuple[tuple[int, int], ...] = ()

    def __post_init__(self):
        if self.crash_at is not None and self.crash_at < 0:
            raise ValueError(f"crash_at must be >= 0, got {self.crash_at}")
        for start, end in (
            *self.crash_windows,
            *self.intermittent_windows,
            *self.malformed_windows,
        ):
            if end < start:
                raise ValueError(f"fault window [{start}, {end}) ends before it starts")
        for name in ("failure_rate", "latency_spike_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {rate}")

    def fault_at(self, reference: str, instant: int, seed: object) -> str | None:
        """The fault kind tripped at ``instant``, or None.

        Pure in ``(seed, reference, instant)``; evaluation order is
        crash_permanent > crash > malformed > intermittent > timeout.
        """
        if self.crash_at is not None and instant >= self.crash_at:
            return "crash_permanent"
        for start, end in self.crash_windows:
            if start <= instant < end:
                return "crash"
        for start, end in self.malformed_windows:
            if start <= instant < end:
                return "malformed"
        if self.failure_rate > 0.0 and (
            not self.intermittent_windows
            or any(start <= instant < end for start, end in self.intermittent_windows)
        ):
            if stable_unit(seed, reference, "fault", instant) < self.failure_rate:
                return "intermittent"
        if (
            self.latency_spike_rate > 0.0
            and stable_unit(seed, reference, "latency", instant)
            < self.latency_spike_rate
        ):
            return "timeout"
        return None


@dataclass
class FaultInjector:
    """Wraps a service so its invocations replay a :class:`FaultScript`.

    Use :meth:`as_service` and register the result wherever the original
    would have gone (a Local ERM, the registry, a scenario)::

        chaotic = FaultInjector(sensor.as_service(),
                                FaultScript(crash_windows=((10, 20),)),
                                seed="chaos-1").as_service()
        local_erm.register(chaotic)

    ``faults_injected`` counts trips per fault kind (diagnostics only —
    counts depend on how many attempts an engine makes and must not be
    compared across engines).
    """

    service: Service
    script: FaultScript
    seed: object = "chaos"
    faults_injected: dict[str, int] = field(default_factory=dict)

    def fault_at(self, instant: int) -> str | None:
        """The fault kind active for this service at ``instant``."""
        return self.script.fault_at(self.service.reference, instant, self.seed)

    def _wrap(self, prototype: Prototype, handler: MethodHandler) -> MethodHandler:
        reference = self.service.reference

        def chaotic_handler(inputs, instant):
            kind = self.fault_at(instant)
            if kind is None:
                return handler(inputs, instant)
            self.faults_injected[kind] = self.faults_injected.get(kind, 0) + 1
            if kind == "malformed":
                # Rows missing every output attribute: schema validation
                # in ServiceRegistry.invoke rejects them.
                return [{"__glitch__": instant}]
            raise InjectedFault(reference, kind, instant)

        return chaotic_handler

    def as_service(self) -> Service:
        """The wrapped service: same reference, prototypes and discovery
        properties, chaotic handlers."""
        methods = {
            prototype: self._wrap(prototype, self.service.handler(prototype))
            for prototype in self.service.prototypes
        }
        return Service(
            self.service.reference,
            methods,
            description=self.service.description,
            properties=self.service.properties,
        )
