"""The paper's running example (Examples 1–4) as a ready-made environment.

Unlike the full PEMS scenarios of :mod:`repro.devices.scenario`, this is a
bare :class:`PervasiveEnvironment` — no clock, no discovery — holding the
Table 1 prototypes, the nine services and the Table 2 X-Relations, plus
the ``sensors`` table of the motivating example.  Tests, benchmarks and
docs all start from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.cameras import Camera
from repro.devices.messengers import Messenger, Outbox, email_service, jabber_service
from repro.devices.prototypes import STANDARD_PROTOTYPES
from repro.devices.scenario import cameras_schema, contacts_schema, sensors_schema
from repro.devices.sensors import TemperatureSensor
from repro.model.environment import PervasiveEnvironment
from repro.model.relation import XRelation

__all__ = ["PaperExample", "build_paper_example", "CONTACT_ROWS", "CAMERA_SPECS", "SENSOR_SPECS"]

CONTACT_ROWS = [
    {"name": "Nicolas", "address": "nicolas@elysee.fr", "messenger": "email"},
    {"name": "Carla", "address": "carla@elysee.fr", "messenger": "email"},
    {"name": "Francois", "address": "francois@im.gouv.fr", "messenger": "jabber"},
]

CAMERA_SPECS = [
    ("camera01", "office", 8, 0.4),
    ("camera02", "corridor", 6, 0.6),
    ("webcam07", "roof", 4, 1.2),
]

SENSOR_SPECS = [
    ("sensor01", "corridor", 19.0),
    ("sensor06", "office", 21.0),
    ("sensor07", "office", 21.5),
    ("sensor22", "roof", 15.0),
]


@dataclass
class PaperExample:
    """The Example 1–4 environment, with device handles for assertions."""

    environment: PervasiveEnvironment
    outbox: Outbox
    cameras: dict[str, Camera] = field(default_factory=dict)
    sensors: dict[str, TemperatureSensor] = field(default_factory=dict)
    messengers: dict[str, Messenger] = field(default_factory=dict)


def build_paper_example() -> PaperExample:
    """Build a fresh copy of the Examples 1–4 environment."""
    env = PervasiveEnvironment()
    for prototype in STANDARD_PROTOTYPES:
        env.declare_prototype(prototype)

    outbox = Outbox()
    handle = PaperExample(env, outbox)

    for messenger in (email_service(outbox), jabber_service(outbox)):
        handle.messengers[messenger.reference] = messenger
        env.register_service(messenger.as_service())
    for reference, area, quality, delay in CAMERA_SPECS:
        camera = Camera(reference, area, quality, delay)
        handle.cameras[reference] = camera
        env.register_service(camera.as_service())
    for reference, location, base in SENSOR_SPECS:
        sensor = TemperatureSensor(reference, location, base)
        handle.sensors[reference] = sensor
        env.register_service(sensor.as_service())

    env.add_relation(XRelation.from_mappings(contacts_schema(), CONTACT_ROWS))
    env.add_relation(
        XRelation.from_mappings(
            cameras_schema(),
            [{"camera": ref, "area": area} for ref, area, _, _ in CAMERA_SPECS],
        )
    )
    env.add_relation(
        XRelation.from_mappings(
            sensors_schema(),
            [
                {"sensor": ref, "location": location}
                for ref, location, _ in SENSOR_SPECS
            ],
        )
    )
    return handle
