"""Simulated pervasive-environment devices (the Section 5.2 testbed,
rebuilt as deterministic in-process services — see DESIGN.md §1)."""

from repro.devices.cameras import Camera
from repro.devices.faults import FaultInjector, FaultScript, InjectedFault
from repro.devices.paper_example import PaperExample, build_paper_example
from repro.devices.messengers import (
    Message,
    Messenger,
    Outbox,
    email_service,
    jabber_service,
    sms_service,
)
from repro.devices.prototypes import (
    CHECK_PHOTO,
    FETCH_ITEMS,
    GET_TEMPERATURE,
    SEND_MESSAGE,
    STANDARD_PROTOTYPES,
    TAKE_PHOTO,
)
from repro.devices.rss import DEFAULT_SITES, RssFeed, RssStreamWrapper
from repro.devices.scenario import (
    Scenario,
    build_rss_scenario,
    build_temperature_surveillance,
    cameras_schema,
    contacts_schema,
    news_schema,
    sensors_schema,
    surveillance_schema,
    temperatures_schema,
)
from repro.devices.sensors import SensorStreamFeeder, TemperatureSensor

__all__ = [
    "CHECK_PHOTO",
    "Camera",
    "DEFAULT_SITES",
    "FETCH_ITEMS",
    "FaultInjector",
    "FaultScript",
    "GET_TEMPERATURE",
    "InjectedFault",
    "Message",
    "Messenger",
    "Outbox",
    "PaperExample",
    "RssFeed",
    "RssStreamWrapper",
    "SEND_MESSAGE",
    "STANDARD_PROTOTYPES",
    "Scenario",
    "SensorStreamFeeder",
    "TAKE_PHOTO",
    "TemperatureSensor",
    "build_paper_example",
    "build_rss_scenario",
    "build_temperature_surveillance",
    "cameras_schema",
    "contacts_schema",
    "news_schema",
    "sensors_schema",
    "surveillance_schema",
    "temperatures_schema",
    "email_service",
    "jabber_service",
    "sms_service",
]
