"""Simulated messaging services (substitutes for the Openfire IM server,
the Clickatel SMS gateway and the SMTP mail gateway of Section 5.2).

Each messenger implements the *active* ``sendMessage`` prototype and
appends every accepted message to an inspectable :class:`Outbox` — side
effects become assertable, which the real channels do not allow.  Per-
channel behaviour is configurable: a deterministic failure rate (messages
that bounce return ``sent = False``) and a nominal latency used by the
scalability benchmarks' latency model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.determinism import stable_unit
from repro.devices.prototypes import SEND_MESSAGE, SEND_PHOTO_MESSAGE
from repro.model.services import Service

__all__ = ["Message", "Outbox", "Messenger", "email_service", "jabber_service", "sms_service"]


@dataclass(frozen=True)
class Message:
    """One message accepted by a messenger."""

    instant: int
    channel: str
    address: str
    text: str
    delivered: bool
    photo: bytes | None = None  # attached picture (sendPhotoMessage)


@dataclass
class Outbox:
    """Shared, inspectable record of every send attempt."""

    messages: list[Message] = field(default_factory=list)

    def record(self, message: Message) -> None:
        self.messages.append(message)

    def sent_to(self, address: str) -> list[Message]:
        return [m for m in self.messages if m.address == address]

    def by_channel(self, channel: str) -> list[Message]:
        return [m for m in self.messages if m.channel == channel]

    def __len__(self) -> int:
        return len(self.messages)


class Messenger:
    """A simulated message channel implementing ``sendMessage``.

    Parameters
    ----------
    reference:
        Service reference (``"email"``, ``"jabber"``, ``"sms"``...).
    outbox:
        Where accepted messages are recorded (share one across channels to
        get a global timeline).
    failure_rate:
        Deterministic fraction of sends that bounce (``sent = False``).
    latency:
        Nominal delivery latency in seconds (benchmark metadata only).
    """

    def __init__(
        self,
        reference: str,
        outbox: Outbox | None = None,
        failure_rate: float = 0.0,
        latency: float = 0.1,
    ):
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError("failure_rate must be within [0, 1]")
        self.reference = reference
        self.outbox = outbox if outbox is not None else Outbox()
        self.failure_rate = failure_rate
        self.latency = latency

    def send(
        self,
        address: str,
        text: str,
        instant: int,
        photo: bytes | None = None,
    ) -> bool:
        """Deliver (or deterministically bounce) one message."""
        delivered = (
            stable_unit(self.reference, address, text, instant) >= self.failure_rate
        )
        self.outbox.record(
            Message(instant, self.reference, address, text, delivered, photo)
        )
        return delivered

    def as_service(self) -> Service:
        def send_message(inputs, instant):
            delivered = self.send(str(inputs["address"]), str(inputs["text"]), instant)
            return [{"sent": delivered}]

        def send_photo_message(inputs, instant):
            delivered = self.send(
                str(inputs["address"]),
                str(inputs["text"]),
                instant,
                photo=bytes(inputs["photo"]),
            )
            return [{"sent": delivered}]

        return Service(
            self.reference,
            {
                SEND_MESSAGE: send_message,
                SEND_PHOTO_MESSAGE: send_photo_message,
            },
            description=f"{self.reference} messaging gateway",
            properties={"latency": self.latency},
        )

    def __repr__(self) -> str:
        return f"Messenger({self.reference!r}, {len(self.outbox)} messages sent)"


def email_service(outbox: Outbox | None = None, failure_rate: float = 0.0) -> Messenger:
    """An ``email`` gateway (nominal latency: 0.5 s)."""
    return Messenger("email", outbox, failure_rate, latency=0.5)


def jabber_service(outbox: Outbox | None = None, failure_rate: float = 0.0) -> Messenger:
    """A ``jabber`` instant-messaging gateway (nominal latency: 0.05 s)."""
    return Messenger("jabber", outbox, failure_rate, latency=0.05)


def sms_service(outbox: Outbox | None = None, failure_rate: float = 0.0) -> Messenger:
    """An ``sms`` gateway (nominal latency: 2 s)."""
    return Messenger("sms", outbox, failure_rate, latency=2.0)
