"""Ready-made experimental environments reproducing Section 5.2.

Two builders assemble a full PEMS topology with simulated devices:

* :func:`build_temperature_surveillance` — the temperature surveillance
  scenario: sensors, cameras, messengers, the four XD-Relations
  (``cameras``, ``surveillance``, ``contacts``, ``temperatures``) plus a
  discovery-maintained ``sensors`` table, and (optionally) the two
  continuous queries of the experiment: alerting managers by message and
  photographing cold areas.

* :func:`build_rss_scenario` — the RSS feed scenario: seeded feeds for
  "lemonde", "lefigaro" and "cnn-europe" polled into a ``news`` stream, a
  keyword query with a one-hour window, and message delivery to a contact.

Both return a :class:`Scenario` handle exposing the PEMS, the devices and
the registered continuous queries, so tests, examples and benchmarks can
drive the clock and inspect every side effect.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.builder import scan
from repro.algebra.formula import col
from repro.algebra.query import Query
from repro.continuous.continuous_query import ContinuousQuery
from repro.devices.cameras import Camera
from repro.devices.messengers import Messenger, Outbox, email_service, jabber_service, sms_service
from repro.devices.prototypes import (
    CHECK_PHOTO,
    GET_ENV_READING,
    GET_TEMPERATURE,
    SEND_MESSAGE,
    SEND_PHOTO_MESSAGE,
    STANDARD_PROTOTYPES,
    TAKE_PHOTO,
)
from repro.devices.faults import FaultInjector, FaultScript
from repro.devices.rss import DEFAULT_SITES, RssFeed, RssStreamWrapper
from repro.devices.sensors import (
    EnvironmentalSensor,
    SensorStreamFeeder,
    TemperatureSensor,
)
from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.invocation_policy import InvocationPolicy
from repro.model.substitution import SubstitutionRule
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.pems import PEMS


#: Zone count used by the ``federated*`` scenario engines.
FEDERATED_ZONES = 4


def _make_pems(engine: str, policy, observe) -> PEMS:
    """The PEMS behind a scenario ``engine`` string.

    The ``federated``, ``federated-threads`` and ``federated-processes``
    engines build a :class:`~repro.fed.pems.FederatedPEMS` (4 zones,
    shared-engine queries over scattered shards); every other value is a
    query-engine name passed through to a plain :class:`PEMS`.
    """
    if engine.startswith("federated"):
        from repro.fed.pems import FederatedPEMS  # fed layers on devices' deps

        parallelism = {
            "federated": None,
            "federated-threads": "threads",
            "federated-processes": "processes",
        }[engine]
        return FederatedPEMS(
            zones=FEDERATED_ZONES,
            policy=policy,
            observe=observe,
            parallelism=parallelism,
        )
    return PEMS(engine=engine, policy=policy, observe=observe)

__all__ = [
    "Scenario",
    "build_temperature_surveillance",
    "build_rss_scenario",
    "sensors_schema",
    "cameras_schema",
    "contacts_schema",
    "surveillance_schema",
    "temperatures_schema",
    "news_schema",
]


# ---------------------------------------------------------------------------
# Schemas (Table 2 + the scenario tables of Section 5.2)
# ---------------------------------------------------------------------------


def contacts_schema(with_photo: bool = False) -> ExtendedRelationSchema:
    """The ``contacts`` X-Relation schema of Table 2.

    With ``with_photo=True`` the schema gains the "additional attribute
    allowing to send a picture with a message" of §5.2: a virtual
    ``photo`` BLOB and a ``sendPhotoMessage[messenger]`` binding pattern
    whose input it is.  A join that realizes ``photo`` (e.g. with the
    output of ``takePhoto``) enables the pattern.
    """
    attributes = [
        Attribute("name", DataType.STRING),
        Attribute("address", DataType.STRING),
        Attribute("text", DataType.STRING),
        Attribute("messenger", DataType.SERVICE),
        Attribute("sent", DataType.BOOLEAN),
    ]
    virtual = {"text", "sent"}
    binding_patterns = [BindingPattern(SEND_MESSAGE, "messenger")]
    if with_photo:
        attributes.insert(3, Attribute("photo", DataType.BLOB))
        virtual.add("photo")
        binding_patterns.append(BindingPattern(SEND_PHOTO_MESSAGE, "messenger"))
    return ExtendedRelationSchema(
        "contacts",
        attributes,
        virtual=virtual,
        binding_patterns=binding_patterns,
    )


def cameras_schema() -> ExtendedRelationSchema:
    """The ``cameras`` X-Relation schema of Table 2."""
    return ExtendedRelationSchema(
        "cameras",
        [
            Attribute("camera", DataType.SERVICE),
            Attribute("area", DataType.STRING),
            Attribute("quality", DataType.INTEGER),
            Attribute("delay", DataType.REAL),
            Attribute("photo", DataType.BLOB),
        ],
        virtual={"quality", "delay", "photo"},
        binding_patterns=[
            BindingPattern(CHECK_PHOTO, "camera"),
            BindingPattern(TAKE_PHOTO, "camera"),
        ],
    )


def sensors_schema(with_timestamp: bool = False) -> ExtendedRelationSchema:
    """The sensor list of Section 1.2: discovery-maintained.

    With ``with_timestamp=True`` the schema gains a virtual ``at``
    TIMESTAMP attribute, which the streaming-binding-pattern operator
    (``β∞``, see :mod:`repro.algebra.operators.stream_invocation`) realizes
    with the emission instant — giving the ``temperatures`` stream shape
    directly from the sensors table.
    """
    attributes = [
        Attribute("sensor", DataType.SERVICE),
        Attribute("location", DataType.STRING),
        Attribute("temperature", DataType.REAL),
    ]
    virtual = {"temperature"}
    if with_timestamp:
        attributes.append(Attribute("at", DataType.TIMESTAMP))
        virtual.add("at")
    return ExtendedRelationSchema(
        "sensors",
        attributes,
        virtual=virtual,
        binding_patterns=[BindingPattern(GET_TEMPERATURE, "sensor")],
    )


def surveillance_schema() -> ExtendedRelationSchema:
    """Who manages which location, and above which temperature to alert."""
    return ExtendedRelationSchema(
        "surveillance",
        [
            Attribute("name", DataType.STRING),
            Attribute("location", DataType.STRING),
            Attribute("threshold", DataType.REAL),
        ],
    )


def temperatures_schema() -> ExtendedRelationSchema:
    """The ``temperatures`` stream: periodic localized readings."""
    return ExtendedRelationSchema(
        "temperatures",
        [
            Attribute("sensor", DataType.SERVICE),
            Attribute("location", DataType.STRING),
            Attribute("temperature", DataType.REAL),
            Attribute("at", DataType.TIMESTAMP),
        ],
    )


def news_schema() -> ExtendedRelationSchema:
    """The ``news`` stream of the RSS scenario."""
    return ExtendedRelationSchema(
        "news",
        [
            Attribute("site", DataType.STRING),
            Attribute("title", DataType.STRING),
            Attribute("published", DataType.TIMESTAMP),
        ],
    )


# ---------------------------------------------------------------------------
# Scenario handle
# ---------------------------------------------------------------------------


@dataclass
class Scenario:
    """A built scenario: the PEMS plus everything worth inspecting."""

    pems: PEMS
    outbox: Outbox
    sensors: dict[str, TemperatureSensor] = field(default_factory=dict)
    cameras: dict[str, Camera] = field(default_factory=dict)
    messengers: dict[str, Messenger] = field(default_factory=dict)
    feeds: dict[str, RssFeed] = field(default_factory=dict)
    queries: dict[str, ContinuousQuery] = field(default_factory=dict)
    injectors: dict[str, FaultInjector] = field(default_factory=dict)
    spares: dict[str, EnvironmentalSensor] = field(default_factory=dict)

    @property
    def environment(self):
        return self.pems.environment

    @property
    def clock(self):
        return self.pems.clock

    def run(self, instants: int) -> int:
        """Advance the scenario clock."""
        return self.pems.run(instants)

    def add_sensor(
        self, reference: str, location: str, base: float = 20.0, erm_name: str = "field"
    ) -> TemperatureSensor:
        """Hot-plug a new temperature sensor at the current instant.

        The sensor is announced through its Local ERM, discovered by the
        core ERM, added to the ``sensors`` table by the discovery query and
        starts feeding the ``temperatures`` stream — all without stopping
        any registered continuous query (the Section 5.2 experiment).
        """
        sensor = TemperatureSensor(reference, location, base)
        self.sensors[reference] = sensor
        self.pems.create_local_erm(erm_name).register(sensor.as_service())
        return sensor

    def remove_sensor(self, reference: str, erm_name: str = "field") -> None:
        """Gracefully unplug a sensor (bye announcement)."""
        self.pems.create_local_erm(erm_name).deregister(reference)
        self.sensors.pop(reference, None)


# ---------------------------------------------------------------------------
# Temperature surveillance (Section 5.2, first experiment)
# ---------------------------------------------------------------------------

_DEFAULT_SENSORS = (
    ("sensor01", "corridor", 19.0),
    ("sensor06", "office", 21.0),
    ("sensor07", "office", 21.5),
    ("sensor22", "roof", 15.0),
)

_DEFAULT_CAMERAS = (
    ("camera01", "office", 8, 0.4),
    ("camera02", "corridor", 6, 0.6),
    ("webcam07", "roof", 4, 1.2),
)

_DEFAULT_CONTACTS = (
    ("Nicolas", "nicolas@elysee.fr", "email"),
    ("Carla", "carla@elysee.fr", "email"),
    ("Francois", "francois@im.gouv.fr", "jabber"),
    ("Jacques", "+33600000007", "sms"),
)

#: (manager name, location, alert threshold °C).  The corridor has two
#: managers so the scenario exercises all three channels of §5.2
#: ("by mail, instant message or SMS"): heating it alerts Nicolas by
#: email AND Jacques by SMS.
_DEFAULT_SURVEILLANCE = (
    ("Carla", "office", 28.0),
    ("Nicolas", "corridor", 30.0),
    ("Jacques", "corridor", 30.0),
    ("Francois", "roof", 26.0),
)


def build_temperature_surveillance(
    with_queries: bool = True,
    alert_text: str = "Hot!",
    photo_threshold: float = 12.0,
    messenger_failure_rate: float = 0.0,
    with_photo_messages: bool = False,
    engine: str = "incremental",
    policy: InvocationPolicy | None = None,
    sensor_faults: dict[str, FaultScript] | None = None,
    fault_seed: object = "chaos",
    observe: object = None,
    spare_sensors: tuple[tuple[str, str, float], ...] = (),
    substitutions: tuple[SubstitutionRule, ...] = (),
) -> Scenario:
    """Assemble the full temperature surveillance environment.

    With ``with_queries=True`` the two continuous queries of the
    experiment are registered:

    * ``alerts`` (Q3-style, with per-manager routing): when a temperature
      in the window exceeds the location's surveillance threshold, send
      ``alert_text`` to the location's manager via their messenger;
    * ``cold-photos`` (Q4-style): when a temperature goes below
      ``photo_threshold``, check the location's cameras and take a photo
      wherever the expected quality is at least 5 — the result is a stream
      of photos.

    With ``with_photo_messages=True`` the contacts table carries the §5.2
    "picture with a message" attribute and a third continuous query,
    ``photo-alerts``, sends each cold-area photo to the area's manager via
    ``sendPhotoMessage`` (the photo realized by ``takePhoto`` flows into
    the contacts binding pattern through the join's implicit realization).

    ``engine`` selects the continuous-query execution engine and
    ``policy`` the fault-tolerance invocation policy (see
    :class:`~repro.pems.pems.PEMS`).  ``sensor_faults`` maps sensor
    references to :class:`~repro.devices.faults.FaultScript`\\ s: those
    sensors are wrapped in a :class:`~repro.devices.faults.FaultInjector`
    (seeded with ``fault_seed``) before registration, so the scripted
    chaos flows through the same discovery/invocation path as the §5.2
    ``messenger_failure_rate`` flakiness.  ``observe`` sets the
    observability mode (see :class:`~repro.pems.pems.PEMS`).

    ``spare_sensors`` registers ``(reference, location, base)``
    environmental stations (``getEnvReading`` only — they never join the
    ``sensors`` table on their own) and ``substitutions`` declares
    substitution rules with the core ERM, so a scripted permanent crash
    (``FaultScript(crash_at=...)``) exercises the full semantic-rebinding
    path: quarantine → sticky rebind → projected spare readings.
    """
    pems = _make_pems(engine, policy, observe)
    env = pems.environment
    for prototype in STANDARD_PROTOTYPES:
        env.declare_prototype(prototype)
    if spare_sensors:
        env.declare_prototype(GET_ENV_READING)

    outbox = Outbox()
    scenario = Scenario(pems, outbox)

    # Distributed topology: one Local ERM per "floor", one for gateways.
    field_erm = pems.create_local_erm("field")
    gateway_erm = pems.create_local_erm("gateway")

    for reference, location, base in _DEFAULT_SENSORS:
        sensor = TemperatureSensor(reference, location, base)
        scenario.sensors[reference] = sensor
        registered = sensor.as_service()
        script = (sensor_faults or {}).get(reference)
        if script is not None:
            injector = FaultInjector(registered, script, seed=fault_seed)
            scenario.injectors[reference] = injector
            registered = injector.as_service()
        field_erm.register(registered)
    for reference, location, base in spare_sensors:
        spare = EnvironmentalSensor(reference, location, base)
        scenario.spares[reference] = spare
        field_erm.register(spare.as_service())
    for rule in substitutions:
        pems.declare_substitution(rule)
    for reference, area, quality, delay in _DEFAULT_CAMERAS:
        camera = Camera(reference, area, quality, delay)
        scenario.cameras[reference] = camera
        field_erm.register(camera.as_service())
    for messenger in (
        email_service(outbox, messenger_failure_rate),
        jabber_service(outbox, messenger_failure_rate),
        sms_service(outbox, messenger_failure_rate),
    ):
        scenario.messengers[messenger.reference] = messenger
        gateway_erm.register(messenger.as_service())

    # XD-Relations of the experiment.
    tables = pems.tables
    tables.create_relation(sensors_schema())
    tables.create_relation(cameras_schema())
    tables.create_relation(contacts_schema(with_photo=with_photo_messages))
    tables.create_relation(surveillance_schema())
    tables.create_relation(temperatures_schema(), infinite=True)

    tables.insert(
        "contacts",
        [
            {"name": n, "address": a, "messenger": m}
            for n, a, m in _DEFAULT_CONTACTS
        ],
    )
    tables.insert(
        "surveillance",
        [
            {"name": n, "location": l, "threshold": t}
            for n, l, t in _DEFAULT_SURVEILLANCE
        ],
    )

    # Discovery queries keep the sensors and cameras tables synchronized
    # with the available services (Section 5.1).
    pems.queries.register_discovery("getTemperature", "sensors", "sensor")
    pems.queries.register_discovery("checkPhoto", "cameras", "camera")

    # The temperatures stream is fed from the discovered sensors each tick.
    feeder = SensorStreamFeeder(
        env.registry, lambda rows: tables.insert("temperatures", rows)
    )
    pems.add_stream_source(feeder)

    if with_queries:
        alerts = (
            scan(env, "temperatures")
            .window(1)
            .join(scan(env, "surveillance"))
            .select(col("temperature").gt(col("threshold")))
            .join(scan(env, "contacts"))
            .assign("text", alert_text)
            .invoke("sendMessage", on_error="skip")
            .query("alerts")
        )
        cold_photos = (
            scan(env, "temperatures")
            .window(1)
            .select(col("temperature").lt(photo_threshold))
            .rename("location", "area")
            .join(scan(env, "cameras"))
            .invoke("checkPhoto", on_error="skip")
            .select(col("quality").ge(5))
            .invoke("takePhoto", on_error="skip")
            .project("area", "camera", "quality", "photo", "at")
            .stream("insertion")
            .query("cold-photos")
        )
        scenario.queries["alerts"] = pems.queries.register_continuous(alerts)
        scenario.queries["cold-photos"] = pems.queries.register_continuous(
            cold_photos
        )
        if with_photo_messages:
            # Cold-photo pipeline ⋈ surveillance (who manages the area)
            # ⋈ contacts: the takePhoto-realized 'photo' meets contacts'
            # virtual 'photo' in the join — implicit realization feeds the
            # sendPhotoMessage binding pattern.
            photo_alerts = (
                scan(env, "temperatures")
                .window(1)
                .select(col("temperature").lt(photo_threshold))
                .rename("location", "area")
                .join(scan(env, "cameras"))
                .invoke("checkPhoto", on_error="skip")
                .select(col("quality").ge(5))
                .invoke("takePhoto", on_error="skip")
                .join(
                    scan(env, "surveillance").rename("location", "area")
                )
                .join(scan(env, "contacts"))
                .assign("text", "Cold area photo attached")
                .invoke("sendPhotoMessage", on_error="skip")
                .query("photo-alerts")
            )
            scenario.queries["photo-alerts"] = pems.queries.register_continuous(
                photo_alerts
            )

    return scenario


# ---------------------------------------------------------------------------
# RSS feeds (Section 5.2, second experiment)
# ---------------------------------------------------------------------------


def build_rss_scenario(
    keyword: str = "Obama",
    window: int = 60,
    sites: tuple[str, ...] = DEFAULT_SITES,
    rate: float = 0.2,
    recipient: str = "Carla",
    with_queries: bool = True,
    seed: int = 0,
    engine: str = "incremental",
    policy: InvocationPolicy | None = None,
    observe: object = None,
) -> Scenario:
    """Assemble the RSS experiment: feeds → news stream → keyword query.

    The ``matching-news`` query keeps, with a ``window``-instant window
    (one hour in the paper), the news items whose title contains
    ``keyword``; the ``news-alerts`` query forwards each matching headline
    once to ``recipient`` via their messenger.

    ``engine`` selects the continuous-query execution engine (see
    :class:`~repro.pems.pems.PEMS`).
    """
    pems = _make_pems(engine, policy, observe)
    env = pems.environment
    for prototype in STANDARD_PROTOTYPES:
        env.declare_prototype(prototype)

    outbox = Outbox()
    scenario = Scenario(pems, outbox)

    gateway_erm = pems.create_local_erm("gateway")
    for messenger in (email_service(outbox), jabber_service(outbox)):
        scenario.messengers[messenger.reference] = messenger
        gateway_erm.register(messenger.as_service())

    tables = pems.tables
    tables.create_relation(contacts_schema())
    tables.create_relation(news_schema(), infinite=True)
    tables.insert(
        "contacts",
        [
            {"name": n, "address": a, "messenger": m}
            for n, a, m in _DEFAULT_CONTACTS
        ],
    )

    feeds = [RssFeed(site, rate, seed) for site in sites]
    for feed in feeds:
        scenario.feeds[feed.site] = feed
    wrapper = RssStreamWrapper(
        feeds, lambda rows: tables.insert("news", rows)
    )
    pems.add_stream_source(wrapper)

    if with_queries:
        matching = (
            scan(env, "news")
            .window(window)
            .select(col("title").contains(keyword))
            .query("matching-news")
        )
        scenario.queries["matching-news"] = pems.queries.register_continuous(
            matching
        )
        news_alerts = (
            scan(env, "news")
            .window(window)
            .select(col("title").contains(keyword))
            .join(
                scan(env, "contacts").select(col("name").eq(recipient))
            )
            .assign_from("text", "title")
            .invoke("sendMessage", on_error="skip")
            .query("news-alerts")
        )
        scenario.queries["news-alerts"] = pems.queries.register_continuous(
            news_alerts
        )

    return scenario
