"""Deterministic pseudo-randomness for simulated devices.

Services must be deterministic at a given instant (Section 3.2): invoking
the same service with the same input at the same instant must return the
same value, whatever the invocation order.  Simulated devices therefore
derive all their "noise" from a stable hash of ``(seed, instant, ...)``
instead of a stateful RNG — re-invocation, query rewriting and repeated
benchmark runs all see identical behaviour.
"""

from __future__ import annotations

import hashlib
import struct

__all__ = ["stable_unit", "stable_gauss_like", "stable_int", "stable_choice"]


def _digest(*parts: object) -> bytes:
    key = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(key.encode("utf-8")).digest()


def stable_unit(*parts: object) -> float:
    """A deterministic float in [0, 1) derived from ``parts``."""
    (value,) = struct.unpack(">Q", _digest(*parts)[:8])
    return value / 2**64


def stable_int(bound: int, *parts: object) -> int:
    """A deterministic integer in [0, bound) derived from ``parts``."""
    if bound <= 0:
        raise ValueError("bound must be positive")
    (value,) = struct.unpack(">Q", _digest(*parts)[8:16])
    return value % bound


def stable_gauss_like(*parts: object) -> float:
    """A deterministic value roughly in [−1, 1] with a bell-ish shape
    (average of three independent uniforms, rescaled)."""
    u = sum(stable_unit(i, *parts) for i in range(3)) / 3.0
    return (u - 0.5) * 2.0


def stable_choice(options: list, *parts: object):
    """A deterministic element of ``options`` derived from ``parts``."""
    return options[stable_int(len(options), *parts)]
