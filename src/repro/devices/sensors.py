"""Simulated temperature sensors (substitute for the Thermochron iButton
DS1921 sensors of Section 5.2).

A :class:`TemperatureSensor` implements the ``getTemperature`` prototype
with a deterministic thermal model:

* a per-sensor base temperature (its location's ambient),
* a slow diurnal drift,
* small deterministic measurement noise,
* scriptable *heating episodes* (:meth:`TemperatureSensor.heat`) that
  raise the reading over an instant range — the simulation analogue of the
  authors heating physical sensors to trigger the surveillance scenario.

A :class:`SensorStreamFeeder` pushes periodic readings from a set of
sensors into a ``temperatures`` stream, like the paper's sensors
"periodically providing temperatures associated with locations".  It reads
through the service registry, so a sensor that disappears from the
registry silently stops feeding the stream — no query restart needed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.devices.determinism import stable_gauss_like
from repro.devices.prototypes import GET_ENV_READING, GET_TEMPERATURE
from repro.errors import ServiceError
from repro.model.services import Service, ServiceRegistry

__all__ = ["TemperatureSensor", "EnvironmentalSensor", "SensorStreamFeeder"]


@dataclass(frozen=True)
class _HeatEpisode:
    start: int
    end: int
    peak: float  # added degrees at the episode's plateau


class TemperatureSensor:
    """A deterministic simulated temperature sensor.

    Parameters
    ----------
    reference:
        The service reference (e.g. ``"sensor01"``).
    location:
        Where the sensor is (exposed as a discovery property).
    base:
        Ambient temperature around which readings fluctuate.
    noise:
        Amplitude (degrees) of per-instant measurement noise.
    """

    def __init__(
        self,
        reference: str,
        location: str,
        base: float = 20.0,
        noise: float = 0.3,
    ):
        self.reference = reference
        self.location = location
        self.base = base
        self.noise = noise
        self._episodes: list[_HeatEpisode] = []

    def heat(self, start: int, end: int, peak: float) -> None:
        """Schedule a heating episode over instants [start, end].

        The added temperature ramps linearly up to ``peak`` at the middle
        of the episode, then back down — a deterministic heat-gun pass.
        """
        if end < start:
            raise ValueError("heating episode must end after it starts")
        self._episodes.append(_HeatEpisode(start, end, peak))

    def temperature(self, instant: int) -> float:
        """The reading at ``instant`` (pure function of the instant)."""
        drift = 1.5 * stable_gauss_like(self.reference, "drift", instant // 60)
        noise = self.noise * stable_gauss_like(self.reference, "noise", instant)
        heating = 0.0
        for episode in self._episodes:
            if episode.start <= instant <= episode.end:
                span = max(1, episode.end - episode.start)
                progress = (instant - episode.start) / span
                # triangular ramp: 0 → peak → 0
                heating += episode.peak * (1.0 - abs(2.0 * progress - 1.0))
        return round(self.base + drift + noise + heating, 2)

    def as_service(self) -> Service:
        """Wrap the sensor as a discoverable service."""

        def get_temperature(inputs, instant):
            return [{"temperature": self.temperature(instant)}]

        return Service(
            self.reference,
            {GET_TEMPERATURE: get_temperature},
            description=f"temperature sensor in {self.location}",
            properties={"location": self.location},
        )

    def __repr__(self) -> str:
        return f"TemperatureSensor({self.reference!r} @ {self.location!r})"


class EnvironmentalSensor(TemperatureSensor):
    """A combined temperature/humidity station implementing the richer
    ``getEnvReading`` prototype — and *only* that one.

    Because it does not implement ``getTemperature`` it never joins the
    ``sensors`` discovery table or the temperature stream on its own; it
    participates exactly when a ``specializes`` substitution rule projects
    its readings down for a dead temperature sensor — the standard spare
    device of the substitution scenarios.
    """

    def __init__(
        self,
        reference: str,
        location: str,
        base: float = 20.0,
        noise: float = 0.3,
        base_humidity: float = 45.0,
    ):
        super().__init__(reference, location, base, noise)
        self.base_humidity = base_humidity

    def humidity(self, instant: int) -> float:
        """Relative humidity at ``instant`` (pure function of the instant)."""
        drift = 4.0 * stable_gauss_like(self.reference, "hum-drift", instant // 60)
        noise = 1.5 * stable_gauss_like(self.reference, "hum-noise", instant)
        return round(self.base_humidity + drift + noise, 2)

    def as_service(self) -> Service:
        def get_env_reading(inputs, instant):
            return [
                {
                    "temperature": self.temperature(instant),
                    "humidity": self.humidity(instant),
                }
            ]

        return Service(
            self.reference,
            {GET_ENV_READING: get_env_reading},
            description=f"environmental station in {self.location}",
            properties={"location": self.location},
        )

    def __repr__(self) -> str:
        return f"EnvironmentalSensor({self.reference!r} @ {self.location!r})"


class SensorStreamFeeder:
    """Per-tick producer of the ``temperatures`` stream.

    At every instant that is a multiple of ``period``, it invokes
    ``getTemperature`` on every currently registered sensor service and
    inserts ``(sensor, location, temperature, at)`` rows into the stream.
    Register it with :meth:`repro.pems.pems.PEMS.add_stream_source`.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        insert,  # Callable[[list[Mapping]], int]-like: rows → inserted count
        period: int = 1,
    ):
        self.registry = registry
        self.insert = insert
        self.period = period

    def __call__(self, instant: int) -> None:
        if instant % self.period != 0:
            return
        rows = []
        for service in self.registry.providers(GET_TEMPERATURE):
            try:
                results = self.registry.invoke(
                    GET_TEMPERATURE, service.reference, {}, instant
                )
            except ServiceError:
                # One faulty sensor must not silence the whole stream:
                # its reading is absent this instant, the others flow on.
                continue
            location = str(service.properties.get("location", "unknown"))
            for (temperature,) in results:
                rows.append(
                    {
                        "sensor": service.reference,
                        "location": location,
                        "temperature": temperature,
                        "at": instant,
                    }
                )
        if rows:
            self.insert(rows)
