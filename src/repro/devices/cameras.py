"""Simulated network cameras (substitute for the Logitech webcams of
Section 5.2).

A :class:`Camera` implements the ``checkPhoto`` and ``takePhoto``
prototypes of Table 1:

* ``checkPhoto(area) : (quality, delay)`` — returns the camera's expected
  photo quality and delay for the requested area, or *zero tuples* when
  the camera cannot see that area (a legitimate invocation result per
  Section 2.1: "0, 1 or several tuples");
* ``takePhoto(area, quality) : (photo)`` — synthesizes a deterministic
  pseudo-image blob stamped with the camera, area, quality and instant —
  queries only treat photos as opaque BLOBs, so content is irrelevant to
  the algebra, but the stamp lets tests assert exactly which photo was
  taken when.
"""

from __future__ import annotations

from repro.devices.determinism import stable_unit
from repro.devices.prototypes import CHECK_PHOTO, TAKE_PHOTO
from repro.model.services import Service

__all__ = ["Camera"]


class Camera:
    """A deterministic simulated camera watching one area.

    Parameters
    ----------
    reference:
        Service reference (e.g. ``"camera01"``).
    area:
        The area this camera covers.
    quality:
        Nominal photo quality (0–10 scale, as in query Q2's ``quality ≥ 5``).
    delay:
        Nominal shot delay in seconds.
    """

    def __init__(
        self,
        reference: str,
        area: str,
        quality: int = 7,
        delay: float = 0.5,
    ):
        self.reference = reference
        self.area = area
        self.quality = quality
        self.delay = delay
        self.shots: list[tuple[int, str, int]] = []  # (instant, area, quality)

    def check_photo(self, area: str, instant: int) -> list[dict[str, object]]:
        """``checkPhoto``: quality/delay for ``area``, empty if unseen."""
        if area != self.area:
            return []
        # Lighting conditions wiggle the nominal quality by at most 1.
        wiggle = int(stable_unit(self.reference, "check", instant) * 3) - 1
        quality = max(0, min(10, self.quality + wiggle))
        delay = round(
            self.delay * (0.8 + 0.4 * stable_unit(self.reference, "delay", instant)),
            3,
        )
        return [{"quality": quality, "delay": delay}]

    def take_photo(self, area: str, quality: int, instant: int) -> list[dict[str, object]]:
        """``takePhoto``: one pseudo-image blob, empty if the area is unseen."""
        if area != self.area:
            return []
        self.shots.append((instant, area, quality))
        stamp = f"photo|{self.reference}|{area}|q{quality}|t{instant}"
        return [{"photo": stamp.encode("ascii")}]

    def as_service(self) -> Service:
        def check(inputs, instant):
            return self.check_photo(str(inputs["area"]), instant)

        def take(inputs, instant):
            return self.take_photo(str(inputs["area"]), int(inputs["quality"]), instant)

        return Service(
            self.reference,
            {CHECK_PHOTO: check, TAKE_PHOTO: take},
            description=f"camera watching {self.area}",
            properties={"area": self.area},
        )

    def __repr__(self) -> str:
        return f"Camera({self.reference!r} @ {self.area!r})"
