"""Simulated RSS feeds and the stream wrapper of the second experiment
(Section 5.2).

The paper wraps live RSS feeds ("Le Monde", "Le Figaro", "CNN Europe") as
services and polls them periodically, inserting a tuple into a stream
whenever a new item appears.  Offline, :class:`RssFeed` generates a
deterministic, seeded flow of headlines per site (some containing tracked
keywords like "Obama"), and :class:`RssStreamWrapper` reproduces the
poll-and-insert pattern: register it as a PEMS stream source and it feeds
a ``news`` stream with ``(site, title, published)`` rows.
"""

from __future__ import annotations

from repro.devices.determinism import stable_choice, stable_unit
from repro.devices.prototypes import FETCH_ITEMS
from repro.model.services import Service

__all__ = ["RssFeed", "RssStreamWrapper", "DEFAULT_SITES"]

DEFAULT_SITES = ("lemonde", "lefigaro", "cnn-europe")

_SUBJECTS = (
    "Obama", "the Parliament", "the Commission", "the markets",
    "scientists", "the ministry", "voters", "the summit",
)
_VERBS = (
    "announces", "debates", "rejects", "welcomes", "postpones",
    "investigates", "confirms", "denies",
)
_OBJECTS = (
    "a new climate plan", "the budget reform", "the election results",
    "a trade agreement", "the energy package", "a security initiative",
    "the health proposal", "new sanctions",
)


class RssFeed:
    """A deterministic headline generator for one site.

    At each instant, the feed publishes a new item with probability
    ``rate``; items are headlines composed from fixed word pools, so a
    known fraction mentions any given keyword — handy for asserting the
    behaviour of keyword-filtering continuous queries.
    """

    def __init__(self, site: str, rate: float = 0.3, seed: int = 0):
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be within (0, 1]")
        self.site = site
        self.rate = rate
        self.seed = seed

    def items_at(self, instant: int) -> list[dict[str, object]]:
        """The items published exactly at ``instant`` (0 or 1)."""
        if stable_unit(self.site, self.seed, "pub", instant) >= self.rate:
            return []
        subject = stable_choice(list(_SUBJECTS), self.site, self.seed, "s", instant)
        verb = stable_choice(list(_VERBS), self.site, self.seed, "v", instant)
        obj = stable_choice(list(_OBJECTS), self.site, self.seed, "o", instant)
        return [{"title": f"{subject} {verb} {obj}", "published": instant}]

    def items_between(self, start: int, end: int) -> list[dict[str, object]]:
        """All items published in ``(start, end]`` (the poll window)."""
        items = []
        for instant in range(start + 1, end + 1):
            items.extend(self.items_at(instant))
        return items

    def as_service(self) -> Service:
        """Wrap the feed as a ``fetchItems`` service: returns the items of
        the current instant."""

        def fetch(inputs, instant):
            return self.items_at(instant)

        return Service(
            f"rss-{self.site}",
            {FETCH_ITEMS: fetch},
            description=f"RSS wrapper for {self.site}",
            properties={"site": self.site},
        )

    def __repr__(self) -> str:
        return f"RssFeed({self.site!r}, rate={self.rate})"


class RssStreamWrapper:
    """Polls feeds every ``poll_period`` instants into a news stream.

    "A tuple is inserted in the stream when a new item appears in the RSS
    feed (that is periodically checked)" — the wrapper remembers its last
    poll instant per feed and inserts everything published since.
    """

    def __init__(self, feeds: list[RssFeed], insert, poll_period: int = 1):
        self.feeds = list(feeds)
        self.insert = insert
        self.poll_period = max(1, poll_period)
        self._last_poll: dict[str, int] = {feed.site: 0 for feed in self.feeds}

    def __call__(self, instant: int) -> None:
        if instant % self.poll_period != 0:
            return
        rows = []
        for feed in self.feeds:
            since = self._last_poll[feed.site]
            for item in feed.items_between(since, instant):
                rows.append({"site": feed.site, **item})
            self._last_poll[feed.site] = instant
        if rows:
            self.insert(rows)
