"""The standard prototypes of the temperature surveillance scenario
(Table 1), plus the RSS scenario's prototype, as reusable declarations.

::

    PROTOTYPE sendMessage( address STRING, text STRING ) : ( sent BOOLEAN ) ACTIVE;
    PROTOTYPE checkPhoto( area STRING ) : ( quality INTEGER, delay REAL );
    PROTOTYPE takePhoto( area STRING, quality INTEGER ) : ( photo BLOB );
    PROTOTYPE getTemperature( ) : ( temperature REAL );
"""

from __future__ import annotations

from repro.model.prototypes import Prototype
from repro.model.schema import RelationSchema

__all__ = [
    "SEND_MESSAGE",
    "SEND_PHOTO_MESSAGE",
    "CHECK_PHOTO",
    "TAKE_PHOTO",
    "GET_TEMPERATURE",
    "GET_ENV_READING",
    "FETCH_ITEMS",
    "STANDARD_PROTOTYPES",
]

SEND_MESSAGE = Prototype(
    "sendMessage",
    RelationSchema.of(address="STRING", text="STRING"),
    RelationSchema.of(sent="BOOLEAN"),
    active=True,
)

#: §5.2 mentions contacts got "an additional attribute allowing to send a
#: picture with a message" — this is the corresponding prototype.
SEND_PHOTO_MESSAGE = Prototype(
    "sendPhotoMessage",
    RelationSchema.of(address="STRING", text="STRING", photo="BLOB"),
    RelationSchema.of(sent="BOOLEAN"),
    active=True,
)

CHECK_PHOTO = Prototype(
    "checkPhoto",
    RelationSchema.of(area="STRING"),
    RelationSchema.of(quality="INTEGER", delay="REAL"),
)

TAKE_PHOTO = Prototype(
    "takePhoto",
    RelationSchema.of(area="STRING", quality="INTEGER"),
    RelationSchema.of(photo="BLOB"),
)

GET_TEMPERATURE = Prototype(
    "getTemperature",
    RelationSchema(()),
    RelationSchema.of(temperature="REAL"),
)

#: A richer environmental reading whose output schema is a superset of
#: ``getTemperature``'s: the ``specializes`` substitution rule projects it
#: down, letting a combined temperature/humidity spare stand in for a dead
#: temperature sensor without ever joining the ``sensors`` discovery table.
GET_ENV_READING = Prototype(
    "getEnvReading",
    RelationSchema(()),
    RelationSchema.of(temperature="REAL", humidity="REAL"),
)

#: RSS wrapper prototype (Section 5.2, second scenario): fetch the current
#: items of a feed.
FETCH_ITEMS = Prototype(
    "fetchItems",
    RelationSchema(()),
    RelationSchema.of(title="STRING", published="TIMESTAMP"),
)

STANDARD_PROTOTYPES = (
    SEND_MESSAGE,
    SEND_PHOTO_MESSAGE,
    CHECK_PHOTO,
    TAKE_PHOTO,
    GET_TEMPERATURE,
)
