"""An interactive shell for PEMS: DDL, Serena SQL, SAL and inspection.

Run ``python -m repro`` for an interactive session, or
``python -m repro script.serena`` to execute a script.  Statements:

* Serena DDL — ``PROTOTYPE``, ``EXTENDED RELATION/STREAM``, ``SERVICE``,
  ``INSERT INTO``, ``DELETE FROM`` (terminated by ``;``);
* ``SELECT ...;`` — a one-shot Serena SQL query, evaluated now;
* ``REGISTER <name> AS SELECT ...;`` — register a continuous SQL query;
* dot-commands (single line, no semicolon):

  ========================  ==========================================
  ``.help``                 this text
  ``.catalog``              prototypes, services, relations, queries
  ``.show <relation>``      print a relation's instantaneous contents
  ``.tick [n]``             advance the virtual clock by n instants
  ``.queries``              list registered continuous queries
  ``.result <name>``        last result of a continuous query
  ``.actions <name>``       cumulative action set of a continuous query
  ``.explain SELECT ...``   the compiled plan of a SQL query
  ``.explain physical ...`` the lowered physical plan (executor classes,
                            backends, shared/private markers); accepts an
                            optional backend: ``.explain physical columnar``
  ``.explain federated ..`` the federated execution plan: which subtrees
                            scatter to which zone shards (needs a
                            federated PEMS — ``.demo`` accepts e.g.
                            ``temperature federated``)
  ``.shards``               per-zone shard state of a federated PEMS:
                            services, rows, scattered subplans
  ``.substitutions``        declared substitution rules, active rebinds,
                            the failover table and the rebind history
  ``.analyze [name]``       EXPLAIN ANALYZE of registered continuous
                            queries: per-executor cumulative run stats
  ``.metrics [json]``       the metrics registry (Prometheus text, or a
                            JSON snapshot with ``json``)
  ``.trace [n|json]``       the last n recorded tick-trace spans
                            (requires ``observe="full"``)
  ``.profile SELECT ...``   run the query; per-operator tuple counts
  ``.optimize SELECT ...``  the plan before/after cost-based optimization
  ``.stats``                relation cardinalities and distinct counts
  ``.sal <expr>``           evaluate a Serena Algebra Language expression
  ``.rule head(x) :- ...``  evaluate a conjunctive-calculus rule
  ``.demo temperature|rss`` load a ready-made §5.2 scenario; ``.demo
                            substitution`` adds a scripted permanent
                            sensor crash with a declared spare (§13);
                            ``.demo city [engine]`` loads the generated
                            smart-city scenario (§14) — e.g. ``.demo
                            city federated`` maps its zones onto shards
  ``.city <config> [eng]``  build a city from a ``.json``/``.toml``
                            :class:`CityConfig` file on any engine
  ``.serve [port [n [ms]]]`` serve continuous-query deltas over TCP/SSE:
                            tick every ``ms`` milliseconds (default 100)
                            for ``n`` instants (default: until Ctrl-C);
                            clients register queries by SQL over JSONL
                            or subscribe via ``GET /subscribe?sql=…``
  ``.quit``                 leave
  ========================  ==========================================

The shell is deliberately free of simulation magic: without ``.demo`` you
get an empty PEMS, and DDL ``SERVICE`` statements only *declare* services
(implementations must be bound programmatically — or use a demo scenario).
"""

from __future__ import annotations

import sys
from typing import Callable, TextIO

from repro.errors import SerenaError
from repro.lang.sal import parse_query
from repro.lang.sql import compile_sql
from repro.pems.pems import PEMS

__all__ = ["SerenaShell", "main"]

_DDL_KEYWORDS = ("PROTOTYPE", "EXTENDED", "SERVICE", "INSERT", "DELETE")


class SerenaShell:
    """Statement dispatcher over one PEMS instance."""

    def __init__(self, pems: PEMS | None = None, out: TextIO | None = None):
        self.pems = pems if pems is not None else PEMS()
        self.out = out if out is not None else sys.stdout
        self._scenario = None
        self._running = True
        self._commands: dict[str, Callable[[str], None]] = {
            "help": self._cmd_help,
            "catalog": self._cmd_catalog,
            "show": self._cmd_show,
            "tick": self._cmd_tick,
            "queries": self._cmd_queries,
            "result": self._cmd_result,
            "actions": self._cmd_actions,
            "explain": self._cmd_explain,
            "shards": self._cmd_shards,
            "substitutions": self._cmd_substitutions,
            "analyze": self._cmd_analyze,
            "metrics": self._cmd_metrics,
            "trace": self._cmd_trace,
            "profile": self._cmd_profile,
            "optimize": self._cmd_optimize,
            "stats": self._cmd_stats,
            "sal": self._cmd_sal,
            "rule": self._cmd_rule,
            "demo": self._cmd_demo,
            "city": self._cmd_city,
            "serve": self._cmd_serve,
            "quit": self._cmd_quit,
            "exit": self._cmd_quit,
        }

    # -- output -----------------------------------------------------------------

    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    @property
    def running(self) -> bool:
        return self._running

    # -- statement dispatch ---------------------------------------------------------

    def execute(self, statement: str) -> None:
        """Execute one statement (dot-command or ';'-terminated text)."""
        statement = statement.strip()
        if not statement:
            return
        try:
            if statement.startswith("."):
                self._dispatch_command(statement)
            else:
                self._dispatch_statement(statement)
        except SerenaError as exc:
            self._print(f"error: {exc}")

    def _dispatch_command(self, line: str) -> None:
        name, _, argument = line[1:].partition(" ")
        handler = self._commands.get(name.lower())
        if handler is None:
            self._print(f"unknown command .{name} — try .help")
            return
        handler(argument.strip())

    def _dispatch_statement(self, statement: str) -> None:
        head = statement.split(None, 1)[0].upper()
        if head == "SELECT":
            self._run_sql(statement)
        elif head == "REGISTER":
            self._register(statement)
        elif head in _DDL_KEYWORDS:
            results = self.pems.execute_ddl(statement)
            for result in results:
                self._print(f"ok: {result!r}")
        else:
            self._print(
                f"unrecognized statement {head!r} — "
                "expected SELECT, REGISTER or DDL; try .help"
            )

    # -- statement handlers ------------------------------------------------------------

    def _run_sql(self, text: str) -> None:
        result = self.pems.queries.execute_sql(text)
        self._print(result.relation.to_table())
        if result.actions:
            self._print(f"actions: {result.actions}")

    def _register(self, text: str) -> None:
        rest = text.split(None, 1)[1] if " " in text else ""
        name, _, body = rest.partition(" ")
        body = body.strip()
        if not name or not body.upper().startswith("AS "):
            self._print("usage: REGISTER <name> AS SELECT ...;")
            return
        sql = body[3:].strip().rstrip(";")
        self.pems.queries.register_continuous_sql(sql, name=name)
        self._print(f"registered continuous query {name!r}")

    # -- dot-commands --------------------------------------------------------------------

    def _cmd_help(self, argument: str) -> None:
        self._print(__doc__ or "")

    def _cmd_catalog(self, argument: str) -> None:
        self._print(self.pems.describe())

    def _cmd_show(self, argument: str) -> None:
        if not argument:
            self._print("usage: .show <relation>")
            return
        relation = self.pems.environment.instantaneous(
            argument, self.pems.clock.now
        )
        self._print(relation.to_table())

    def _cmd_tick(self, argument: str) -> None:
        try:
            instants = int(argument) if argument else 1
        except ValueError:
            self._print("usage: .tick [n]")
            return
        self.pems.run(instants)
        self._print(f"now at instant {self.pems.clock.now}")

    def _cmd_queries(self, argument: str) -> None:
        queries = self.pems.queries.continuous_queries
        if not queries:
            self._print("(no continuous queries registered)")
        for name in sorted(queries):
            self._print(f"{name}: {queries[name].query.render()}")

    def _cmd_result(self, argument: str) -> None:
        continuous = self.pems.queries.continuous_query(argument)
        if continuous.last_result is None:
            self._print("(not evaluated yet — .tick first)")
            return
        self._print(continuous.last_result.relation.to_table())

    def _cmd_actions(self, argument: str) -> None:
        continuous = self.pems.queries.continuous_query(argument)
        actions = continuous.actions
        self._print(actions.describe() if actions else "(no actions yet)")

    def _cmd_explain(self, argument: str) -> None:
        from repro.lang.printer import explain, explain_federated, explain_physical

        from repro.exec.lowering import BACKENDS

        mode = "logical"
        backend: str | None = None
        head, _, rest = argument.partition(" ")
        if head.lower() in ("physical", "federated"):
            mode = head.lower()
            argument = rest.strip()
            head, _, rest = argument.partition(" ")
            if mode == "physical" and head.lower() in BACKENDS:
                backend = head.lower()
                argument = rest.strip()
        if not argument:
            self._print(
                "usage: .explain [physical [row|columnar] | federated] "
                "SELECT ..."
            )
            return
        query = compile_sql(argument.rstrip(";"), self.pems.environment)
        if mode == "physical":
            self._print(
                explain_physical(
                    query, self.pems.queries.shared, backend=backend
                )
            )
        elif mode == "federated":
            self._print(explain_federated(query, self.pems.queries.shared))
        else:
            self._print(explain(query))

    def _cmd_shards(self, argument: str) -> None:
        summary = getattr(self.pems, "shard_summary", None)
        if summary is None:
            self._print("(not a federated PEMS — no zone shards)")
            return
        payload = summary()
        mode = payload["parallelism"] or "lockstep"
        self._print(
            f"{len(payload['zones'])} zones, {mode}, "
            f"gossip relayed {payload['gossip_relayed']}"
        )
        for zone in payload["zones"]:
            self._print(
                f"  {zone['zone']}: services={zone['services']} "
                f"relations={zone['relations']} rows={zone['rows']} "
                f"subplans={zone['subplans']}"
            )
        scattered = payload["scattered"]
        if not scattered:
            self._print("(no scattered subtrees)")
            return
        self._print("scattered subtrees:")
        for row in scattered:
            pruned = "  (pruned)" if row["pruned"] else ""
            self._print(
                f"  {row['fingerprint']} {row['operator']} "
                f"refs={row['refcount']} zones={','.join(row['zones'])}{pruned}"
            )

    def _cmd_substitutions(self, argument: str) -> None:
        report = self.pems.erm.substitution_report()
        if not report["rules"]:
            self._print("(no substitution rules declared)")
            return
        self._print(f"epoch {report['epoch']}")
        self._print("rules:")
        for rule in report["rules"]:
            self._print(f"  {rule}")
        if report["bindings"]:
            self._print("active bindings:")
            for key, plan in report["bindings"].items():
                self._print(f"  {key} -> {plan}")
        else:
            self._print("(no active bindings)")
        if report["failover"]:
            self._print("failover table:")
            for key, plans in report["failover"].items():
                self._print(f"  {key}: {'; '.join(plans)}")
        if report["history"]:
            self._print("rebind history:")
            for line in report["history"]:
                self._print(f"  {line}")

    def _cmd_analyze(self, argument: str) -> None:
        from repro.lang.printer import explain_analyze

        queries = self.pems.queries.continuous_queries
        if argument:
            names = [argument]
        elif queries:
            names = sorted(queries)
        else:
            self._print("(no continuous queries registered)")
            return
        for position, name in enumerate(names):
            if position:
                self._print()
            continuous = self.pems.queries.continuous_query(name)
            self._print(explain_analyze(continuous))

    def _cmd_metrics(self, argument: str) -> None:
        if argument.lower() == "json":
            import json

            self._print(json.dumps(self.pems.obs.snapshot(), indent=2))
            return
        if argument:
            self._print("usage: .metrics [json]")
            return
        self._print(self.pems.obs.to_prometheus().rstrip("\n"))

    def _cmd_trace(self, argument: str) -> None:
        tracer = self.pems.obs.tracer
        if not tracer.enabled:
            self._print(
                "(tracing is off — construct PEMS with observe='full')"
            )
            return
        if argument.lower() == "json":
            self._print(tracer.export_jsonl().rstrip("\n"))
            return
        try:
            count = int(argument) if argument else 20
        except ValueError:
            self._print("usage: .trace [n|json]")
            return
        spans = tracer.recent(count)
        if not spans:
            self._print("(no spans recorded yet — .tick first)")
            return
        depths: dict[int, int] = {}
        for span in spans:
            parent_depth = depths.get(span.parent_id)
            depth = 0 if parent_depth is None else parent_depth + 1
            depths[span.span_id] = depth
            attributes = " ".join(
                f"{key}={value}" for key, value in span.attributes.items()
            )
            line = (
                f"{'  ' * depth}τ={span.instant} {span.name} "
                f"{span.duration * 1000:.3f}ms"
            )
            self._print(f"{line}  {attributes}" if attributes else line)

    def _cmd_profile(self, argument: str) -> None:
        query = compile_sql(argument.rstrip(";"), self.pems.environment)
        profile = query.profile(self.pems.environment, self.pems.clock.now)
        self._print(profile.render())
        self._print(profile.result.relation.to_table())

    def _cmd_optimize(self, argument: str) -> None:
        from repro.algebra.cost import CostModel
        from repro.algebra.optimizer import Optimizer
        from repro.algebra.statistics import collect_statistics
        from repro.lang.printer import explain

        query = compile_sql(argument.rstrip(";"), self.pems.environment)
        statistics = collect_statistics(self.pems.environment, self.pems.clock.now)
        substitutions = getattr(
            self.pems.environment.registry, "substitutions", None
        )
        model = CostModel(
            self.pems.environment,
            instant=self.pems.clock.now,
            statistics=statistics,
            substitutable=(
                substitutions.prototype_names if substitutions is not None else None
            ),
        )
        outcome = Optimizer(model).optimize(query)
        self._print("-- original plan --")
        self._print(explain(query))
        self._print(
            f"estimated cost: {outcome.original_cost.total:,.0f} "
            f"(invocations {outcome.original_cost.invocations:,.0f})"
        )
        self._print("-- optimized plan --")
        self._print(explain(outcome.query))
        self._print(
            f"estimated cost: {outcome.cost.total:,.0f} "
            f"(invocations {outcome.cost.invocations:,.0f}); "
            f"{outcome.plans_explored} plans explored, "
            f"x{outcome.improvement:.2f} better"
        )

    def _cmd_stats(self, argument: str) -> None:
        from repro.algebra.statistics import collect_statistics

        statistics = collect_statistics(self.pems.environment, self.pems.clock.now)
        shown = False
        for name in self.pems.environment.relation_names:
            relation_stats = statistics.relation(name)
            if relation_stats is None:
                self._print(f"{name}: (stream — not profiled)")
                continue
            distinct = ", ".join(
                f"{attr}={count}"
                for attr, count in sorted(relation_stats.distinct.items())
            )
            self._print(
                f"{name}: {relation_stats.cardinality} tuples; distinct: {distinct}"
            )
            shown = True
        if not shown and not self.pems.environment.relation_names:
            self._print("(no relations)")

    def _cmd_sal(self, argument: str) -> None:
        query = parse_query(argument.rstrip(";"), self.pems.environment)
        result = self.pems.queries.execute(query)
        self._print(result.relation.to_table())
        if result.actions:
            self._print(f"actions: {result.actions}")

    def _cmd_rule(self, argument: str) -> None:
        from repro.lang.datalog import compile_rule

        query = compile_rule(argument, self.pems.environment)
        result = self.pems.queries.execute(query)
        self._print(result.relation.to_table())

    def _cmd_demo(self, argument: str) -> None:
        from repro.devices.scenario import (
            build_rss_scenario,
            build_temperature_surveillance,
        )

        name, _, engine = argument.partition(" ")
        engine = engine.strip() or "incremental"
        if name == "temperature":
            self._scenario = build_temperature_surveillance(engine=engine)
        elif name == "substitution":
            from repro.devices.faults import FaultScript
            from repro.model.invocation_policy import InvocationPolicy
            from repro.model.substitution import SubstitutionRule

            # The TUTORIAL §12 walkthrough: sensor22 dies for good at
            # instant 20; a spare environmental station on the roof stands
            # in via a ``specializes`` projection.  ``.tick 25`` then
            # ``.substitutions`` shows the rebind.
            self._scenario = build_temperature_surveillance(
                engine=engine,
                policy=InvocationPolicy(
                    failure_threshold=1, quarantine_backoff=8
                ),
                sensor_faults={"sensor22": FaultScript(crash_at=20)},
                spare_sensors=(("spare-roof", "roof", 15.5),),
                substitutions=(
                    SubstitutionRule.specializes(
                        "getTemperature",
                        "spare-roof",
                        "getEnvReading",
                        reference="sensor22",
                    ),
                ),
            )
        elif name == "rss":
            self._scenario = build_rss_scenario(engine=engine)
        elif name == "city":
            from repro.city.config import DEMO_CITY
            from repro.city.scenario import build_city

            self._scenario = build_city(DEMO_CITY, engine=engine)
        else:
            self._print(
                "usage: .demo temperature|substitution|rss|city [engine]"
            )
            return
        self.pems = self._scenario.pems
        self._print(
            f"loaded the {name} scenario (engine={engine}) "
            f"({len(self.pems.environment.registry)} services, "
            f"{len(self.pems.environment.relation_names)} relations); "
            ".tick to advance"
        )

    def _cmd_city(self, argument: str) -> None:
        from repro.city.config import CityConfig
        from repro.city.scenario import build_city

        path, _, engine = argument.partition(" ")
        if not path:
            self._print("usage: .city <config.json|config.toml> [engine]")
            return
        try:
            config = CityConfig.load(path)
        except OSError as exc:
            self._print(f"error: cannot read {path!r} — {exc}")
            return
        engine = engine.strip() or "incremental"
        self._scenario = build_city(config, engine=engine)
        self.pems = self._scenario.pems
        topology = self._scenario.topology
        cascade = config.cascade
        cascade_note = (
            f"; cascade: station crash at τ={cascade.crash_at} "
            f"in zone {config.zones[cascade.zone]!r}"
            if cascade is not None
            else ""
        )
        self._print(
            f"built city {config.name!r} (engine={engine}): "
            f"{len(topology)} devices across {len(config.zones)} zones, "
            f"{len(self._scenario.queries)} standing queries, "
            f"topology digest {topology.digest()[:12]}{cascade_note}; "
            ".tick to advance"
        )

    def _cmd_serve(self, argument: str) -> None:
        import asyncio

        from repro.server import SubscriptionServer

        parts = argument.split()
        try:
            port = int(parts[0]) if parts else 0
            ticks = int(parts[1]) if len(parts) > 1 else 0
            interval = (
                float(parts[2]) / 1000.0 if len(parts) > 2 else 0.1
            )
        except ValueError:
            self._print("usage: .serve [port [ticks [interval_ms]]]")
            return

        async def _serve() -> dict:
            server = SubscriptionServer(self.pems, port=port)
            await server.start()
            self._print(
                f"serving on 127.0.0.1:{server.port} — JSONL ops per "
                "line, or GET /subscribe?sql=… for SSE; Ctrl-C to stop"
            )
            remaining = ticks if ticks > 0 else None
            try:
                while remaining is None or remaining > 0:
                    server.tick()
                    if remaining is not None:
                        remaining -= 1
                    await asyncio.sleep(interval)
            finally:
                await server.shutdown()
            return server.summary()

        try:
            summary = asyncio.run(_serve())
        except KeyboardInterrupt:
            self._print("\nserver stopped")
            return
        self._print(
            f"served {summary['messages_sent']} delta messages over "
            f"{summary['instant']} instants "
            f"({summary['queries']} queries at shutdown)"
        )

    def _cmd_quit(self, argument: str) -> None:
        self._running = False

    # -- script execution ------------------------------------------------------------------

    def run_script(self, text: str) -> None:
        """Execute a script: dot-commands are one per line, other
        statements run until their terminating ``;``."""
        for statement in split_statements(text):
            self.execute(statement)
            if not self._running:
                break


def split_statements(text: str) -> list[str]:
    """Split script text into statements.

    Lines starting with ``.`` are single statements; ``--`` comments are
    dropped; anything else accumulates until a ``;`` outside a string
    literal.
    """
    statements: list[str] = []
    buffer: list[str] = []
    in_string = False
    for raw_line in text.splitlines():
        line = raw_line if in_string else _strip_comment(raw_line)
        stripped = line.strip()
        if not in_string and not "".join(buffer).strip():
            buffer = []  # drop stray whitespace between statements
            if not stripped:
                continue
            if stripped.startswith("."):
                statements.append(stripped)
                continue
        for ch in line:
            buffer.append(ch)
            if ch == "'":
                in_string = not in_string
            elif ch == ";" and not in_string:
                statements.append("".join(buffer).strip())
                buffer = []
        buffer.append("\n")
    tail = "".join(buffer).strip()
    if tail:
        statements.append(tail)
    return statements


def _strip_comment(line: str) -> str:
    # naive but safe enough: '--' inside string literals is rare in scripts;
    # quote-aware scan keeps it correct.
    out = []
    in_string = False
    i = 0
    while i < len(line):
        ch = line[i]
        if ch == "'":
            in_string = not in_string
        if not in_string and line.startswith("--", i):
            break
        out.append(ch)
        i += 1
    return "".join(out)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    shell = SerenaShell()
    if argv:
        with open(argv[0], encoding="utf-8") as handle:
            shell.run_script(handle.read())
        return 0
    print("Serena shell — .help for commands, .quit to leave")
    buffer = ""
    while shell.running:
        try:
            prompt = "serena> " if not buffer else "   ...> "
            line = input(prompt)
        except EOFError:
            break
        if not buffer and line.strip().startswith("."):
            shell.execute(line.strip())
            continue
        buffer += line + "\n"
        if ";" in line:
            shell.execute(buffer)
            buffer = ""
    return 0
