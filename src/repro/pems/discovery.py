"""Service discovery bus (simulated UPnP, Section 5.1 / Figure 1).

In the paper's prototype, Local Environment Resource Managers announce
their services over the network (UPnP) and the core Environment Resource
Manager discovers them.  This module simulates that protocol in-process
while preserving the dynamics that matter to the model:

* services announce themselves with a *lease* (a validity duration in
  clock instants) and renew it periodically — like UPnP's ``CACHE-CONTROL``;
* a service that leaves politely sends a *bye* announcement;
* a service that crashes simply stops renewing; its lease expires and the
  core ERM reaps it — this is how "sensors that are deactivated (or
  failing) [are] automatically removed" (Section 1.2).

The bus itself is a plain publish/subscribe channel; lease bookkeeping is
the subscriber's job (see :class:`repro.pems.erm.EnvironmentResourceManager`).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Callable

from repro.model.services import Service
from repro.obs.observe import Observability

__all__ = [
    "AnnouncementKind",
    "Announcement",
    "DiscoveryBus",
    "ANNOUNCEMENT_LOG_SIZE",
]

#: Retained announcements (diagnostics); mirrors the query processor's
#: FAILURE_LOG_SIZE.  A long-running PEMS with short leases publishes a
#: renewal per service every few instants — an unbounded log is a leak.
ANNOUNCEMENT_LOG_SIZE = 256


class AnnouncementKind(enum.Enum):
    """UPnP-style announcement types."""

    ALIVE = "alive"  # ssdp:alive — service available, lease (re)starts
    BYE = "bye"      # ssdp:byebye — service leaving gracefully


@dataclass(frozen=True)
class Announcement:
    """One discovery message on the bus."""

    kind: AnnouncementKind
    service: Service
    origin: str          # the announcing Local ERM's identifier
    lease: int = 0       # validity in instants (ALIVE only)
    instant: int = 0     # when the announcement was sent


Listener = Callable[[Announcement], None]


class DiscoveryBus:
    """In-process announcement channel between Local ERMs and the core ERM."""

    def __init__(
        self,
        log_size: int = ANNOUNCEMENT_LOG_SIZE,
        observe: "Observability | str | None" = None,
    ):
        self._listeners: list[Listener] = []
        self._log: deque[Announcement] = deque(maxlen=log_size)
        #: Observability facade; a standalone bus defaults to "off" (the
        #: migrated published/dropped counters still record), PEMS rebinds
        #: via :meth:`bind_observability`.
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        self._init_instruments()

    def _init_instruments(self) -> None:
        metrics = self.obs.metrics
        kind_help = "Discovery announcements published on the bus, by kind"
        self._kind_totals = {
            kind: metrics.counter(
                "serena_discovery_announcements_total", kind_help, kind=kind.value
            )
            for kind in AnnouncementKind
        }
        self._dropped_total = metrics.counter(
            "serena_discovery_dropped_total",
            "Announcements evicted from the bounded diagnostic log",
        )

    def bind_observability(self, observe: "Observability | str | None") -> None:
        """Re-home the bus's counters onto another facade (PEMS binds the
        bus onto the environment-wide observability); counts carry over."""
        carried = {k: c.value for k, c in self._kind_totals.items()}
        dropped = self._dropped_total.value
        self.obs = Observability.coerce(observe)
        self._init_instruments()
        for kind, count in carried.items():
            if count:
                self._kind_totals[kind].inc(count)
        if dropped:
            self._dropped_total.inc(dropped)

    def subscribe(self, listener: Listener) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: Listener) -> None:
        self._listeners = [l for l in self._listeners if l is not listener]

    def publish(self, announcement: Announcement) -> None:
        """Deliver to all subscribers, synchronously and in order."""
        self._kind_totals[announcement.kind].inc()
        if len(self._log) == self._log.maxlen:
            self._dropped_total.inc()
        self._log.append(announcement)
        for listener in list(self._listeners):
            listener(announcement)

    @property
    def log(self) -> list[Announcement]:
        """The most recent announcements (diagnostics and tests); at most
        the configured ``log_size``, oldest dropped first."""
        return list(self._log)

    @property
    def published_count(self) -> int:
        """Total announcements ever published (including dropped ones).
        Backed by the ``serena_discovery_announcements_total`` family."""
        return int(sum(c.value for c in self._kind_totals.values()))

    @property
    def dropped_count(self) -> int:
        """Announcements evicted from the capped log.  Backed by the
        ``serena_discovery_dropped_total`` counter."""
        return int(self._dropped_total.value)
