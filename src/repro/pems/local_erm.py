"""Local Environment Resource Managers (Figure 1).

A Local ERM runs "on" a device or a gateway: services register to it, and
it announces them on the discovery bus with a lease, renewing periodically
as long as the service stays registered.  Killing a Local ERM (or a single
service) without deregistration simulates a crash: announcements stop and
the core ERM reaps the services when their leases expire.
"""

from __future__ import annotations

from repro.continuous.time import VirtualClock
from repro.errors import UnknownServiceError
from repro.model.services import Service
from repro.pems.discovery import Announcement, AnnouncementKind, DiscoveryBus

__all__ = ["LocalEnvironmentResourceManager"]

#: Default announcement lease, in clock instants.
DEFAULT_LEASE = 6


class LocalEnvironmentResourceManager:
    """A distributed registration point for services.

    Parameters
    ----------
    name:
        Identifier of this Local ERM (e.g. ``"building-A"``).
    bus:
        The discovery bus shared with the core ERM.
    clock:
        The environment clock; the Local ERM renews leases on ticks.
    lease:
        Lease duration (instants) for this ERM's announcements.
    """

    def __init__(
        self,
        name: str,
        bus: DiscoveryBus,
        clock: VirtualClock,
        lease: int = DEFAULT_LEASE,
    ):
        self.name = name
        self.bus = bus
        self.clock = clock
        self.lease = lease
        self._services: dict[str, Service] = {}
        #: reference -> instant of the last ALIVE announcement; renewal
        #: cadence is anchored here, per registration, not on a global
        #: ``instant % cadence`` grid (a service registered just after a
        #: grid boundary with a short lease could expire unrenewed).
        self._last_announced: dict[str, int] = {}
        self._alive = True
        clock.on_tick(self._on_tick)

    # -- service registration (what devices call) --------------------------------

    def register(self, service: Service) -> None:
        """Register and immediately announce a service."""
        self._services[service.reference] = service
        self._announce(service)

    def deregister(self, reference: str) -> None:
        """Deregister a service and send a graceful bye."""
        try:
            service = self._services.pop(reference)
        except KeyError:
            raise UnknownServiceError(reference) from None
        self._last_announced.pop(reference, None)
        self.bus.publish(
            Announcement(
                AnnouncementKind.BYE, service, self.name, instant=self.clock.now
            )
        )

    @property
    def services(self) -> tuple[Service, ...]:
        return tuple(
            self._services[ref] for ref in sorted(self._services)
        )

    # -- failure injection ---------------------------------------------------------

    def crash(self) -> None:
        """Simulate a crash: stop renewing without any bye announcements.

        Registered services remain "up" from the core ERM's point of view
        until their leases expire.
        """
        self._alive = False

    def recover(self) -> None:
        """Come back after a crash; services are re-announced next tick."""
        self._alive = True
        # Forget renewal anchors so every service re-announces at the next
        # tick instead of waiting out the remainder of its cadence.
        self._last_announced.clear()

    # -- internals --------------------------------------------------------------------

    def _announce(self, service: Service) -> None:
        self._last_announced[service.reference] = self.clock.now
        self.bus.publish(
            Announcement(
                AnnouncementKind.ALIVE,
                service,
                self.name,
                lease=self.lease,
                instant=self.clock.now,
            )
        )

    def _on_tick(self, instant: int) -> None:
        """Renew leases at half-lease cadence (like UPnP re-advertisement),
        anchored at each service's own last announcement."""
        if not self._alive:
            return
        cadence = max(1, self.lease // 2)
        for reference in sorted(self._services):
            last = self._last_announced.get(reference)
            if last is None or instant - last >= cadence:
                self._announce(self._services[reference])

    def __repr__(self) -> str:
        status = "up" if self._alive else "crashed"
        return (
            f"LocalERM({self.name!r}, {len(self._services)} services, {status})"
        )
