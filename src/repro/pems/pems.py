"""The PEMS facade: one object wiring the Figure 1 architecture.

A :class:`PEMS` owns the environment clock, the discovery bus, the three
core modules (Environment Resource Manager, Extended Table Manager, Query
Processor) and the distributed Local Environment Resource Managers.  Tick
ordering follows the prototype's dataflow:

1. the core ERM processes lease expirations and drains async invocations,
2. stream sources (simulated devices) push new tuples into XD-Relations,
3. the query processor synchronizes discovery tables and evaluates every
   registered continuous query.

Local ERMs renew their announcements last; a renewal is visible to queries
from the next instant, like a real network advertisement would be.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.continuous.time import VirtualClock
from repro.model.environment import PervasiveEnvironment
from repro.model.invocation_policy import InvocationPolicy
from repro.model.services import ServiceRegistry
from repro.obs.observe import Observability
from repro.pems.discovery import DiscoveryBus
from repro.pems.erm import EnvironmentResourceManager
from repro.pems.local_erm import LocalEnvironmentResourceManager
from repro.pems.query_processor import QueryProcessor
from repro.pems.table_manager import ExtendedTableManager

__all__ = ["PEMS"]

#: A stream source is called once per tick, before queries are evaluated,
#: to push data from remote sources into XD-Relations.
StreamSource = Callable[[int], None]


class PEMS:
    """A Pervasive Environment Management System instance.

    ``engine`` selects the execution engine for continuous queries
    registered through the query processor — ``"shared"`` (default:
    incremental execution with cross-query subplan sharing and the
    quiescence-aware tick scheduler), ``"incremental"``, ``"columnar"``
    or ``"naive"`` (see :mod:`repro.continuous.continuous_query`);
    ``backend`` ("row"/"columnar") selects the physical delta
    representation the plans lower to.

    ``policy`` sets the fault-tolerance :class:`InvocationPolicy` on the
    service registry (retry backoff, quarantine threshold); the default
    is fully permissive — every invocation reaches the device, matching
    a policy-free system (see :mod:`repro.model.invocation_policy`).

    ``observe`` sets the observability mode (DESIGN.md §9): ``"metrics"``
    (default — always-on counters, gauges and per-tick histograms),
    ``"full"`` (metrics plus tick-trace spans) or ``"off"``; an existing
    :class:`~repro.obs.observe.Observability` instance is also accepted.
    Every component shares the one facade at :attr:`obs`; observation
    never changes evaluation results.
    """

    def __init__(
        self,
        engine: str = "shared",
        policy: InvocationPolicy | None = None,
        observe: "Observability | str | None" = None,
        backend: str = "row",
    ):
        self.obs = Observability.coerce(observe)
        self.clock = VirtualClock()
        self.bus = DiscoveryBus()
        self.bus.bind_observability(self.obs)
        registry = ServiceRegistry(policy=policy)
        registry.bind_observability(self.obs)
        self.environment = PervasiveEnvironment(registry)
        # Construction order fixes tick-listener order (see module doc).
        self.erm = EnvironmentResourceManager(
            self.bus, self.clock, self.environment.registry, observe=self.obs
        )
        self._sources: list[StreamSource] = []
        self.clock.on_tick(self._run_sources)
        self.tables = ExtendedTableManager(self.environment, self.clock)
        self.queries = QueryProcessor(
            self.environment,
            self.clock,
            self.erm,
            self.tables,
            engine=engine,
            observe=self.obs,
            backend=backend,
        )
        self._local_erms: dict[str, LocalEnvironmentResourceManager] = {}

    # -- topology -------------------------------------------------------------------

    def create_local_erm(
        self, name: str, lease: int | None = None
    ) -> LocalEnvironmentResourceManager:
        """Create a Local ERM attached to this PEMS's bus and clock."""
        if name in self._local_erms:
            return self._local_erms[name]
        kwargs = {} if lease is None else {"lease": lease}
        local = LocalEnvironmentResourceManager(name, self.bus, self.clock, **kwargs)
        self._local_erms[name] = local
        return local

    @property
    def local_erms(self) -> dict[str, LocalEnvironmentResourceManager]:
        return dict(self._local_erms)

    def declare_substitution(self, rule) -> None:
        """Declare a semantic substitution rule with the core ERM (see
        :mod:`repro.model.substitution`): when a provider of the rule's
        prototype is quarantined or its lease expires, the ERM sweep
        rebinds its invocations to the best-ranked live substitute."""
        self.erm.declare_substitution(rule)

    # -- stream sources --------------------------------------------------------------

    def add_stream_source(self, source: StreamSource) -> None:
        """Register a per-tick data producer (simulated device feed)."""
        self._sources.append(source)

    def _run_sources(self, instant: int) -> None:
        for source in list(self._sources):
            source(instant)

    # -- operation ---------------------------------------------------------------------

    def execute_ddl(self, text: str) -> list[object]:
        """Run Serena DDL against the table manager / environment."""
        return self.tables.execute_ddl(text)

    def tick(self) -> int:
        """Advance the environment by one instant (observed)."""
        obs = self.obs
        if not obs.metrics_on:
            return self.clock.tick()
        started = time.perf_counter()
        if obs.tracing_on:
            with obs.tracer.span("tick", self.clock.now + 1):
                instant = self.clock.tick()
        else:
            instant = self.clock.tick()
        obs.record_tick(time.perf_counter() - started)
        return instant

    def run(self, instants: int) -> int:
        """Advance the environment by ``instants`` instants."""
        now = self.clock.now
        for _ in range(instants):
            now = self.tick()
        return now

    def close(self) -> None:
        """Release long-lived resources (idempotent).

        A plain PEMS holds none — everything is in-process and owned by
        this object — but subclasses override: a
        :class:`~repro.fed.pems.FederatedPEMS` stops shard workers and
        detaches its gossip relay here.  Long-running hosts (the
        subscription server's shutdown path, benches) call ``close()``
        unconditionally instead of special-casing the federation.
        """

    def describe(self) -> str:
        """Catalog dump: prototypes, services, relations, queries."""
        lines = [self.environment.describe(), "-- Continuous queries --"]
        for name in sorted(self.queries.continuous_queries):
            cq = self.queries.continuous_queries[name]
            lines.append(f"{name}: {cq.query.render()}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"PEMS(instant={self.clock.now}, "
            f"services={len(self.environment.registry)}, "
            f"relations={len(self.environment.relation_names)})"
        )
