"""PEMS: the Pervasive Environment Management System prototype (Section 5,
Figure 1) — core ERM, Local ERMs, discovery bus, extended table manager and
query processor over a shared virtual clock."""

from repro.pems.discovery import Announcement, AnnouncementKind, DiscoveryBus
from repro.pems.erm import DiscoveryEvent, EnvironmentResourceManager
from repro.pems.local_erm import LocalEnvironmentResourceManager
from repro.pems.pems import PEMS
from repro.pems.query_processor import DiscoveryQuery, QueryFailure, QueryProcessor
from repro.pems.table_manager import ExtendedTableManager

__all__ = [
    "Announcement",
    "AnnouncementKind",
    "DiscoveryBus",
    "DiscoveryEvent",
    "DiscoveryQuery",
    "QueryFailure",
    "EnvironmentResourceManager",
    "ExtendedTableManager",
    "LocalEnvironmentResourceManager",
    "PEMS",
    "QueryProcessor",
]
