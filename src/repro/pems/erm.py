"""The core Environment Resource Manager (Figure 1, Section 5.1).

The core ERM "handles network issues for service discovery and remote
invocation": it listens to the discovery bus, maintains the global
:class:`ServiceRegistry` with lease bookkeeping, reaps services whose
leases expire, and performs invocations on behalf of the query processor —
synchronously or asynchronously (the paper's query processor handles
service invocations asynchronously, relying on the core ERM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.continuous.time import VirtualClock
from repro.model.invocation_policy import HealthState, InvocationPolicy
from repro.model.prototypes import Prototype
from repro.model.services import Service, ServiceRegistry
from repro.model.substitution import ResolvedBinding, SubstitutionRule
from repro.obs.observe import Observability
from repro.pems.discovery import Announcement, AnnouncementKind, DiscoveryBus

__all__ = ["EnvironmentResourceManager", "DiscoveryEvent"]


@dataclass(frozen=True)
class DiscoveryEvent:
    """A change in the set of available services.

    ``kind`` is one of ``"appeared"`` (registered, including re-admission
    after a quarantine), ``"left"`` (explicit BYE), ``"expired"`` (lease
    ran out), ``"quarantined"`` (removed by the fault-tolerance policy
    after crossing its failure threshold) or ``"rebound"`` (kept
    registered, but its invocations now route through a substitution
    binding — continuous queries over its prototypes must re-evaluate).
    """

    kind: str  # "appeared" | "left" | "expired" | "quarantined" | "rebound"
    service: Service
    instant: int


class EnvironmentResourceManager:
    """Global service discovery and invocation hub."""

    def __init__(
        self,
        bus: DiscoveryBus,
        clock: VirtualClock,
        registry: ServiceRegistry | None = None,
        policy: InvocationPolicy | None = None,
        observe: "Observability | str | None" = None,
    ):
        self.bus = bus
        self.clock = clock
        self.registry = (
            registry if registry is not None else ServiceRegistry(policy=policy)
        )
        #: Observability facade (PEMS passes its environment-wide one).
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        metrics = self.obs.metrics
        event_help = "Service discovery events emitted by the core ERM, by kind"
        self._event_totals = {
            kind: metrics.counter(
                "serena_discovery_events_total", event_help, kind=kind
            )
            for kind in ("appeared", "left", "expired", "quarantined", "rebound")
        }
        self._rebinds_total = {
            reason: metrics.counter(
                "serena_substitution_rebinds_total",
                "Substitution bindings installed or released, by trigger",
                reason=reason,
            )
            for reason in (
                "quarantine",
                "lease-expiry",
                "substitute-failed",
                "left",
            )
        }
        self._bindings_gauge = metrics.gauge(
            "serena_substitutions_active",
            "Active substitution bindings (prototype x reference pairs)",
        )
        self._available_gauge = metrics.gauge(
            "serena_services_available",
            "Services currently registered (invocable) in the environment",
        )
        self._quarantined_gauge = metrics.gauge(
            "serena_services_quarantined",
            "Services currently parked out of the registry by quarantine",
        )
        #: Invalidation signature of the last failover-table build: the
        #: table only depends on registry membership, score-relevant
        #: health stamps, the rule set and the active bindings, so across
        #: fault-free ticks it is simply reused (the ≤5% overhead budget).
        self._failover_sig: tuple | None = None
        self._expiry: dict[str, int] = {}
        # Quarantined services, removed from the registry but remembered so
        # they can be re-admitted once their quarantine backoff elapses:
        # reference -> (service, lease hint for re-registration).
        self._parked: dict[str, tuple[Service, int]] = {}
        self._listeners: list[Callable[[DiscoveryEvent], None]] = []
        self._pending: list[tuple[Prototype, str, dict, Callable]] = []
        self._events: list[DiscoveryEvent] = []
        bus.subscribe(self._on_announcement)
        clock.on_tick(self._on_tick)

    # -- observation ------------------------------------------------------------

    def on_discovery(self, listener: Callable[[DiscoveryEvent], None]) -> None:
        """Register a listener for service appearance/departure events
        (service discovery queries hang off this)."""
        self._listeners.append(listener)

    @property
    def events(self) -> list[DiscoveryEvent]:
        return list(self._events)

    def available(self, prototype: Prototype) -> list[Service]:
        """Currently available services implementing ``prototype``."""
        return self.registry.providers(prototype)

    @property
    def parked(self) -> frozenset[str]:
        """References currently quarantined out of the registry."""
        return frozenset(self._parked)

    # -- discovery protocol ----------------------------------------------------------

    def _emit(self, kind: str, service: Service) -> None:
        event = DiscoveryEvent(kind, service, self.clock.now)
        self._events.append(event)
        obs = self.obs
        if obs.metrics_on:
            counter = self._event_totals.get(kind)
            if counter is not None:
                counter.inc()
            self._available_gauge.set(len(self.registry))
            self._quarantined_gauge.set(len(self._parked))
        if obs.tracing_on:
            obs.tracer.event(
                "discovery.event",
                self.clock.now,
                kind=kind,
                service=service.reference,
            )
        for listener in list(self._listeners):
            listener(event)

    def _on_announcement(self, announcement: Announcement) -> None:
        service = announcement.service
        if announcement.kind is AnnouncementKind.ALIVE:
            if service.reference in self._parked:
                # A quarantined service keeps announcing (its Local ERM does
                # not know about the quarantine): refresh the parked copy and
                # lease hint, but keep it out of the registry until released.
                self._parked[service.reference] = (
                    service,
                    max(1, announcement.lease),
                )
                return
            new = service.reference not in self.registry
            self.registry.register(service)
            self._expiry[service.reference] = (
                announcement.instant + max(1, announcement.lease)
            )
            if new:
                self._emit("appeared", service)
        else:  # BYE
            if service.reference in self._parked:
                # Deregistered while quarantined: gone for good.
                del self._parked[service.reference]
                self.registry.health.forget(service.reference)
                return
            if service.reference in self.registry:
                subs = self.registry.substitutions
                if subs.enabled:
                    # An explicit goodbye releases any binding held *for*
                    # this reference; bindings routing *through* it are
                    # re-ranked by the next tick's sweep.
                    for prototype_name, reference in subs.bound_keys_for(
                        service.reference
                    ):
                        self._note_rebind(
                            subs.drop(
                                prototype_name,
                                reference,
                                announcement.instant,
                                "left",
                            )
                        )
                self.registry.unregister(service.reference)
                self._expiry.pop(service.reference, None)
                self._emit("left", service)

    def _on_tick(self, instant: int) -> None:
        health = self.registry.health
        subs = self.registry.substitutions
        if subs.enabled:
            # Substitution maintenance runs first so the binding and
            # failover tables every invocation at ``instant`` consults are
            # derived from strictly-earlier health stamps and then frozen
            # for the whole tick (§3.2 determinism).
            self._substitution_sweep(instant)
        # Quarantine sweep: a service whose failures crossed the policy
        # threshold is treated like a lease expiry — removed from the
        # registry (and hence from dynamic XD-Relation extents at the next
        # discovery sync) and parked for later re-admission.  With a
        # substitution binding available the service is instead healed in
        # place: it stays registered (discovery rows intact) and its
        # invocations route to the substitute.
        bound = subs.bound_references() if subs.enabled else frozenset()
        for reference in sorted(health.quarantined()):
            if reference not in self.registry:
                continue
            if reference in bound:
                continue  # already substituted in place
            if subs.enabled and self._try_rebind(reference, instant, "quarantine"):
                bound = subs.bound_references()
                continue
            service = self.registry.get(reference)
            lease_hint = max(1, self._expiry.get(reference, instant + 1) - instant)
            self.registry.unregister(reference)
            self._expiry.pop(reference, None)
            self._parked[reference] = (service, lease_hint)
            self._emit("quarantined", service)
        # Re-admission: once the quarantine backoff elapses, the service
        # re-enters on probation (SUSPECT with a clean failure count).
        for reference in sorted(self._parked):
            if not health.release_due(reference, instant):
                continue
            service, lease_hint = self._parked.pop(reference)
            health.release(reference)
            self.registry.register(service)
            self._expiry[reference] = instant + lease_hint
            self._emit("appeared", service)
        # Reap expired leases (crashed devices, partitioned Local ERMs).
        # A bound service's lease self-renews: the device behind it is
        # gone, but the binding keeps the reference alive (and its
        # discovery rows stable) until the substitute itself fails.
        for reference in sorted(self._expiry):
            if self._expiry[reference] < instant:
                if subs.enabled and (
                    reference in bound
                    or self._try_rebind(reference, instant, "lease-expiry")
                ):
                    bound = subs.bound_references()
                    self._expiry[reference] = instant + 1
                    continue
                service = self.registry.get(reference)
                self.registry.unregister(reference)
                del self._expiry[reference]
                self._emit("expired", service)
        # Drain asynchronous invocations queued during the previous instant.
        pending, self._pending = self._pending, []
        for prototype, reference, inputs, callback in pending:
            try:
                results = self.registry.invoke(prototype, reference, inputs, instant)
            except Exception as exc:  # delivered to the callback, not raised
                callback(None, exc)
            else:
                callback(results, None)

    # -- substitution (semantic rebinding) -------------------------------------------

    def declare_substitution(self, rule: SubstitutionRule) -> None:
        """Add a rule to the substitution relation (queryable via
        :meth:`substitution_report`; consulted by the tick sweep whenever
        a provider of the rule's prototype is quarantined or its lease
        expires)."""
        self.registry.substitutions.declare(rule)

    def substitution_report(self) -> dict:
        """Declared rules, active bindings, the current failover table and
        the recent rebind history (the ``.substitutions`` CLI surface)."""
        return self.registry.substitutions.report()

    def _note_rebind(self, record) -> None:
        if record is None:
            return
        obs = self.obs
        if obs.metrics_on:
            counter = self._rebinds_total.get(record.reason)
            if counter is not None:
                counter.inc()
            self._bindings_gauge.set(len(self.registry.substitutions.bindings))
        if obs.tracing_on:
            obs.tracer.event(
                "substitution.rebind",
                record.instant,
                prototype=record.prototype,
                service=record.reference,
                target=record.target,
                reason=record.reason,
            )

    def _candidate_plans(
        self, prototype: Prototype, reference: str
    ) -> list[ResolvedBinding]:
        """Resolved, ranked, cycle-free plans for ``(prototype, reference)``."""
        subs = self.registry.substitutions
        plans = subs.rank(
            self.registry, subs.resolve(self.registry, prototype, reference)
        )
        return [
            plan for plan in plans if not subs.routes_through(plan, reference)
        ]

    def _prototypes_of(self, reference: str) -> list[Prototype]:
        service = self.registry.get(reference)
        return sorted(service.prototypes, key=lambda p: p.name)

    def _try_rebind(self, reference: str, instant: int, reason: str) -> bool:
        """Install sticky bindings for every substitutable prototype of
        ``reference``; True iff at least one binding is now active (the
        service then stays registered instead of parking/expiring)."""
        subs = self.registry.substitutions
        if not subs.policy.sticky:
            return False
        covered = subs.prototype_names
        installed = False
        for prototype in self._prototypes_of(reference):
            if prototype.name not in covered:
                continue
            if subs.binding(prototype.name, reference) is not None:
                installed = True
                continue
            plans = self._candidate_plans(prototype, reference)
            if plans:
                self._note_rebind(subs.install(plans[0], instant, reason))
                installed = True
        if installed:
            self._emit("rebound", self.registry.get(reference))
        return installed

    def _binding_healthy(self, plan: ResolvedBinding) -> bool:
        health = self.registry.health
        for _, target in plan.targets:
            if target not in self.registry:
                return False
            if health.state(target) is HealthState.QUARANTINED:
                return False
        return True

    def _substitution_sweep(self, instant: int) -> None:
        subs = self.registry.substitutions
        # 1. Maintain active bindings: a binding whose substitute has left
        # or been quarantined is released; if another candidate exists it
        # takes over immediately (same sweep, same event), otherwise the
        # original falls through the normal quarantine/lease machinery
        # below — which self-heals it onto probation if it recovered.
        for key in sorted(subs.bindings):
            plan = subs.bindings[key]
            if self._binding_healthy(plan):
                continue
            prototype_name, reference = key
            self._note_rebind(
                subs.drop(prototype_name, reference, instant, "substitute-failed")
            )
            if reference not in self.registry:
                continue
            prototype = next(
                (
                    p
                    for p in self._prototypes_of(reference)
                    if p.name == prototype_name
                ),
                None,
            )
            if prototype is None:
                continue
            plans = self._candidate_plans(prototype, reference)
            if plans:
                self._note_rebind(
                    subs.install(plans[0], instant, "substitute-failed")
                )
                self._emit("rebound", self.registry.get(reference))
        # 2. Refresh the failover table: pre-scored candidate plans for
        # every substitutable (prototype, reference) pair, frozen for this
        # tick.  The registry's failure path walks these in order, which
        # is what answers the very instant a bound device crashes.
        if not subs.policy.failover:
            return
        # Everything a candidate score reads is covered by three cheap
        # version counters (plus the rule count); with latency-aware
        # ranking the EWMA deciles drift per tick, so don't cache then.
        signature = (
            self.registry.topology_version,
            self.registry.health.version,
            subs.epoch,
            len(subs.rules),
        )
        if (
            not subs.policy.latency_aware
            and signature == self._failover_sig
        ):
            return
        self._failover_sig = signature
        table: dict[tuple[str, str], tuple[ResolvedBinding, ...]] = {}
        covered = subs.prototype_names
        for service in sorted(self.registry, key=lambda s: s.reference):
            for prototype in sorted(service.prototypes, key=lambda p: p.name):
                if prototype.name not in covered:
                    continue
                key = (prototype.name, service.reference)
                if key in subs.bindings:
                    continue  # already durably rerouted
                plans = self._candidate_plans(prototype, service.reference)
                if plans:
                    table[key] = tuple(plans)
        subs.failover = table

    # -- invocation ----------------------------------------------------------------------

    def invoke(
        self,
        prototype: Prototype,
        reference: str,
        inputs: Mapping[str, object],
        instant: int | None = None,
    ) -> list[tuple]:
        """Synchronous remote invocation (Definition 1)."""
        at = self.clock.now if instant is None else instant
        return self.registry.invoke(prototype, reference, dict(inputs), at)

    def invoke_async(
        self,
        prototype: Prototype,
        reference: str,
        inputs: Mapping[str, object],
        callback: Callable[[list[tuple] | None, Exception | None], None],
    ) -> None:
        """Queue an invocation for the next tick; the callback receives
        either the result tuples or the failure."""
        self._pending.append((prototype, reference, dict(inputs), callback))

    def __repr__(self) -> str:
        return f"CoreERM({len(self.registry)} services @ {self.clock.now})"
