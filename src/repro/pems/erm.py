"""The core Environment Resource Manager (Figure 1, Section 5.1).

The core ERM "handles network issues for service discovery and remote
invocation": it listens to the discovery bus, maintains the global
:class:`ServiceRegistry` with lease bookkeeping, reaps services whose
leases expire, and performs invocations on behalf of the query processor —
synchronously or asynchronously (the paper's query processor handles
service invocations asynchronously, relying on the core ERM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.continuous.time import VirtualClock
from repro.model.invocation_policy import InvocationPolicy
from repro.model.prototypes import Prototype
from repro.model.services import Service, ServiceRegistry
from repro.obs.observe import Observability
from repro.pems.discovery import Announcement, AnnouncementKind, DiscoveryBus

__all__ = ["EnvironmentResourceManager", "DiscoveryEvent"]


@dataclass(frozen=True)
class DiscoveryEvent:
    """A change in the set of available services.

    ``kind`` is one of ``"appeared"`` (registered, including re-admission
    after a quarantine), ``"left"`` (explicit BYE), ``"expired"`` (lease
    ran out) or ``"quarantined"`` (removed by the fault-tolerance policy
    after crossing its failure threshold).
    """

    kind: str  # "appeared" | "left" | "expired" | "quarantined"
    service: Service
    instant: int


class EnvironmentResourceManager:
    """Global service discovery and invocation hub."""

    def __init__(
        self,
        bus: DiscoveryBus,
        clock: VirtualClock,
        registry: ServiceRegistry | None = None,
        policy: InvocationPolicy | None = None,
        observe: "Observability | str | None" = None,
    ):
        self.bus = bus
        self.clock = clock
        self.registry = (
            registry if registry is not None else ServiceRegistry(policy=policy)
        )
        #: Observability facade (PEMS passes its environment-wide one).
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        metrics = self.obs.metrics
        event_help = "Service discovery events emitted by the core ERM, by kind"
        self._event_totals = {
            kind: metrics.counter(
                "serena_discovery_events_total", event_help, kind=kind
            )
            for kind in ("appeared", "left", "expired", "quarantined")
        }
        self._available_gauge = metrics.gauge(
            "serena_services_available",
            "Services currently registered (invocable) in the environment",
        )
        self._quarantined_gauge = metrics.gauge(
            "serena_services_quarantined",
            "Services currently parked out of the registry by quarantine",
        )
        self._expiry: dict[str, int] = {}
        # Quarantined services, removed from the registry but remembered so
        # they can be re-admitted once their quarantine backoff elapses:
        # reference -> (service, lease hint for re-registration).
        self._parked: dict[str, tuple[Service, int]] = {}
        self._listeners: list[Callable[[DiscoveryEvent], None]] = []
        self._pending: list[tuple[Prototype, str, dict, Callable]] = []
        self._events: list[DiscoveryEvent] = []
        bus.subscribe(self._on_announcement)
        clock.on_tick(self._on_tick)

    # -- observation ------------------------------------------------------------

    def on_discovery(self, listener: Callable[[DiscoveryEvent], None]) -> None:
        """Register a listener for service appearance/departure events
        (service discovery queries hang off this)."""
        self._listeners.append(listener)

    @property
    def events(self) -> list[DiscoveryEvent]:
        return list(self._events)

    def available(self, prototype: Prototype) -> list[Service]:
        """Currently available services implementing ``prototype``."""
        return self.registry.providers(prototype)

    @property
    def parked(self) -> frozenset[str]:
        """References currently quarantined out of the registry."""
        return frozenset(self._parked)

    # -- discovery protocol ----------------------------------------------------------

    def _emit(self, kind: str, service: Service) -> None:
        event = DiscoveryEvent(kind, service, self.clock.now)
        self._events.append(event)
        obs = self.obs
        if obs.metrics_on:
            counter = self._event_totals.get(kind)
            if counter is not None:
                counter.inc()
            self._available_gauge.set(len(self.registry))
            self._quarantined_gauge.set(len(self._parked))
        if obs.tracing_on:
            obs.tracer.event(
                "discovery.event",
                self.clock.now,
                kind=kind,
                service=service.reference,
            )
        for listener in list(self._listeners):
            listener(event)

    def _on_announcement(self, announcement: Announcement) -> None:
        service = announcement.service
        if announcement.kind is AnnouncementKind.ALIVE:
            if service.reference in self._parked:
                # A quarantined service keeps announcing (its Local ERM does
                # not know about the quarantine): refresh the parked copy and
                # lease hint, but keep it out of the registry until released.
                self._parked[service.reference] = (
                    service,
                    max(1, announcement.lease),
                )
                return
            new = service.reference not in self.registry
            self.registry.register(service)
            self._expiry[service.reference] = (
                announcement.instant + max(1, announcement.lease)
            )
            if new:
                self._emit("appeared", service)
        else:  # BYE
            if service.reference in self._parked:
                # Deregistered while quarantined: gone for good.
                del self._parked[service.reference]
                self.registry.health.forget(service.reference)
                return
            if service.reference in self.registry:
                self.registry.unregister(service.reference)
                self._expiry.pop(service.reference, None)
                self._emit("left", service)

    def _on_tick(self, instant: int) -> None:
        health = self.registry.health
        # Quarantine sweep: a service whose failures crossed the policy
        # threshold is treated like a lease expiry — removed from the
        # registry (and hence from dynamic XD-Relation extents at the next
        # discovery sync) and parked for later re-admission.
        for reference in sorted(health.quarantined()):
            if reference not in self.registry:
                continue
            service = self.registry.get(reference)
            lease_hint = max(1, self._expiry.get(reference, instant + 1) - instant)
            self.registry.unregister(reference)
            self._expiry.pop(reference, None)
            self._parked[reference] = (service, lease_hint)
            self._emit("quarantined", service)
        # Re-admission: once the quarantine backoff elapses, the service
        # re-enters on probation (SUSPECT with a clean failure count).
        for reference in sorted(self._parked):
            if not health.release_due(reference, instant):
                continue
            service, lease_hint = self._parked.pop(reference)
            health.release(reference)
            self.registry.register(service)
            self._expiry[reference] = instant + lease_hint
            self._emit("appeared", service)
        # Reap expired leases (crashed devices, partitioned Local ERMs).
        for reference in sorted(self._expiry):
            if self._expiry[reference] < instant:
                service = self.registry.get(reference)
                self.registry.unregister(reference)
                del self._expiry[reference]
                self._emit("expired", service)
        # Drain asynchronous invocations queued during the previous instant.
        pending, self._pending = self._pending, []
        for prototype, reference, inputs, callback in pending:
            try:
                results = self.registry.invoke(prototype, reference, inputs, instant)
            except Exception as exc:  # delivered to the callback, not raised
                callback(None, exc)
            else:
                callback(results, None)

    # -- invocation ----------------------------------------------------------------------

    def invoke(
        self,
        prototype: Prototype,
        reference: str,
        inputs: Mapping[str, object],
        instant: int | None = None,
    ) -> list[tuple]:
        """Synchronous remote invocation (Definition 1)."""
        at = self.clock.now if instant is None else instant
        return self.registry.invoke(prototype, reference, dict(inputs), at)

    def invoke_async(
        self,
        prototype: Prototype,
        reference: str,
        inputs: Mapping[str, object],
        callback: Callable[[list[tuple] | None, Exception | None], None],
    ) -> None:
        """Queue an invocation for the next tick; the callback receives
        either the result tuples or the failure."""
        self._pending.append((prototype, reference, dict(inputs), callback))

    def __repr__(self) -> str:
        return f"CoreERM({len(self.registry)} services @ {self.clock.now})"
