"""The Query Processor (Figure 1, Section 5.1).

The query processor registers queries and executes them in a real-time
fashion: continuous queries are re-evaluated at every clock tick, and
*service discovery queries* continuously update designated XD-Relations so
that they represent the set of services implementing a given prototype
that are currently available through the core ERM — like the ``cameras``
and ``sensors`` tables of the temperature surveillance scenario, which new
sensors join "without the need to stop the continuous query execution".
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.algebra.query import Query, QueryResult
from repro.continuous.continuous_query import ContinuousQuery
from repro.continuous.time import VirtualClock
from repro.errors import SerenaError, UnknownAttributeError
from repro.exec.reoptimizer import FeedbackReoptimizer
from repro.exec.scheduler import TickScheduler
from repro.exec.shared import SharedPlanRegistry
from repro.model.environment import PervasiveEnvironment
from repro.model.services import Service
from repro.obs.observe import Observability
from repro.pems.erm import EnvironmentResourceManager
from repro.pems.table_manager import ExtendedTableManager

__all__ = ["QueryProcessor", "DiscoveryQuery"]

#: Builds the relation row for a discovered service; defaults to
#: ``{service_attribute: reference, **properties}`` restricted to the
#: relation's real attributes.
RowBuilder = Callable[[Service], Mapping[str, object]]


@dataclass(frozen=True)
class QueryFailure:
    """One continuous-query evaluation failure, captured by the tick loop.

    The live exception object is *not* retained: its traceback frames
    would pin executor/engine state alive for up to
    :data:`FAILURE_LOG_SIZE` entries.  Only the exception type, its
    message and its ``repr`` are stored.
    """

    instant: int
    query_name: str
    error_type: type[BaseException]
    error_message: str
    error_repr: str

    @classmethod
    def from_exception(
        cls, instant: int, query_name: str, exc: BaseException
    ) -> "QueryFailure":
        return cls(instant, query_name, type(exc), str(exc), repr(exc))


@dataclass
class DiscoveryQuery:
    """Keeps one XD-Relation in sync with the available services."""

    prototype_name: str
    relation_name: str
    service_attribute: str
    row_builder: RowBuilder | None = None

    def build_row(self, service: Service, schema) -> dict[str, object]:
        if self.row_builder is not None:
            return dict(self.row_builder(service))
        row: dict[str, object] = {self.service_attribute: service.reference}
        for name in schema.real_names:
            if name != self.service_attribute and name in service.properties:
                row[name] = service.properties[name]
        return row


#: How many evaluation failures the query processor retains (see
#: :attr:`QueryProcessor.failures`).
FAILURE_LOG_SIZE = 256


class QueryProcessor:
    """Registers and drives one-shot, continuous and discovery queries.

    Parameters
    ----------
    environment, clock, erm, tables:
        The PEMS components the processor is wired to (Figure 1).
    engine:
        Execution engine for registered continuous queries:
        ``"shared"`` (default — the delta-driven physical engine of
        :mod:`repro.exec` with cross-query subplan sharing and the
        quiescence-aware tick scheduler), ``"incremental"`` (the same
        physical engine, one private plan per query, every query
        evaluated every tick), ``"columnar"`` (incremental with the
        columnar backend) or ``"naive"`` (full re-evaluation each tick,
        the differential-testing oracle).
    backend:
        Physical representation the processor's plans lower to — ``"row"``
        or ``"columnar"``.  The shared-plan registry is built with this
        backend, so it applies to every ``engine="shared"`` query; it is
        also the default for per-query incremental plans.
    """

    def __init__(
        self,
        environment: PervasiveEnvironment,
        clock: VirtualClock,
        erm: EnvironmentResourceManager,
        tables: ExtendedTableManager,
        engine: str = "shared",
        observe: "Observability | str | None" = None,
        backend: str = "row",
    ):
        self.environment = environment
        self.clock = clock
        self.erm = erm
        self.tables = tables
        self.engine = engine
        self.backend = "columnar" if engine == "columnar" else backend
        #: Observability facade shared across the processor, its scheduler,
        #: shared-plan registry and every registered query's engine.
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        self._failures_total = self.obs.metrics.counter(
            "serena_query_failures_total",
            "Continuous-query evaluation failures captured by the tick loop",
        )
        self._registered_gauge = self.obs.metrics.gauge(
            "serena_queries_registered",
            "Continuous queries currently registered with the processor",
        )
        #: Shared-subplan registry for engine="shared" queries: one per
        #: processor, so co-registered queries share physical subtrees.
        #: Subclasses override :meth:`_make_registry` to substitute a
        #: registry with different lowering behaviour (federation).
        self.shared = self._make_registry(environment)
        #: Quiescence-aware scheduler for engine="shared" queries.
        self.scheduler = TickScheduler(environment, observe=self.obs)
        erm.on_discovery(self.scheduler.on_discovery_event)
        self._continuous: dict[str, ContinuousQuery] = {}
        #: Evaluation order (sorted names), maintained at register/
        #: deregister time instead of re-sorting every tick.
        self._order: list[str] = []
        self._discovery: list[DiscoveryQuery] = []
        self._rows_by_service: dict[tuple[str, str], tuple] = {}
        self._failures: deque[QueryFailure] = deque(maxlen=FAILURE_LOG_SIZE)
        #: Opt-in feedback re-optimizer (see :meth:`enable_reoptimization`).
        self.reoptimizer: FeedbackReoptimizer | None = None
        clock.on_tick(self._on_tick)

    def _make_registry(
        self, environment: PervasiveEnvironment
    ) -> SharedPlanRegistry:
        """The shared-plan registry this processor runs on."""
        return SharedPlanRegistry(
            environment, observe=self.obs, backend=self.backend
        )

    def _before_plan(self, instant: int) -> None:
        """Hook between discovery sync and query scheduling — the
        federated processor advances (or barriers) its shards here."""

    @property
    def failures(self) -> list[QueryFailure]:
        """Continuous-query evaluation failures captured by the tick loop.

        A failing query never stops the other queries or the clock: the
        failure is logged here and evaluation of that query resumes at the
        next instant (a pervasive system must outlive one bad sensor).

        Retention policy: only the most recent :data:`FAILURE_LOG_SIZE`
        failures are kept — a long-running PEMS with one flaky service
        would otherwise grow the log without bound.  Older entries are
        dropped silently; call :meth:`clear_failures` after handling a
        batch.
        """
        return list(self._failures)

    def clear_failures(self) -> None:
        """Discard all retained evaluation failures."""
        self._failures.clear()

    # -- one-shot queries ----------------------------------------------------------

    def execute(self, query: Query) -> QueryResult:
        """Evaluate a one-shot query at the current instant."""
        return query.evaluate(self.environment, self.clock.now)

    def execute_sql(self, text: str) -> QueryResult:
        """Compile a Serena SQL query and evaluate it now."""
        from repro.lang.sql import compile_sql  # lang layers on pems

        return self.execute(compile_sql(text, self.environment))

    def register_continuous_sql(
        self,
        text: str,
        name: str | None = None,
        keep_history: bool = False,
        engine: str | None = None,
        backend: str | None = None,
    ) -> ContinuousQuery:
        """Compile a Serena SQL query and register it as continuous."""
        from repro.lang.sql import compile_sql

        return self.register_continuous(
            compile_sql(text, self.environment, name),
            name,
            keep_history,
            engine,
            backend,
        )

    # -- continuous queries ----------------------------------------------------------

    def register_continuous(
        self,
        query: Query,
        name: str | None = None,
        keep_history: bool = False,
        engine: str | None = None,
        backend: str | None = None,
    ) -> ContinuousQuery:
        """Register a continuous query, evaluated at every tick from now on.

        ``engine`` and ``backend`` override the processor-wide settings
        for this query (a ``backend`` override only applies to private
        plans — ``engine="shared"`` queries run on the processor's
        registry, whose backend is fixed at construction).
        """
        key = name or query.name or f"query-{len(self._continuous) + 1}"
        if key in self._continuous:
            raise SerenaError(f"continuous query {key!r} already registered")
        effective = engine if engine is not None else self.engine
        if backend is None and effective in ("incremental", "shared"):
            backend = self.backend
        continuous = ContinuousQuery(
            query,
            self.environment,
            keep_history,
            engine=effective,
            shared=self.shared if effective == "shared" else None,
            observe=self.obs,
            backend=backend,
        )
        self._continuous[key] = continuous
        insort(self._order, key)
        if effective == "shared":
            self.scheduler.register(key, continuous)
        if self.reoptimizer is not None:
            self.reoptimizer.watch(key, continuous, self.clock.now)
        self._registered_gauge.set(len(self._continuous))
        return continuous

    def deregister_continuous(self, name: str) -> None:
        if name not in self._continuous:
            raise SerenaError(f"no continuous query named {name!r}")
        continuous = self._continuous.pop(name)
        self._order.remove(name)
        self.scheduler.deregister(name)
        if self.reoptimizer is not None:
            self.reoptimizer.unwatch(name)
        continuous.release()
        self._registered_gauge.set(len(self._continuous))

    def enable_reoptimization(self, **kwargs) -> FeedbackReoptimizer:
        """Turn on feedback-driven re-optimization (DESIGN.md §13).

        Already-registered swappable queries start being watched from the
        current instant; keyword arguments are forwarded to
        :class:`~repro.exec.reoptimizer.FeedbackReoptimizer` (divergence
        factor, observation window, cooldown, plan budget).  Idempotent
        only in the sense that calling it again replaces the reoptimizer
        and restarts every observation window.
        """
        kwargs.setdefault("observe", self.obs)
        self.reoptimizer = FeedbackReoptimizer(self.environment, **kwargs)
        for name, continuous in self._continuous.items():
            self.reoptimizer.watch(name, continuous, self.clock.now)
        return self.reoptimizer

    def continuous_query(self, name: str) -> ContinuousQuery:
        try:
            return self._continuous[name]
        except KeyError:
            raise SerenaError(f"no continuous query named {name!r}") from None

    @property
    def continuous_queries(self) -> dict[str, ContinuousQuery]:
        return dict(self._continuous)

    # -- service discovery queries -------------------------------------------------------

    def register_discovery(
        self,
        prototype_name: str,
        relation_name: str,
        service_attribute: str,
        row_builder: RowBuilder | None = None,
    ) -> DiscoveryQuery:
        """Keep ``relation_name`` synchronized with the services that
        implement ``prototype_name``.

        The relation must exist (create it with the table manager first);
        ``service_attribute`` is its service-reference column.  Rows for
        newly appeared services are inserted, rows of departed/expired
        services are deleted — while registered continuous queries keep
        running over the relation.
        """
        self.environment.prototype(prototype_name)  # must be declared
        schema = self.environment.schema(relation_name)
        if service_attribute not in schema.real_names:
            raise UnknownAttributeError(service_attribute, relation_name)
        discovery = DiscoveryQuery(
            prototype_name, relation_name, service_attribute, row_builder
        )
        self._discovery.append(discovery)
        self._sync_discovery(discovery)
        return discovery

    def _sync_discovery(self, discovery: DiscoveryQuery) -> None:
        """Diff the relation against the currently available services.

        All appeared rows land in a single journal insert, all departed
        rows in a single delete — one write batch per relation per tick.
        """
        prototype = self.environment.prototype(discovery.prototype_name)
        schema = self.environment.schema(discovery.relation_name)
        available = {s.reference: s for s in self.erm.available(prototype)}
        tracked = {
            ref: row
            for (rel, ref), row in self._rows_by_service.items()
            if rel == discovery.relation_name
        }
        appeared: list[tuple] = []
        for reference in sorted(set(available) - set(tracked)):
            row = discovery.build_row(available[reference], schema)
            values = schema.tuple_from_mapping(row)
            appeared.append(values)
            self._rows_by_service[(discovery.relation_name, reference)] = values
        departed: list[tuple] = []
        for reference in sorted(set(tracked) - set(available)):
            departed.append(tracked[reference])
            del self._rows_by_service[(discovery.relation_name, reference)]
        if appeared:
            self.tables.insert_tuples(discovery.relation_name, appeared)
        if departed:
            self.tables.delete_tuples(discovery.relation_name, departed)

    # -- the tick loop ---------------------------------------------------------------------

    def _on_tick(self, instant: int) -> None:
        """Per-instant work: sync discovery tables, then advance every
        registered continuous query — evaluating the ones the scheduler
        marked affected and carrying the rest forward in O(1).

        Ordering matters and mirrors the prototype: discovery updates are
        applied first so queries at instant τ see the service set of τ.
        While queries run, the service registry memoizes invocations per
        instant, so identical calls issued by different queries within
        one tick reach the device once.
        """
        if self.obs.tracing_on:
            with self.obs.tracer.span(
                "queries.tick", instant, queries=len(self._continuous)
            ):
                self._tick_queries(instant, tracing=True)
        else:
            self._tick_queries(instant, tracing=False)

    def _tick_queries(self, instant: int, tracing: bool) -> None:
        tracer = self.obs.tracer
        for discovery in self._discovery:
            self._sync_discovery(discovery)
        self._before_plan(instant)
        registry = self.environment.registry
        registry.begin_instant_memo(instant)
        try:
            if tracing:
                with tracer.span("scheduler.plan", instant) as plan_span:
                    affected = self.scheduler.plan(instant)
                    plan_span.attributes["affected"] = len(affected)
                    plan_span.attributes["scheduled"] = len(self.scheduler)
            else:
                affected = self.scheduler.plan(instant)
            for name in list(self._order):
                continuous = self._continuous.get(name)
                if continuous is None:  # deregistered by a listener mid-tick
                    continue
                scheduled = name in self.scheduler
                try:
                    if scheduled and name not in affected:
                        if tracing:
                            with tracer.span("query.carry", instant, query=name):
                                continuous.carry_forward(instant)
                        else:
                            continuous.carry_forward(instant)
                        self.scheduler.skipped(name)
                    else:
                        if tracing:
                            with tracer.span(
                                "query.evaluate", instant, query=name
                            ):
                                continuous.evaluate_at(instant)
                                self._trace_deltas(tracer, continuous, instant)
                        else:
                            continuous.evaluate_at(instant)
                        if scheduled:
                            self.scheduler.evaluated(name, True)
                        if self.reoptimizer is not None:
                            self.reoptimizer.observe(name, continuous, instant)
                except Exception as exc:
                    self._failures.append(
                        QueryFailure.from_exception(instant, name, exc)
                    )
                    self._failures_total.inc()
                    if scheduled:
                        self.scheduler.evaluated(name, False)
            if self.reoptimizer is not None:
                # After the evaluation loop: swapped plans take effect at
                # the *next* instant, from strictly earlier observations.
                self.reoptimizer.reoptimize(
                    self._continuous, self.scheduler, instant
                )
        finally:
            registry.end_instant_memo()

    @staticmethod
    def _trace_deltas(tracer, continuous: ContinuousQuery, instant: int) -> None:
        """Emit one ``executor.delta`` event per physical executor that
        changed at this instant (full-trace mode only)."""
        for executor in continuous.executors():
            if getattr(executor, "_instant", None) != instant:
                continue  # not advanced this instant (e.g. pruned subtree)
            change = executor.change
            if change.inserted or change.deleted:
                tracer.event(
                    "executor.delta",
                    instant,
                    operator=executor.node.symbol(),
                    executor=type(executor).__name__,
                    inserted=len(change.inserted),
                    deleted=len(change.deleted),
                )

    def __repr__(self) -> str:
        return (
            f"QueryProcessor({len(self._continuous)} continuous, "
            f"{len(self._discovery)} discovery queries)"
        )
