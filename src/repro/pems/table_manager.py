"""The Extended Table Manager (Figure 1, Section 5.1).

The Extended Table Manager owns the XD-Relations of the environment: it
creates them (from schemas, or from Serena DDL via
:meth:`ExtendedTableManager.execute_ddl`) and manages their data —
insertion and deletion of tuples, time-stamped with the environment clock.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.continuous.time import VirtualClock
from repro.continuous.xdrelation import XDRelation
from repro.errors import EnvironmentError_
from repro.model.environment import PervasiveEnvironment
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["ExtendedTableManager"]


class ExtendedTableManager:
    """Creates and updates the XD-Relations of a pervasive environment."""

    def __init__(self, environment: PervasiveEnvironment, clock: VirtualClock):
        self.environment = environment
        self.clock = clock

    # -- relation lifecycle ------------------------------------------------------

    def create_relation(
        self,
        schema: ExtendedRelationSchema,
        infinite: bool = False,
        name: str | None = None,
    ) -> XDRelation:
        """Create an empty XD-Relation and register it in the environment."""
        key = name or schema.name
        if not key:
            raise EnvironmentError_("relation needs a name")
        if key in self.environment:
            raise EnvironmentError_(f"relation {key!r} already exists")
        relation = XDRelation(schema.with_name(key), infinite=infinite)
        self.environment.add_relation(relation, key)
        return relation

    def execute_ddl(self, text: str) -> list[object]:
        """Execute Serena DDL statements (Tables 1–2 syntax).

        Prototypes are declared in the environment; extended relations and
        streams are created; ``SERVICE ... IMPLEMENTS`` statements are
        checked against the declared prototypes and returned as
        declarations for the caller to bind to implementations.

        Returns the created/declared objects in statement order.
        """
        from repro.lang.ddl import execute_ddl  # local import: lang layers on pems

        return execute_ddl(text, self)

    def drop_relation(self, name: str) -> None:
        self.environment.remove_relation(name)

    def relation(self, name: str) -> XDRelation:
        stored = self.environment.relation(name)
        if not isinstance(stored, XDRelation):
            raise EnvironmentError_(
                f"relation {name!r} is not managed by the table manager"
            )
        return stored

    # -- data management ------------------------------------------------------------

    def insert(
        self, name: str, rows: Iterable[Mapping[str, object]], instant: int | None = None
    ) -> int:
        """Insert rows (name→value mappings over real attributes) now."""
        at = self.clock.now if instant is None else instant
        return self.relation(name).insert_mappings(rows, at)

    def delete(
        self, name: str, rows: Iterable[Mapping[str, object]], instant: int | None = None
    ) -> int:
        at = self.clock.now if instant is None else instant
        return self.relation(name).delete_mappings(rows, at)

    def insert_tuples(
        self, name: str, tuples: Iterable[tuple], instant: int | None = None
    ) -> int:
        at = self.clock.now if instant is None else instant
        return self.relation(name).insert(tuples, at)

    def delete_tuples(
        self, name: str, tuples: Iterable[tuple], instant: int | None = None
    ) -> int:
        at = self.clock.now if instant is None else instant
        return self.relation(name).delete(tuples, at)

    def __repr__(self) -> str:
        return f"ExtendedTableManager({len(self.environment.relation_names)} relations)"
