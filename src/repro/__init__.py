"""Serena: a service-enabled algebra for pervasive environments.

A from-scratch reproduction of *"A Simple (yet Powerful) Algebra for
Pervasive Environments"* (Gripay, Laforest, Petit — EDBT 2010): the data
model of relational pervasive environments (X-Relations with virtual
attributes and binding patterns), the Serena algebra with realization and
continuous operators, query equivalence via action sets, rewriting rules,
and the PEMS prototype over a simulated pervasive environment.

Quickstart::

    from repro import algebra
    from repro.devices.scenario import build_temperature_surveillance

    scenario = build_temperature_surveillance()
    env = scenario.environment
    q = (
        algebra.scan(env, "sensors")
        .invoke("getTemperature")
        .select(algebra.col("location").eq("office"))
        .project("sensor", "temperature")
        .query("office-temperatures")
    )
    print(q.evaluate(env).relation.to_table())

See README.md and the ``examples/`` directory for full scenarios.
"""

from repro import algebra, continuous, errors, model
from repro.algebra import Query, col, scan
from repro.model import (
    Attribute,
    BindingPattern,
    DataType,
    ExtendedRelationSchema,
    PervasiveEnvironment,
    Prototype,
    RelationSchema,
    Service,
    ServiceRegistry,
    XRelation,
)

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "BindingPattern",
    "DataType",
    "ExtendedRelationSchema",
    "PervasiveEnvironment",
    "Prototype",
    "Query",
    "RelationSchema",
    "Service",
    "ServiceRegistry",
    "XRelation",
    "__version__",
    "algebra",
    "col",
    "continuous",
    "errors",
    "model",
    "scan",
]
