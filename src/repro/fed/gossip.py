"""Cross-zone discovery: the gossip relay between bus segments.

Zone Local ERMs announce on their zone's bus segment.  The relay
subscribes to every zone segment and synchronously republishes each
announcement on the coordinator segment, so the coordinator ERM — the
global discovery and invocation authority — observes exactly the
announcement stream a single shared bus would carry, in the same
per-service order (each service is owned by one zone, and each segment
preserves its own publish order).

Relaying is strictly zone → coordinator: the coordinator segment is
never relayed back, so no announcement loops are possible, and each
zone's ERM shard keeps its zone-local view (that locality is the shard).
"""

from __future__ import annotations

from typing import Iterable

from repro.pems.discovery import Announcement, DiscoveryBus

__all__ = ["GossipRelay"]


class GossipRelay:
    """Forwards every zone-segment announcement to the coordinator bus."""

    def __init__(
        self,
        coordinator: DiscoveryBus,
        segments: Iterable[DiscoveryBus],
    ):
        self.coordinator = coordinator
        self.segments = tuple(segments)
        self.relayed = 0
        for segment in self.segments:
            if segment is coordinator:
                continue
            segment.subscribe(self._relay)

    def _relay(self, announcement: Announcement) -> None:
        self.relayed += 1
        self.coordinator.publish(announcement)

    def __repr__(self) -> str:
        return (
            f"GossipRelay({len(self.segments)} segments, "
            f"{self.relayed} relayed)"
        )
