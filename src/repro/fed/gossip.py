"""Cross-zone discovery: the gossip relay between bus segments.

Zone Local ERMs announce on their zone's bus segment.  The relay
subscribes to every zone segment and synchronously republishes each
announcement on the coordinator segment, so the coordinator ERM — the
global discovery and invocation authority — observes exactly the
announcement stream a single shared bus would carry, in the same
per-service order (each service is owned by one zone, and each segment
preserves its own publish order).

Relaying is strictly zone → coordinator: the coordinator segment is
never relayed back, so no announcement loops are possible, and each
zone's ERM shard keeps its zone-local view (that locality is the shard).
"""

from __future__ import annotations

from typing import Iterable

from repro.pems.discovery import Announcement, DiscoveryBus

__all__ = ["GossipRelay"]


class GossipRelay:
    """Forwards every zone-segment announcement to the coordinator bus."""

    def __init__(
        self,
        coordinator: DiscoveryBus,
        segments: Iterable[DiscoveryBus],
    ):
        self.coordinator = coordinator
        self.segments = tuple(segments)
        self.relayed = 0
        self._closed = False
        # One bound callback object: DiscoveryBus.unsubscribe matches by
        # identity, and each ``self._relay`` access binds a fresh method.
        self._callback = self._relay
        for segment in self.segments:
            if segment is coordinator:
                continue
            segment.subscribe(self._callback)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unsubscribe from every zone segment (idempotent).

        Without this, tearing down a federation leaves the relay callback
        registered on every zone bus: any later announcement on a segment
        keeps republishing onto the dead coordinator bus and pins the
        whole federation object graph alive.  ``FederatedPEMS.close``
        calls it on shutdown.
        """
        if self._closed:
            return
        self._closed = True
        for segment in self.segments:
            if segment is self.coordinator:
                continue
            segment.unsubscribe(self._callback)

    def _relay(self, announcement: Announcement) -> None:
        if self._closed:  # a listener list snapshot may still deliver
            return
        self.relayed += 1
        self.coordinator.publish(announcement)

    def __repr__(self) -> str:
        state = ", closed" if self._closed else ""
        return (
            f"GossipRelay({len(self.segments)} segments, "
            f"{self.relayed} relayed{state})"
        )
