"""The federated query processor: lockstep shards and the parallel barrier.

Extends the coordinator :class:`~repro.pems.query_processor.QueryProcessor`
in exactly two places:

* :meth:`_make_registry` substitutes the
  :class:`~repro.fed.registry.FederatedPlanRegistry`, so scatterable
  subtrees lower into zone shards instead of the coordinator;
* :meth:`_before_plan` advances every shard to the current instant
  between discovery sync and query scheduling — the per-tick barrier.

Three shard-execution modes share that barrier:

* ``parallelism=None`` (lockstep) — shards advance eagerly, one after
  another, on the coordinator thread.  Deterministic by construction and
  tuple-identical to the ``shared`` engine.
* ``parallelism="threads"`` — shards advance concurrently on a thread
  pool and the barrier joins them.  Zone state is zone-confined and the
  coordinator only reads shard results after the join, so the outcome is
  the same as lockstep regardless of interleaving.
* ``parallelism="processes"`` — each zone lives in a forked worker
  process.  Per barrier the coordinator ships each worker the journal
  slice of its partitions since the last barrier, the worker replays it,
  advances its shard executors, and ships back per-subtree deltas, which
  accumulate (composed across carried instants) until the owning gather
  consumes them.  Workers fork at the first parallel barrier; the
  registry freezes then — queries must be registered before it.

In every mode the barrier runs *before* the scheduler plans the tick, so
shard results for instant τ are (or will deterministically be) the ones
a single shared engine would compute at τ over the same journals.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Mapping

from repro.continuous.time import VirtualClock
from repro.errors import SerenaError
from repro.exec.shared import SharedPlanRegistry
from repro.fed.registry import FederatedPlanRegistry
from repro.model.environment import PervasiveEnvironment
from repro.obs.observe import Observability
from repro.pems.erm import EnvironmentResourceManager
from repro.pems.query_processor import QueryProcessor

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fed.table_manager import FederatedTableManager
    from repro.fed.zone import Zone

__all__ = ["FederatedQueryProcessor"]

PARALLELISM_MODES = (None, "threads", "processes")


def _worker_loop(zone: "Zone", conn) -> None:
    """Runs in a forked shard worker: replay journal slices, advance the
    zone's executors, ship the per-subtree deltas back."""
    while True:
        message = conn.recv()
        if message is None:
            conn.close()
            return
        instant, slices = message
        zone.apply_slices(slices)
        zone.advance(instant)
        conn.send(zone.shard_deltas())


class FederatedQueryProcessor(QueryProcessor):
    """Drives coordinator queries over zone shards."""

    def __init__(
        self,
        environment: PervasiveEnvironment,
        clock: VirtualClock,
        erm: EnvironmentResourceManager,
        tables: "FederatedTableManager",
        zones: Mapping[str, "Zone"],
        engine: str = "shared",
        observe: "Observability | str | None" = None,
        backend: str = "row",
        parallelism: str | None = None,
    ):
        if parallelism not in PARALLELISM_MODES:
            raise SerenaError(
                f"unknown parallelism {parallelism!r}; "
                f"expected one of {PARALLELISM_MODES!r}"
            )
        # Set before super().__init__: the base constructor calls
        # _make_registry, which needs the zones.
        self._zones = dict(zones)
        self.parallelism = parallelism
        self._pool: ThreadPoolExecutor | None = None
        self._workers: dict[str, tuple] | None = None
        #: Zone → relation → journal ship mark (same discipline as
        #: ScanExec._consumed: entries at or above the mark may still
        #: change through same-instant writes and are re-sent; the worker
        #: applies them idempotently).
        self._marks: dict[str, dict[str, int]] = {}
        self._fork_relations: frozenset[str] = frozenset()
        self._shut_down = False
        super().__init__(
            environment,
            clock,
            erm,
            tables,
            engine=engine,
            observe=observe,
            backend=backend,
        )

    def _make_registry(
        self, environment: PervasiveEnvironment
    ) -> SharedPlanRegistry:
        return FederatedPlanRegistry(
            environment,
            self._zones,
            self.tables,
            observe=self.obs,
            backend=self.backend,
        )

    # -- the per-tick barrier ----------------------------------------------------

    def _before_plan(self, instant: int) -> None:
        if self._shut_down:
            return
        if self.parallelism is None:
            self._advance_lockstep(instant)
        elif self.parallelism == "threads":
            self._advance_threads(instant)
        else:
            self._advance_processes(instant)
        for zone in self._zones.values():
            zone.sync_gauges()

    def _advance_lockstep(self, instant: int) -> None:
        tracing = self.obs.tracing_on
        for name in sorted(self._zones):
            zone = self._zones[name]
            if tracing:
                with self.obs.tracer.span(
                    "shard.advance", instant, zone=name
                ):
                    zone.advance(instant)
            else:
                zone.advance(instant)

    def _advance_threads(self, instant: int) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=max(1, len(self._zones)),
                thread_name_prefix="shard",
            )
        ordered = [self._zones[name] for name in sorted(self._zones)]
        if self.obs.tracing_on:
            with self.obs.tracer.span(
                "shard.barrier", instant, mode="threads", zones=len(ordered)
            ):
                self._join_threads(ordered, instant)
        else:
            self._join_threads(ordered, instant)

    def _join_threads(self, zones, instant: int) -> None:
        futures = [
            self._pool.submit(zone.advance, instant) for zone in zones
        ]
        for future in futures:  # the barrier: propagate the first failure
            future.result()

    def _advance_processes(self, instant: int) -> None:
        if self._workers is None:
            self._fork_workers(instant)
        if self.obs.tracing_on:
            with self.obs.tracer.span(
                "shard.barrier",
                instant,
                mode="processes",
                zones=len(self._workers),
            ):
                self._barrier_processes(instant)
        else:
            self._barrier_processes(instant)

    def _fork_workers(self, instant: int) -> None:
        """Fork one persistent worker per zone.  The fork inherits the
        full coordinator state — partitions, shard executors, journals —
        so only writes after this instant need shipping.  From here on
        the coordinator's own zone executors are stale and unused, and
        the registry refuses new scattered subtrees."""
        ctx = multiprocessing.get_context("fork")
        self._workers = {}
        for name in sorted(self._zones):
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_loop,
                args=(self._zones[name], child_conn),
                daemon=True,
                name=f"shard-{name}",
            )
            process.start()
            child_conn.close()
            self._workers[name] = (process, parent_conn)
            # The worker already holds every write ≤ this instant; the
            # first slice re-sends this instant's writes, which XD-Relation
            # journaling applies idempotently.
            self._marks[name] = {
                relation: instant for relation in self.tables.federated
            }
        # Relations created after the fork don't exist in the workers (and
        # can't be scattered either — the registry is frozen): never ship.
        self._fork_relations = frozenset(self.tables.federated)
        self.shared.freeze_for_workers()

    def _barrier_processes(self, instant: int) -> None:
        registry = self.shared
        for name, (_, conn) in self._workers.items():
            conn.send((instant, self._slices_for(name, instant)))
        for name, (_, conn) in self._workers.items():
            deltas = conn.recv()
            registry.install_remote(name, deltas)

    def _slices_for(self, zone_name: str, instant: int) -> dict:
        slices: dict[str, list] = {}
        marks = self._marks[zone_name]
        for name in self._fork_relations:
            partition = self.tables.federated[name].partitions[zone_name]
            chunk = partition.changes_between(marks[name], instant)
            if chunk:
                slices[name] = chunk
            last = partition.last_instant
            marks[name] = last if last <= instant else instant + 1
        return slices

    # -- lifecycle ---------------------------------------------------------------

    def shutdown(self) -> None:
        """Stop the thread pool / worker processes (idempotent)."""
        if self._shut_down:
            return
        self._shut_down = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._workers is not None:
            for _, conn in self._workers.values():
                try:
                    conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            for process, conn in self._workers.values():
                process.join(timeout=5)
                conn.close()
            self._workers = None

    def __repr__(self) -> str:
        mode = self.parallelism or "lockstep"
        return (
            f"FederatedQueryProcessor({len(self._zones)} zones, {mode}, "
            f"{len(self._continuous)} continuous queries)"
        )
