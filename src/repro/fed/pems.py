"""The federated PEMS facade: zones behind the single-PEMS API.

A :class:`FederatedPEMS` exposes the exact :class:`~repro.pems.pems.PEMS`
surface — ``create_local_erm``, ``tables``, ``queries``, ``tick`` — so
scenarios and the CLI switch between the shared engine and the sharded
federation with one constructor call.  Internally the environment is
partitioned into ``zones`` lockstep shards on the one virtual clock:

* services route to zones by consistent hashing on the service
  reference (via :class:`~repro.fed.local_erm.FederatedLocalERM`);
* relations are partitioned per zone and unioned by
  :class:`~repro.fed.relation.FederatedRelation`;
* scatterable query subtrees run inside zone registries and are merged
  by gather executors (:mod:`repro.fed.registry`);
* cross-zone discovery rides the :class:`~repro.fed.gossip.GossipRelay`
  from zone bus segments onto the coordinator bus.

Tick-listener order mirrors the single PEMS — coordinator ERM, zone
ERMs, stream sources, query processor, Local ERMs — so lockstep
federation is tuple-identical to the ``shared`` engine on the same
scenario (the differential tests pin this over 55 ticks).
"""

from __future__ import annotations

from typing import Mapping

from repro.continuous.time import VirtualClock
from repro.errors import SerenaError
from repro.fed.gossip import GossipRelay
from repro.fed.hashing import HashRing
from repro.fed.local_erm import FederatedLocalERM
from repro.fed.query_processor import FederatedQueryProcessor
from repro.fed.table_manager import FederatedTableManager
from repro.fed.zone import Zone
from repro.model.environment import PervasiveEnvironment
from repro.model.invocation_policy import InvocationPolicy
from repro.model.services import ServiceRegistry
from repro.obs.observe import Observability
from repro.pems.discovery import DiscoveryBus
from repro.pems.erm import EnvironmentResourceManager
from repro.pems.pems import PEMS, StreamSource

__all__ = ["FederatedPEMS"]


class FederatedPEMS(PEMS):
    """A PEMS partitioned into lockstep zones.

    Parameters
    ----------
    zones:
        Zone count (named ``zone-0`` … ``zone-N``) or an iterable of zone
        names.
    parallelism:
        Shard execution mode: ``None`` (lockstep, default), ``"threads"``
        or ``"processes"`` — see
        :class:`~repro.fed.query_processor.FederatedQueryProcessor`.
    partition_by:
        Relation name → partition attribute, overriding the default
        first-SERVICE-attribute partitioning.
    """

    def __init__(
        self,
        zones: int | list[str] | tuple[str, ...] = 4,
        policy: InvocationPolicy | None = None,
        observe: "Observability | str | None" = None,
        backend: str = "row",
        parallelism: str | None = None,
        partition_by: Mapping[str, str] | None = None,
    ):
        if isinstance(zones, int):
            if zones < 1:
                raise SerenaError("a federation needs at least one zone")
            zone_names = tuple(f"zone-{i}" for i in range(zones))
        else:
            zone_names = tuple(zones)
        # Deliberately no super().__init__: same wiring, federated parts.
        # Construction order fixes tick-listener order (see module doc).
        self.obs = Observability.coerce(observe)
        self.clock = VirtualClock()
        self.bus = DiscoveryBus()
        self.bus.bind_observability(self.obs)
        registry = ServiceRegistry(policy=policy)
        registry.bind_observability(self.obs)
        self.environment = PervasiveEnvironment(registry)
        self.erm = EnvironmentResourceManager(
            self.bus, self.clock, self.environment.registry, observe=self.obs
        )
        self.ring = HashRing(zone_names)
        self.zones: dict[str, Zone] = {
            name: Zone(
                name,
                self.clock,
                policy=policy,
                observe=self.obs,
                backend=backend,
            )
            for name in zone_names
        }
        self.gossip = GossipRelay(
            self.bus, (zone.bus for zone in self.zones.values())
        )
        self._sources: list[StreamSource] = []
        self.clock.on_tick(self._run_sources)
        self.tables = FederatedTableManager(
            self.environment,
            self.clock,
            self.zones,
            self.ring,
            partition_by=partition_by,
        )
        self.queries = FederatedQueryProcessor(
            self.environment,
            self.clock,
            self.erm,
            self.tables,
            self.zones,
            engine="shared",
            observe=self.obs,
            backend=backend,
            parallelism=parallelism,
        )
        self._local_erms: dict[str, FederatedLocalERM] = {}

    # -- topology -------------------------------------------------------------------

    def create_local_erm(
        self, name: str, lease: int | None = None
    ) -> FederatedLocalERM:
        """A Local ERM facade routing registrations to zone shards."""
        if name in self._local_erms:
            return self._local_erms[name]
        local = FederatedLocalERM(name, self, lease=lease)
        self._local_erms[name] = local
        return local

    # -- introspection --------------------------------------------------------------

    @property
    def parallelism(self) -> str | None:
        return self.queries.parallelism

    def shard_summary(self) -> dict:
        """The ``.shards`` payload: per-zone state plus the scattered
        subtrees currently live at the coordinator."""
        report = self.erm.substitution_report()
        return {
            "zones": [
                self.zones[name].summary() for name in sorted(self.zones)
            ],
            "parallelism": self.parallelism,
            "scattered": self.queries.shared.scatter_summary(),
            "gossip_relayed": self.gossip.relayed,
            # Substitution happens at the coordinator registry (invocation
            # hub), but its candidates arrive from any zone via gossip —
            # surface the active bindings next to the shard state.
            "substitutions": report["bindings"],
        }

    def shutdown(self) -> None:
        """Stop shard workers/threads (idempotent; lockstep is a no-op)."""
        self.queries.shutdown()

    def close(self) -> None:
        """Full teardown (idempotent): stop shard workers/threads *and*
        detach the gossip relay from every zone bus segment, so no relay
        callback outlives the federation.  The subscription server's
        shutdown path calls this."""
        self.shutdown()
        self.gossip.close()

    def __repr__(self) -> str:
        mode = self.parallelism or "lockstep"
        return (
            f"FederatedPEMS({len(self.zones)} zones, {mode}, "
            f"instant={self.clock.now}, "
            f"services={len(self.environment.registry)}, "
            f"relations={len(self.environment.relation_names)})"
        )
