"""Deterministic consistent hashing for zone routing.

Services are routed to shards by consistent hashing on the service
reference; relation rows by hashing their partition-attribute value (or
the whole tuple when no partition attribute exists).  The ring must be
deterministic across processes and runs — the parallel shard executor
forks workers that re-derive routing independently — so it is built on
SHA-1 of a stable textual token, never on Python's salted ``hash()``.

Virtual nodes smooth the key distribution: each zone owns
:data:`VIRTUAL_NODES` points on the ring, so removing or adding a zone
moves only the keys of the affected arc (the classic consistent-hashing
property), and small zone counts still split keys roughly evenly.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from repro.errors import SerenaError

__all__ = ["HashRing", "VIRTUAL_NODES", "stable_token"]

#: Ring points per zone.
VIRTUAL_NODES = 32


def stable_token(value: object) -> str:
    """A deterministic text for a routing key.

    Strings route as themselves; anything else routes by ``repr``, which
    is stable across processes for the primitive types relation tuples
    may hold (numbers, booleans, None, nested tuples of those).
    """
    return value if isinstance(value, str) else repr(value)


class HashRing:
    """A consistent-hash ring over a fixed set of zone names."""

    __slots__ = ("zones", "_points", "_keys")

    def __init__(self, zones: Iterable[str], virtual_nodes: int = VIRTUAL_NODES):
        self.zones = tuple(zones)
        if not self.zones:
            raise SerenaError("a hash ring needs at least one zone")
        if len(set(self.zones)) != len(self.zones):
            raise SerenaError(f"duplicate zone names: {self.zones!r}")
        points = sorted(
            (self._point(f"{zone}#{replica}"), zone)
            for zone in self.zones
            for replica in range(virtual_nodes)
        )
        self._points = tuple(points)
        self._keys = tuple(h for h, _ in points)

    @staticmethod
    def _point(token: str) -> int:
        digest = hashlib.sha1(token.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def zone_for(self, key: object) -> str:
        """The zone owning ``key`` (first ring point at or after its hash)."""
        h = self._point(stable_token(key))
        index = bisect.bisect_left(self._keys, h) % len(self._points)
        return self._points[index][1]

    def __len__(self) -> int:
        return len(self.zones)

    def __repr__(self) -> str:
        return f"HashRing({len(self.zones)} zones, {len(self._points)} points)"
