"""One federation zone: an ERM shard plus a query-processor shard.

A zone owns

* its own :class:`~repro.pems.discovery.DiscoveryBus` segment — the
  services of the zone announce here, and the gossip relay forwards the
  segment to the coordinator bus (see :mod:`repro.fed.gossip`);
* its own :class:`~repro.pems.erm.EnvironmentResourceManager` over a
  zone-local service registry — the ERM shard, holding exactly the
  zone's services with their lease bookkeeping;
* a zone :class:`~repro.model.environment.PervasiveEnvironment` holding
  the zone's relation *partitions* under their federated names, so a
  scattered subplan's scan resolves to the partition;
* a zone :class:`~repro.exec.shared.SharedPlanRegistry` — the
  query-processor shard: scattered subtrees lower here once per zone and
  are shared across all coordinator queries that lease them.

``advance`` ticks every registered shard executor at an instant with a
per-instant memoized context; the parallel shard executor calls it from
worker threads (zone state is zone-confined, so zones advance
concurrently without locks) or from forked worker processes, where
``apply_slices`` first replays the coordinator's partition writes into
the worker's journal replicas.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.algebra.context import EvaluationContext
from repro.continuous.time import VirtualClock
from repro.exec.delta import Delta
from repro.exec.executors import Executor
from repro.exec.shared import SharedPlanRegistry
from repro.model.environment import PervasiveEnvironment
from repro.model.invocation_policy import InvocationPolicy
from repro.model.services import ServiceRegistry
from repro.obs.observe import Observability
from repro.pems.discovery import DiscoveryBus
from repro.pems.erm import EnvironmentResourceManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["Zone"]

#: One journal slice per relation: ``[(instant, inserted, deleted), ...]``.
Slices = Mapping[str, Sequence[tuple[int, frozenset, frozenset]]]


class Zone:
    """A lockstep federation shard on the shared virtual clock."""

    def __init__(
        self,
        name: str,
        clock: VirtualClock,
        policy: InvocationPolicy | None = None,
        observe: "Observability | str | None" = None,
        backend: str = "row",
    ):
        self.name = name
        self.clock = clock
        self.obs = Observability.coerce(observe)
        self.bus = DiscoveryBus(observe=self.obs)
        self.services = ServiceRegistry(policy=policy)
        # The ERM shard: lease bookkeeping over this zone's bus segment
        # only.  Invocations stay with the coordinator ERM (the authority
        # for retry/quarantine policy); the shard's registry is the
        # zone-local service view surfaced by ``.shards`` and metrics.
        self.erm = EnvironmentResourceManager(
            self.bus, clock, self.services, observe=self.obs
        )
        self.environment = PervasiveEnvironment(self.services)
        #: The query-processor shard: scattered subtrees lower here.
        self.plans = SharedPlanRegistry(
            self.environment, observe=self.obs, backend=backend
        )
        self._states: dict[int, dict] = {}
        self._ctx: EvaluationContext | None = None
        metrics = self.obs.metrics
        self._services_gauge = metrics.gauge(
            "serena_zone_services",
            "Services registered in this zone's ERM shard",
            zone=name,
        )
        self._rows_gauge = metrics.gauge(
            "serena_zone_rows",
            "Tuples held by this zone's relation partitions",
            zone=name,
        )
        self._subplans_gauge = metrics.gauge(
            "serena_zone_subplans",
            "Scattered subtrees live in this zone's plan registry",
            zone=name,
        )

    # -- lockstep execution -------------------------------------------------------

    def context(self, instant: int) -> EvaluationContext:
        """The zone's evaluation context for ``instant`` (memoized, with
        the zone registry's per-instant journal cache installed)."""
        if self._ctx is None or self._ctx.instant != instant:
            ctx = EvaluationContext(
                self.environment, instant, self._states, continuous=True
            )
            ctx.journal_cache = self.plans.journal_cache(instant)
            self._ctx = ctx
        return self._ctx

    def tick(self, executor: Executor, instant: int) -> Delta:
        """Advance one shard executor to ``instant`` (memoized per
        instant by the executor itself, so gather pulls after an eager
        ``advance`` are O(1))."""
        return executor.tick(self.context(instant))

    def advance(self, instant: int) -> None:
        """Advance every registered shard executor to ``instant``.

        Deterministic order (by subtree fingerprint) for reproducible
        traces; results are order-independent because executors memoize
        per instant and scattered subtrees have no side effects."""
        ctx = self.context(instant)
        for entry in sorted(
            self.plans._entries.values(), key=lambda e: e.fingerprint
        ):
            entry.executor.tick(ctx)

    # -- process-worker support ---------------------------------------------------

    def apply_slices(self, slices: Slices) -> None:
        """Replay coordinator partition writes into this (forked) zone's
        journal replicas, in relation-name order.  Slices are exact
        journal chunks, so the replica journals match the coordinator's
        partitions instant for instant."""
        for name in sorted(slices):
            stored = self.environment.relation(name)
            for instant, inserted, deleted in slices[name]:
                if inserted:
                    stored.insert(inserted, instant)
                if deleted:
                    stored.delete(deleted, instant)

    def shard_deltas(self) -> dict[str, tuple[frozenset, frozenset]]:
        """Fingerprint → last change delta of every shard executor
        (what a worker process ships back after ``advance``)."""
        out: dict[str, tuple[frozenset, frozenset]] = {}
        for entry in self.plans._entries.values():
            change = entry.executor.change
            out[entry.fingerprint] = (change.inserted, change.deleted)
        return out

    # -- observation --------------------------------------------------------------

    def sync_gauges(self) -> None:
        self._services_gauge.set(len(self.services))
        rows = 0
        for name in self.environment.relation_names:
            stored = self.environment.relation(name)
            try:
                rows += len(stored)
            except TypeError:
                pass
        self._rows_gauge.set(rows)
        self._subplans_gauge.set(len(self.plans))

    def summary(self) -> dict:
        """One ``.shards`` row: the zone's service, row, subplan and
        local-ERM counts."""
        rows = 0
        relations = 0
        for name in self.environment.relation_names:
            stored = self.environment.relation(name)
            relations += 1
            try:
                rows += len(stored)
            except TypeError:
                pass
        return {
            "zone": self.name,
            "services": len(self.services),
            "relations": relations,
            "rows": rows,
            "subplans": len(self.plans),
        }

    def __repr__(self) -> str:
        return (
            f"Zone({self.name!r}, {len(self.services)} services, "
            f"{len(self.plans)} subplans)"
        )
