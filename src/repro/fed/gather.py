"""The gather executor: merging per-shard deltas at the coordinator.

A scatterable subtree (σ/π/ρ/α chains over one partitioned scan) runs as
one shard subplan per routed zone; :class:`GatherExec` stands in for the
whole subtree in the coordinator plan and merges the shard deltas under
the two-delta contract.

Correctness of the support-count merge: zone partitions are
tuple-disjoint, but projection (and attribute overwrite) can collapse
*distinct* partition rows from different zones onto the *same* output
row.  The gathered result is therefore the union of the shard results,
and a row is a member iff its **support** — the number of zones whose
shard result contains it — is positive.  Each shard's change delta moves
that zone's membership by exactly ±1 per row, so netting the per-row
support change against the maintained count yields the exact membership
delta: insert iff support went 0 → positive, delete iff it went positive
→ 0.  With a single routed zone (partition pruning) this degrades to
pass-through.

Shard deltas come from one of two places, decided by the owning
:class:`~repro.fed.registry.FederatedPlanRegistry`: in lockstep and
thread-parallel modes the gather ticks the shard root in-process (a
memoized no-op when the barrier already advanced it); in process-parallel
mode the shard state lives in a forked worker, and the gather consumes
the delta the worker shipped back (accumulated across carried instants
by the registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.algebra.context import EvaluationContext
from repro.algebra.operators.base import Operator
from repro.exec.delta import Delta
from repro.exec.executors import Executor
from repro.exec.shared import SharedPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fed.registry import FederatedPlanRegistry
    from repro.fed.zone import Zone

__all__ = ["GatherExec", "Shard"]

_EMPTY: frozenset[tuple] = frozenset()


@dataclass(frozen=True)
class Shard:
    """One zone's half of a scattered subtree."""

    zone: "Zone"
    plan: SharedPlan
    digest: str

    @property
    def executor(self) -> Executor:
        return self.plan.root


class GatherExec(Executor):
    """Merges the routed shards of one scattered subtree."""

    def __init__(
        self,
        node: Operator,
        shards: Sequence[Shard],
        registry: "FederatedPlanRegistry",
    ):
        super().__init__(node, children=())
        self.shards = tuple(shards)
        self.registry = registry
        #: Output row → number of zones whose shard result contains it.
        self._counts: dict[tuple, int] = {}

    @property
    def zones(self) -> tuple[str, ...]:
        return tuple(shard.zone.name for shard in self.shards)

    def _shard_delta(
        self, shard: Shard, ctx: EvaluationContext
    ) -> tuple[frozenset[tuple], frozenset[tuple]]:
        registry = self.registry
        remote = registry.take_remote(shard.zone.name, shard.digest)
        if remote is not None:
            inserted, deleted = remote
            if self.is_first_tick:
                # The shard lives in a forked worker and only its deltas
                # ship: a gather created after the worker advanced would
                # miss the shard's standing rows.  Replay the maintained
                # remote view — the remote-path equivalent of the warm
                # in-process shard's fresh_view() catch-up below (the
                # pending delta just consumed is already folded into it).
                view = registry.remote_view(shard.zone.name, shard.digest)
                if view is not None:
                    inserted, deleted = view, _EMPTY
        else:
            root_was_fresh = shard.executor.is_first_tick
            change = shard.zone.tick(shard.executor, ctx.instant)
            if self.is_first_tick and not root_was_fresh:
                # Same catch-up a parent's _pull performs: a warm
                # shard contributes its full view as insertions.
                inserted, deleted = shard.executor.fresh_view(), _EMPTY
            else:
                inserted, deleted = change.inserted, change.deleted
        inserted = frozenset(inserted)
        deleted = frozenset(deleted)
        # Count after deduplication: a shipped remote delta may carry
        # duplicates, and EXPLAIN ANALYZE cardinalities are tuple counts.
        stats = self.stats
        stats.input_inserted += len(inserted)
        stats.input_deleted += len(deleted)
        return inserted, deleted

    def _advance(self, ctx: EvaluationContext) -> Delta:
        if len(self.shards) == 1:
            # Pruned (or single-zone) scatter: one shard's net delta IS
            # the gathered delta — no cross-zone collapse is possible, so
            # the support counts would all be 0/1.  Pass it through.
            inserted, deleted = self._shard_delta(self.shards[0], ctx)
            return Delta(inserted, deleted)
        delta_counts: dict[tuple, int] = {}
        for shard in self.shards:
            inserted, deleted = self._shard_delta(shard, ctx)
            for row in inserted:
                delta_counts[row] = delta_counts.get(row, 0) + 1
            for row in deleted:
                delta_counts[row] = delta_counts.get(row, 0) - 1
        counts = self._counts
        ins: list[tuple] = []
        dels: list[tuple] = []
        for row, moved in delta_counts.items():
            if moved == 0:
                continue
            old = counts.get(row, 0)
            new = old + moved
            if new > 0:
                counts[row] = new
            else:
                counts.pop(row, None)
            if old == 0 and new > 0:
                ins.append(row)
            elif old > 0 and new <= 0:
                dels.append(row)
        return Delta(frozenset(ins), frozenset(dels))

    def __repr__(self) -> str:
        return (
            f"GatherExec({self.node.symbol()}, zones={list(self.zones)!r}, "
            f"{len(self.current)} rows)"
        )
