"""The federated XD-Relation: one logical relation over per-zone shards.

A :class:`FederatedRelation` presents the union of per-zone
:class:`~repro.continuous.xdrelation.XDRelation` partitions behind the
full XD-Relation read/write API, so every existing consumer — scans,
windows, the tick scheduler's revision tokens, the shared registry's
shareability checks — works over a partitioned relation unchanged:

* **writes** route each tuple to its owning zone by consistent hashing
  on the partition attribute (deletes route identically, since routing
  is a pure function of the tuple);
* **reads** merge the partition journals: partitions are tuple-disjoint
  by construction, so per-instant deltas union exactly and the merged
  journal is what a single XD-Relation receiving the same writes would
  hold;
* ``revision`` is the sum of partition revisions — monotone, and it
  moves exactly when some partition moved, which is all the scheduler
  needs for its O(1) quiescence check.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.continuous.xdrelation import XDRelation
from repro.errors import SerenaError
from repro.fed.hashing import HashRing, stable_token
from repro.model.relation import XRelation
from repro.model.xschema import ExtendedRelationSchema

__all__ = ["FederatedRelation"]


class FederatedRelation:
    """A journaled relation whose extent lives in per-zone partitions."""

    def __init__(
        self,
        schema: ExtendedRelationSchema,
        partitions: Mapping[str, XDRelation],
        ring: HashRing,
        partition_position: int | None,
        infinite: bool = False,
    ):
        self.schema = schema
        self.infinite = infinite
        #: Zone name → the zone's partition (tuple-disjoint by routing).
        self.partitions = dict(partitions)
        self._ring = ring
        #: Index of the partition attribute in the real-attribute tuple,
        #: or None — rows then route by a hash of the whole tuple.
        self._position = partition_position

    # -- routing ------------------------------------------------------------------

    @property
    def partition_attribute(self) -> str | None:
        """The real attribute rows are partitioned on (None: whole-tuple
        hashing, which rules out partition pruning but not correctness)."""
        if self._position is None:
            return None
        return self.schema.real_attributes[self._position].name

    def zone_of(self, values: tuple) -> str:
        """The zone owning a (validated) tuple."""
        if self._position is not None:
            return self._ring.zone_for(values[self._position])
        return self._ring.zone_for(stable_token(values))

    def zone_for_value(self, value: object) -> str | None:
        """The zone owning rows whose partition attribute equals
        ``value`` — the partition-pruning hook; None when this relation
        routes by whole-tuple hash (no single-attribute pruning)."""
        if self._position is None:
            return None
        return self._ring.zone_for(value)

    def _group(self, tuples: Iterable[tuple]) -> dict[str, list[tuple]]:
        groups: dict[str, list[tuple]] = {}
        for values in tuples:
            values = self.schema.validate_tuple(values)
            groups.setdefault(self.zone_of(values), []).append(values)
        return groups

    # -- writes (scatter) ---------------------------------------------------------

    def insert(self, tuples: Iterable[tuple], instant: int) -> int:
        groups = self._group(tuples)
        return sum(
            self.partitions[zone].insert(groups[zone], instant)
            for zone in sorted(groups)
        )

    def insert_mappings(
        self, rows: Iterable[Mapping[str, object]], instant: int
    ) -> int:
        return self.insert(
            (self.schema.tuple_from_mapping(row) for row in rows), instant
        )

    def delete(self, tuples: Iterable[tuple], instant: int) -> int:
        if self.infinite:
            raise SerenaError(
                f"stream {self.schema.name!r} is append-only: deletion is "
                "not defined on infinite XD-Relations"
            )
        groups = self._group(tuples)
        return sum(
            self.partitions[zone].delete(groups[zone], instant)
            for zone in sorted(groups)
        )

    def delete_mappings(
        self, rows: Iterable[Mapping[str, object]], instant: int
    ) -> int:
        return self.delete(
            (self.schema.tuple_from_mapping(row) for row in rows), instant
        )

    # -- reads (gather) ------------------------------------------------------------

    def instantaneous(self, instant: int) -> XRelation:
        tuples: set[tuple] = set()
        for partition in self.partitions.values():
            tuples |= partition.instantaneous(instant).tuples
        return XRelation(self.schema, tuples, validated=True)

    def inserted_at(self, instant: int) -> frozenset[tuple]:
        out: set[tuple] = set()
        for partition in self.partitions.values():
            out |= partition.inserted_at(instant)
        return frozenset(out)

    def deleted_at(self, instant: int) -> frozenset[tuple]:
        out: set[tuple] = set()
        for partition in self.partitions.values():
            out |= partition.deleted_at(instant)
        return frozenset(out)

    def window(self, instant: int, period: int) -> frozenset[tuple]:
        out: set[tuple] = set()
        for partition in self.partitions.values():
            out |= partition.window(instant, period)
        return frozenset(out)

    def changes_between(
        self, start: int, stop: int
    ) -> list[tuple[int, frozenset[tuple], frozenset[tuple]]]:
        """The merged journal slice: per-instant unions of the partition
        deltas, in time order.  Disjoint partitions cannot insert and
        delete the same tuple at one instant, so no cancellation is
        needed beyond what each partition already journaled."""
        merged: dict[int, tuple[set[tuple], set[tuple]]] = {}
        for partition in self.partitions.values():
            for instant, inserted, deleted in partition.changes_between(
                start, stop
            ):
                ins, dels = merged.setdefault(instant, (set(), set()))
                ins |= inserted
                dels |= deleted
        return [
            (instant, frozenset(ins), frozenset(dels))
            for instant, (ins, dels) in sorted(merged.items())
        ]

    @property
    def last_instant(self) -> int:
        return max(
            (p.last_instant for p in self.partitions.values()), default=-1
        )

    @property
    def revision(self) -> int:
        return sum(p.revision for p in self.partitions.values())

    def __len__(self) -> int:
        return sum(len(p) for p in self.partitions.values())

    def __repr__(self) -> str:
        kind = "stream" if self.infinite else "dynamic relation"
        return (
            f"FederatedRelation({self.schema.name or '<anonymous>'}, {kind}, "
            f"{len(self)} tuples over {len(self.partitions)} zones)"
        )
