"""Sharded PEMS federation (DESIGN.md §11).

Partitions a pervasive environment into *zones*, each owning an ERM
shard, a discovery-bus segment and a query-processor shard.  A
:class:`FederatedPEMS` coordinator plans queries spanning shards:
scan/selection/projection subplans are scattered to the shards owning
the underlying relation partitions, per-shard deltas are gathered and
merged under the two-delta contract, and cross-zone discovery rides a
gossip relay between bus segments.

Phase 1 runs every shard in deterministic lockstep on the shared
virtual clock — tuple-identical to the ``shared`` engine.  Phase 2 is
the opt-in parallel shard executor (``parallelism="threads"`` or
``"processes"``) with a per-tick barrier that preserves determinism.
"""

from repro.fed.gather import GatherExec
from repro.fed.gossip import GossipRelay
from repro.fed.hashing import HashRing
from repro.fed.local_erm import FederatedLocalERM
from repro.fed.pems import FederatedPEMS
from repro.fed.query_processor import FederatedQueryProcessor
from repro.fed.registry import FederatedPlanRegistry
from repro.fed.relation import FederatedRelation
from repro.fed.table_manager import FederatedTableManager
from repro.fed.zone import Zone

__all__ = [
    "FederatedLocalERM",
    "FederatedPEMS",
    "FederatedPlanRegistry",
    "FederatedQueryProcessor",
    "FederatedRelation",
    "FederatedTableManager",
    "GatherExec",
    "GossipRelay",
    "HashRing",
    "Zone",
]
