"""The federated plan registry: scatter/gather over zone shards.

Extends the coordinator's :class:`~repro.exec.shared.SharedPlanRegistry`
with one new lease shape: a **scatterable** subtree — a σ/π/ρ/α chain
over exactly one scan of a partitioned relation — is not lowered at the
coordinator.  Instead the canonical subtree is leased once *per routed
zone* in that zone's own registry (the query-processor shard), and the
coordinator holds a single :class:`~repro.fed.gather.GatherExec` entry
that merges the shard deltas.  Everything else — joins, windows, set
operations, invocations — lowers at the coordinator exactly as in the
shared engine, consuming gather outputs through the ordinary executor
contract.

Scattering hooks a single method: ``_lease``.  Both registry paths that
can reach a shareable subtree — ``_build``'s shareable branch and
``_lease``'s own child recursion — dispatch through ``self._lease``
polymorphically, so the override intercepts every scatterable subtree at
its *maximal* extent (parents are considered before children during the
build descent) with no changes to the base class.

Partition pruning: a selection in the chain that pins the partition
attribute to a constant (``sector = "s3"`` under any conjunction) routes
the scatter to the single owning zone instead of all zones.  The pin is
traced through renamings, projections and assignments between the scan
and the selection; pruning is conservative — when in doubt the scatter
fans out to every zone, which is always correct.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.algebra.formula import And, Comparison, Formula
from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import Scan
from repro.algebra.operators.selection import Selection
from repro.errors import SerenaError
from repro.exec.executors import Executor
from repro.exec.shared import SharedPlanRegistry, _digest, _Entry
from repro.fed.gather import GatherExec, Shard
from repro.model.environment import PervasiveEnvironment
from repro.obs.observe import Observability

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fed.table_manager import FederatedTableManager
    from repro.fed.zone import Zone

__all__ = ["FederatedPlanRegistry"]

#: Operator kinds a scattered chain may contain above its scan.
_CHAIN_KINDS = (Selection, Projection, Renaming, Assignment)

#: A remote delta: (inserted, deleted) for one (zone, subtree) pair.
RemoteDelta = tuple[frozenset, frozenset]


def _equality_pins(formula: Formula, name: str) -> set:
    """Constants ``c`` such that ``formula`` implies ``name = c``.

    Conjunctions union their branches' pins; disjunctions, negations and
    non-equality comparisons pin nothing (conservative).  Two distinct
    pins mean a contradictory formula — the result is empty, so routing
    to any single zone stays correct.
    """
    if isinstance(formula, Comparison):
        if formula.op != "=":
            return set()
        if (
            formula.left_is_attr
            and formula.left == name
            and not formula.right_is_attr
        ):
            return {formula.right}
        if (
            formula.right_is_attr
            and formula.right == name
            and not formula.left_is_attr
        ):
            return {formula.left}
        return set()
    if isinstance(formula, And):
        return _equality_pins(formula.left, name) | _equality_pins(
            formula.right, name
        )
    return set()


def compose_deltas(first: RemoteDelta, second: RemoteDelta) -> RemoteDelta:
    """The net delta of applying ``first`` then ``second``."""
    ins1, del1 = first
    ins2, del2 = second
    return (
        frozenset((ins1 - del2) | (ins2 - del1)),
        frozenset((del1 - ins2) | (del2 - ins1)),
    )


class _GatherEntry(_Entry):
    """A registry entry whose executor gathers remote shards."""

    __slots__ = ("shards",)

    def __init__(self, executor: Executor, fingerprint: str, shards):
        super().__init__(executor, fingerprint)
        self.shards = shards


class FederatedPlanRegistry(SharedPlanRegistry):
    """The coordinator registry of a :class:`~repro.fed.pems.FederatedPEMS`."""

    def __init__(
        self,
        environment: PervasiveEnvironment,
        zones: Mapping[str, "Zone"],
        tables: "FederatedTableManager",
        observe: "Observability | str | None" = None,
        backend: str = "row",
    ):
        super().__init__(environment, observe=observe, backend=backend)
        self.zones = dict(zones)
        self.tables = tables
        #: True while forked shard workers hold the zone executor state:
        #: new scatters would silently diverge (the workers never learn
        #: about them), so creating one raises instead.
        self.frozen = False
        #: True when shard deltas arrive from workers instead of being
        #: computed in-process (``parallelism="processes"``).
        self.remote_mode = False
        #: (zone name, subtree digest) → delta accumulated over the
        #: instants since the owning gather last consumed it.
        self._pending: dict[tuple[str, str], RemoteDelta] = {}
        #: Zone name → digests of the subtrees its forked worker computes
        #: (frozen at fork; workers never learn about later subtrees).
        self._worker_digests: dict[str, frozenset[str]] = {}
        #: (zone name, subtree digest) → the shard's full current view,
        #: maintained from the shipped deltas (seeded at fork).  This is
        #: what lets a gather created *after* the workers advanced replay
        #: the warm shard's standing rows — the first-tick catch-up the
        #: in-process path gets from ``fresh_view()``.
        self._remote_views: dict[tuple[str, str], frozenset] = {}
        metrics = self.obs.metrics
        self._scatter_total = metrics.counter(
            "serena_fed_scatter_total",
            "Scatterable subtrees lowered across zone shards",
        )
        self._pruned_total = metrics.counter(
            "serena_fed_pruned_total",
            "Scatters routed to a strict subset of zones by partition pruning",
        )
        self._scattered_gauge = metrics.gauge(
            "serena_fed_scattered_subplans",
            "Scattered subtrees currently live at the coordinator",
        )
        self._shards_gauge = metrics.gauge(
            "serena_fed_shards_total",
            "Zone shard subplans backing the live scattered subtrees",
        )

    # -- scatterability ----------------------------------------------------------

    def _scatterable(self, node: Operator) -> bool:
        """True iff ``node`` heads a σ/π/ρ/α chain over exactly one scan
        of a finite partitioned relation."""
        if not isinstance(node, _CHAIN_KINDS):
            return False
        cur = node
        while isinstance(cur, _CHAIN_KINDS):
            cur = cur.children[0]
        if not isinstance(cur, Scan):
            return False
        federated = self.tables.federated.get(cur.name)
        return federated is not None and not federated.infinite

    def _route_zones(self, node: Operator) -> tuple[str, ...]:
        """The zones a scatterable subtree must run in: all of them, or a
        single zone when a selection pins the partition attribute."""
        chain: list[Operator] = []
        cur = node
        while not isinstance(cur, Scan):
            chain.append(cur)
            cur = cur.children[0]
        federated = self.tables.federated[cur.name]
        attribute = federated.partition_attribute
        if attribute is None:
            return tuple(self.zones)
        pins: set = set()
        name: str | None = attribute
        for op in reversed(chain):  # bottom-up, tracking the attr's name
            if name is None:
                break
            if isinstance(op, Selection):
                pins |= _equality_pins(op.formula, name)
            elif isinstance(op, Renaming):
                if op.old == name:
                    name = op.new
                elif op.new == name:
                    name = None
            elif isinstance(op, Projection):
                if name not in op.names:
                    name = None
            elif isinstance(op, Assignment):
                if op.attribute == name:
                    name = None
        if not pins:
            return tuple(self.zones)
        # Multiple distinct pins = contradictory conjunction = empty
        # result, so any single deterministic choice is correct.
        value = sorted(pins, key=repr)[0]
        zone = federated.zone_for_value(value)
        return (zone,) if zone is not None else tuple(self.zones)

    # -- the scatter lease -------------------------------------------------------

    def _lease(
        self, node: Operator, leased: dict[Operator, None]
    ) -> Executor:
        if self._scatterable(node):
            return self._lease_gather(node, leased)
        return super()._lease(node, leased)

    def _lease_gather(
        self, node: Operator, leased: dict[Operator, None]
    ) -> Executor:
        entry = self._entries.get(node)
        if entry is None:
            digest = _digest(node)
            routed = self._route_zones(node)
            if self.frozen and not all(
                digest in self._worker_digests.get(name, frozenset())
                for name in routed
            ):
                raise SerenaError(
                    "federated registry is frozen: shard worker processes "
                    "are running and cannot learn about new scattered "
                    "subtrees; register all federated queries before the "
                    "first parallel tick (or use parallelism=None/'threads')"
                )
            self._lease_misses_total.inc()
            self._scatter_total.inc()
            if len(routed) < len(self.zones):
                self._pruned_total.inc()
            shards = tuple(
                Shard(
                    self.zones[name],
                    self.zones[name].plans.acquire_subtree(node),
                    digest,
                )
                for name in routed
            )
            executor = GatherExec(node, shards, self)
            entry = _GatherEntry(executor, digest, shards)
            self._entries[node] = entry
        else:
            self._lease_hits_total.inc()
            # No child re-leasing: the subtree's inner nodes live in the
            # zone registries, and the shard leases are held by the entry
            # itself (released when its refcount drops to zero).
        if node not in leased:
            entry.refcount += 1
            leased[node] = None
        self._sync_gauges()
        return entry.executor

    def _release(self, leases: tuple[Operator, ...]) -> None:
        for node in leases:
            entry = self._entries.get(node)
            if entry is None:
                continue
            entry.refcount -= 1
            if entry.refcount <= 0:
                del self._entries[node]
                if isinstance(entry, _GatherEntry):
                    for shard in entry.shards:
                        shard.plan.release()
                    for zone_name in (s.zone.name for s in entry.shards):
                        self._pending.pop(
                            (zone_name, entry.fingerprint), None
                        )
        self._sync_gauges()

    # -- remote shard deltas (process workers) -----------------------------------

    def freeze_for_workers(self) -> None:
        """Switch to remote (process-worker) mode at fork time: record
        which subtrees each worker computes — the worker's zone-registry
        contents, nested child subtrees included — and seed the per-shard
        remote views from the coordinator executors' state, which the fork
        inherited verbatim.  Only subtrees recorded here may be scattered
        after the freeze (the workers never learn about new ones)."""
        self.frozen = True
        self.remote_mode = True
        for zone_name, zone in self.zones.items():
            entries = list(zone.plans._entries.values())
            self._worker_digests[zone_name] = frozenset(
                entry.fingerprint for entry in entries
            )
            for entry in entries:
                self._remote_views[(zone_name, entry.fingerprint)] = (
                    frozenset(entry.executor.current)
                )

    def take_remote(self, zone_name: str, digest: str) -> RemoteDelta | None:
        """The accumulated worker delta for one shard, or None when shard
        execution is in-process (gather then ticks the shard itself)."""
        if not self.remote_mode:
            return None
        empty: RemoteDelta = (frozenset(), frozenset())
        return self._pending.pop((zone_name, digest), empty)

    def remote_view(self, zone_name: str, digest: str) -> frozenset | None:
        """The shard's full current view as maintained from the shipped
        worker deltas — the remote-path equivalent of
        ``shard.executor.fresh_view()`` (None outside remote mode or for
        a subtree no worker computes)."""
        return self._remote_views.get((zone_name, digest))

    def install_remote(
        self, zone_name: str, deltas: Mapping[str, RemoteDelta]
    ) -> None:
        """Fold one worker barrier's deltas into the pending store,
        composing with anything not yet consumed (queries carried across
        instants consume one composed delta spanning the gap).  The
        per-shard remote views advance for *every* shipped subtree — live
        at the coordinator or not — so a gather re-created later can
        still replay the warm shard's standing rows."""
        live = {
            entry.fingerprint
            for entry in self._entries.values()
            if isinstance(entry, _GatherEntry)
        }
        views = self._remote_views
        for digest, delta in deltas.items():
            inserted, deleted = delta
            view_key = (zone_name, digest)
            view = views.get(view_key, frozenset())
            views[view_key] = (view - frozenset(deleted)) | frozenset(inserted)
            if digest not in live:
                continue
            key = (zone_name, digest)
            old = self._pending.get(key)
            self._pending[key] = (
                delta if old is None else compose_deltas(old, delta)
            )

    def gather_entries(self) -> list[_GatherEntry]:
        return [
            entry
            for entry in self._entries.values()
            if isinstance(entry, _GatherEntry)
        ]

    # -- introspection -----------------------------------------------------------

    def scatter_summary(self) -> list[dict]:
        """One row per live scattered subtree (the ``.explain federated``
        and ``.shards`` data source)."""
        rows = []
        for node, entry in self._entries.items():
            if not isinstance(entry, _GatherEntry):
                continue
            rows.append(
                {
                    "fingerprint": entry.fingerprint,
                    "operator": node.symbol(),
                    "refcount": entry.refcount,
                    "zones": [s.zone.name for s in entry.shards],
                    "pruned": len(entry.shards) < len(self.zones),
                }
            )
        rows.sort(key=lambda r: r["fingerprint"])
        return rows

    def _sync_gauges(self) -> None:
        super()._sync_gauges()
        gathers = self.gather_entries()
        self._scattered_gauge.set(len(gathers))
        self._shards_gauge.set(sum(len(e.shards) for e in gathers))
