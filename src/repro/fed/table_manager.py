"""The federated table manager: partitioned XD-Relations over zones.

Creating a relation under federation creates one
:class:`~repro.continuous.xdrelation.XDRelation` partition per zone —
registered in the zone's environment under the federated name, so
scattered subplans scan their partition directly — plus one
:class:`~repro.fed.relation.FederatedRelation` over the partitions,
registered in the coordinator environment, so every coordinator-side
consumer (non-scattered scans, windows, DDL, stream feeders, the tick
scheduler) sees a single logical relation.

Rows are partitioned on the relation's **partition attribute**: an
explicit choice via ``partition_by``, else the first SERVICE-typed real
attribute (the paper's discovery tables — ``sensors``, ``cameras`` — are
then sharded by the same consistent hash that routes the services
themselves, so a service's discovery row lives in the zone that owns the
service), else whole-tuple hashing (correct, but unprunable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.continuous.time import VirtualClock
from repro.continuous.xdrelation import XDRelation
from repro.errors import EnvironmentError_
from repro.fed.hashing import HashRing
from repro.fed.relation import FederatedRelation
from repro.model.environment import PervasiveEnvironment
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.pems.table_manager import ExtendedTableManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fed.zone import Zone

__all__ = ["FederatedTableManager"]


class FederatedTableManager(ExtendedTableManager):
    """An :class:`ExtendedTableManager` whose relations are partitioned."""

    def __init__(
        self,
        environment: PervasiveEnvironment,
        clock: VirtualClock,
        zones: Mapping[str, "Zone"],
        ring: HashRing,
        partition_by: Mapping[str, str] | None = None,
    ):
        super().__init__(environment, clock)
        self.zones = dict(zones)
        self.ring = ring
        #: Relation name → partition attribute, overriding the default
        #: first-SERVICE-attribute choice.
        self.partition_by = dict(partition_by or {})
        #: Every federated relation this manager created, by name.
        self.federated: dict[str, FederatedRelation] = {}

    def _partition_position(self, schema: ExtendedRelationSchema) -> int | None:
        explicit = self.partition_by.get(schema.name)
        if explicit is not None:
            return schema.real_position(explicit)
        for position, attribute in enumerate(schema.real_attributes):
            if attribute.dtype is DataType.SERVICE:
                return position
        return None

    # -- relation lifecycle ------------------------------------------------------

    def create_relation(
        self,
        schema: ExtendedRelationSchema,
        infinite: bool = False,
        name: str | None = None,
    ) -> FederatedRelation:
        """Create one partition per zone plus the federated view."""
        key = name or schema.name
        if not key:
            raise EnvironmentError_("relation needs a name")
        if key in self.environment:
            raise EnvironmentError_(f"relation {key!r} already exists")
        named = schema.with_name(key)
        partitions = {
            zone_name: XDRelation(named, infinite=infinite)
            for zone_name in self.zones
        }
        for zone_name, partition in partitions.items():
            self.zones[zone_name].environment.add_relation(partition, key)
        relation = FederatedRelation(
            named,
            partitions,
            self.ring,
            self._partition_position(named),
            infinite=infinite,
        )
        self.environment.add_relation(relation, key)
        self.federated[key] = relation
        return relation

    def drop_relation(self, name: str) -> None:
        super().drop_relation(name)
        if name in self.federated:
            del self.federated[name]
            for zone in self.zones.values():
                zone.environment.remove_relation(name)

    def relation(self, name: str) -> XDRelation | FederatedRelation:
        stored = self.environment.relation(name)
        if not isinstance(stored, (XDRelation, FederatedRelation)):
            raise EnvironmentError_(
                f"relation {name!r} is not managed by the table manager"
            )
        return stored

    def __repr__(self) -> str:
        return (
            f"FederatedTableManager({len(self.federated)} federated relations "
            f"over {len(self.zones)} zones)"
        )
