"""The federated Local ERM: one registration facade, many zone shards.

Scenario code registers services against a single Local ERM name
(`pems.create_local_erm("building-A")`).  Under federation that name is a
*facade*: each registered service is routed to its owning zone by
consistent hashing on the service reference, and the facade lazily
maintains one real :class:`~repro.pems.local_erm.LocalEnvironmentResourceManager`
per zone it touches (named ``building-A@<zone>``), announcing on that
zone's bus segment.  Lease renewal, crash simulation and graceful byes
all keep their single-PEMS semantics per service — only the bus segment
a given service announces on changes, and the gossip relay folds the
segments back into the coordinator's announcement stream.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import UnknownServiceError
from repro.model.services import Service
from repro.pems.local_erm import LocalEnvironmentResourceManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fed.pems import FederatedPEMS

__all__ = ["FederatedLocalERM"]


class FederatedLocalERM:
    """Routes registrations of one logical Local ERM across zone shards."""

    def __init__(
        self, name: str, fed: "FederatedPEMS", lease: int | None = None
    ):
        self.name = name
        self._fed = fed
        self._lease = lease
        #: Zone name → the real per-zone Local ERM (lazily created).
        self._erms: dict[str, LocalEnvironmentResourceManager] = {}
        #: Service reference → owning zone (for deregistration routing).
        self._owners: dict[str, str] = {}

    def _erm_for(self, zone_name: str) -> LocalEnvironmentResourceManager:
        erm = self._erms.get(zone_name)
        if erm is None:
            zone = self._fed.zones[zone_name]
            kwargs = {} if self._lease is None else {"lease": self._lease}
            erm = LocalEnvironmentResourceManager(
                f"{self.name}@{zone_name}", zone.bus, self._fed.clock, **kwargs
            )
            self._erms[zone_name] = erm
        return erm

    # -- the Local ERM API --------------------------------------------------------

    def register(self, service: Service) -> None:
        """Register ``service`` with the shard owning its reference."""
        zone_name = self._fed.ring.zone_for(service.reference)
        self._owners[service.reference] = zone_name
        self._erm_for(zone_name).register(service)

    def deregister(self, reference: str) -> None:
        """Deregister from the owning shard (graceful bye on its segment)."""
        zone_name = self._owners.pop(reference, None)
        if zone_name is None:
            raise UnknownServiceError(reference)
        self._erms[zone_name].deregister(reference)

    def zone_of(self, reference: str) -> str | None:
        """The zone a registered service was routed to."""
        return self._owners.get(reference)

    @property
    def services(self) -> tuple[Service, ...]:
        merged: dict[str, Service] = {}
        for erm in self._erms.values():
            for service in erm.services:
                merged[service.reference] = service
        return tuple(merged[ref] for ref in sorted(merged))

    # -- failure injection --------------------------------------------------------

    def crash(self) -> None:
        """Crash every zone shard of this logical ERM at once."""
        for erm in self._erms.values():
            erm.crash()

    def recover(self) -> None:
        for erm in self._erms.values():
            erm.recover()

    def __repr__(self) -> str:
        return (
            f"FederatedLocalERM({self.name!r}, {len(self._owners)} services "
            f"over {len(self._erms)} zones)"
        )
