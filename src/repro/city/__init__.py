"""Grid-scale city scenarios: a smart city as a pervasive environment.

The two Section 5.2 scenarios exercise a handful of devices; this package
generates *thousands* — smart meters, grid relays, substations, weather
stations and alert sinks wired into a zoned power-grid topology — and
registers a standing pack of fleet-wide continuous queries over them.
Everything is pure in ``(config, seed, instant)``: the same
:class:`~repro.city.config.CityConfig` yields byte-identical topologies,
fault schedules and 55-tick query output in any process, so the
multi-engine differential machinery pins naive/incremental/shared/
columnar and the sharded federation tuple-identical on a sampled city.

Modules
-------
``config``
    :class:`CityConfig` — the plain-dict/TOML-style declaration (zones,
    device counts per prototype, load distributions, substitution
    spares, churn and the cascade spec).
``devices``
    City prototypes and deterministic device simulators.
``generator``
    ``generate_topology`` — seed-driven expansion of a config into a
    concrete, digestable device list.
``cascade``
    The cascading-failure script compiler over
    :mod:`repro.devices.faults` (lazy: O(affected devices), never
    materializing (device, tick) pairs).
``queries``
    The standing query pack (per-zone α aggregation, σ/⋈ overload
    correlation, β invocation sweeps).
``scenario``
    ``build_city`` — assemble the whole thing on any engine, or on the
    federation with zones mapped onto shards.
"""

from repro.city.cascade import CascadeSchedule, CascadeSpec
from repro.city.config import CityConfig
from repro.city.generator import CityTopology, generate_topology
from repro.city.queries import build_query_pack
from repro.city.scenario import CityScenario, build_city

__all__ = [
    "CityConfig",
    "CityTopology",
    "generate_topology",
    "CascadeSpec",
    "CascadeSchedule",
    "build_query_pack",
    "CityScenario",
    "build_city",
]
