"""City device simulators: the power-grid fleet.

Five prototypes cover the fleet (plus a richer spare prototype for the
substitution path):

::

    PROTOTYPE readLoad( ) : ( load REAL );
    PROTOTYPE checkRelay( ) : ( status STRING, throughput REAL );
    PROTOTYPE readStation( ) : ( capacity REAL, utilization REAL );
    PROTOTYPE readGridNode( ) : ( capacity REAL, utilization REAL, frequency REAL );
    PROTOTYPE readWeather( ) : ( temperature REAL, wind REAL );
    PROTOTYPE raiseAlert( zone STRING, load REAL ) : ( ack BOOLEAN ) ACTIVE;

Every reading is a pure function of ``(reference, instant)`` via
:mod:`repro.devices.determinism`, and every numeric output is quantized
to quarter steps (exactly representable binary fractions) so sums and
averages are bit-identical regardless of the order an engine — or a
zone shard — folds them in.  That quantization is what lets the α
aggregation queries stay tuple-identical across all engines and the
federation without any tolerance in the differentials.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.devices.determinism import stable_gauss_like, stable_unit
from repro.errors import ServiceError
from repro.model.prototypes import Prototype
from repro.model.schema import RelationSchema
from repro.model.services import Service, ServiceRegistry

__all__ = [
    "READ_LOAD",
    "CHECK_RELAY",
    "READ_STATION",
    "READ_GRID_NODE",
    "READ_WEATHER",
    "RAISE_ALERT",
    "CITY_PROTOTYPES",
    "quantize",
    "SmartMeter",
    "GridRelay",
    "Substation",
    "SpareStation",
    "WeatherStation",
    "Alert",
    "AlertLog",
    "AlertSink",
    "CityStreamFeeder",
]

READ_LOAD = Prototype(
    "readLoad",
    RelationSchema(()),
    RelationSchema.of(load="REAL"),
)

CHECK_RELAY = Prototype(
    "checkRelay",
    RelationSchema(()),
    RelationSchema.of(status="STRING", throughput="REAL"),
)

READ_STATION = Prototype(
    "readStation",
    RelationSchema(()),
    RelationSchema.of(capacity="REAL", utilization="REAL"),
)

#: The spare's richer prototype: output schema is a superset of
#: ``readStation``'s, so a ``specializes`` substitution rule projects it
#: down — the spare never joins the ``stations`` discovery table on its
#: own, exactly like the environmental spare of the §5.2 scenarios.
READ_GRID_NODE = Prototype(
    "readGridNode",
    RelationSchema(()),
    RelationSchema.of(capacity="REAL", utilization="REAL", frequency="REAL"),
)

READ_WEATHER = Prototype(
    "readWeather",
    RelationSchema(()),
    RelationSchema.of(temperature="REAL", wind="REAL"),
)

RAISE_ALERT = Prototype(
    "raiseAlert",
    RelationSchema.of(zone="STRING", load="REAL"),
    RelationSchema.of(ack="BOOLEAN"),
    active=True,
)

CITY_PROTOTYPES = (
    READ_LOAD,
    CHECK_RELAY,
    READ_STATION,
    READ_GRID_NODE,
    READ_WEATHER,
    RAISE_ALERT,
)


def quantize(value: float) -> float:
    """Snap to quarter steps: exact binary fractions, so aggregation is
    order-independent down to the last bit."""
    return round(value * 4.0) / 4.0


class SmartMeter:
    """A household/commercial meter reporting instantaneous load (kW).

    The reading is base draw × the zone's staggered demand surge, plus
    small deterministic wobble.  ``phase`` staggers the surge windows
    per zone so zones peak at different instants (rush hour moves across
    the city), which is what makes the per-zone ``overloads`` query fire
    zone by zone instead of all at once.
    """

    def __init__(
        self,
        reference: str,
        zone: str,
        relay: str,
        base: float,
        surge_factor: float = 1.0,
        surge_period: int = 20,
        surge_width: int = 6,
        phase: int = 0,
    ):
        self.reference = reference
        self.zone = zone
        self.relay = relay
        self.base = base
        self.surge_factor = surge_factor
        self.surge_period = surge_period
        self.surge_width = surge_width
        self.phase = phase

    def surging(self, instant: int) -> bool:
        return (instant + self.phase) % self.surge_period < self.surge_width

    def load(self, instant: int) -> float:
        factor = 1.0 + (self.surge_factor if self.surging(instant) else 0.0)
        wobble = 2.0 * stable_gauss_like(self.reference, "load", instant)
        return max(0.0, quantize(self.base * factor + wobble))

    def as_service(self) -> Service:
        def read_load(inputs, instant):
            return [{"load": self.load(instant)}]

        return Service(
            self.reference,
            {READ_LOAD: read_load},
            description=f"smart meter in zone {self.zone}",
            properties={"zone": self.zone, "feeder": self.relay},
        )

    def __repr__(self) -> str:
        return f"SmartMeter({self.reference!r} @ {self.zone!r})"


class GridRelay:
    """A feeder relay: reports breaker status and throughput (kW)."""

    def __init__(self, reference: str, zone: str, rating: float = 200.0):
        self.reference = reference
        self.zone = zone
        self.rating = rating

    def throughput(self, instant: int) -> float:
        swing = 0.3 * stable_unit(self.reference, "thru", instant)
        return quantize(self.rating * (0.5 + swing))

    def status(self, instant: int) -> str:
        return "closed" if self.throughput(instant) < self.rating else "open"

    def as_service(self) -> Service:
        def check_relay(inputs, instant):
            return [
                {"status": self.status(instant), "throughput": self.throughput(instant)}
            ]

        return Service(
            self.reference,
            {CHECK_RELAY: check_relay},
            description=f"grid relay in zone {self.zone}",
            properties={"zone": self.zone},
        )

    def __repr__(self) -> str:
        return f"GridRelay({self.reference!r} @ {self.zone!r})"


class Substation:
    """A zone substation: rated capacity plus live utilization (kW)."""

    def __init__(self, reference: str, zone: str, capacity: float = 500.0):
        self.reference = reference
        self.zone = zone
        self.capacity = capacity

    def utilization(self, instant: int) -> float:
        level = 0.4 + 0.4 * stable_unit(self.reference, "util", instant)
        return quantize(self.capacity * level)

    def as_service(self) -> Service:
        def read_station(inputs, instant):
            return [
                {"capacity": self.capacity, "utilization": self.utilization(instant)}
            ]

        return Service(
            self.reference,
            {READ_STATION: read_station},
            description=f"substation in zone {self.zone}",
            properties={"zone": self.zone, "capacity": self.capacity},
        )

    def __repr__(self) -> str:
        return f"Substation({self.reference!r} @ {self.zone!r})"


class SpareStation(Substation):
    """A hot-spare grid node implementing only the richer
    ``readGridNode`` prototype — it never joins the ``stations``
    discovery table on its own, and participates exactly when a
    ``specializes`` substitution rule projects its readings down for a
    dead substation (the cascade's "spares absorb load" leg)."""

    def frequency(self, instant: int) -> float:
        return quantize(50.0 + 0.5 * stable_gauss_like(self.reference, "hz", instant))

    def as_service(self) -> Service:
        def read_grid_node(inputs, instant):
            return [
                {
                    "capacity": self.capacity,
                    "utilization": self.utilization(instant),
                    "frequency": self.frequency(instant),
                }
            ]

        return Service(
            self.reference,
            {READ_GRID_NODE: read_grid_node},
            description=f"spare grid node in zone {self.zone}",
            properties={"zone": self.zone, "capacity": self.capacity},
        )

    def __repr__(self) -> str:
        return f"SpareStation({self.reference!r} @ {self.zone!r})"


class WeatherStation:
    """A per-zone weather sensor (temperature °C, wind m/s)."""

    def __init__(self, reference: str, zone: str, base_temp: float = 15.0):
        self.reference = reference
        self.zone = zone
        self.base_temp = base_temp

    def temperature(self, instant: int) -> float:
        drift = 3.0 * stable_gauss_like(self.reference, "temp", instant // 12)
        return quantize(self.base_temp + drift)

    def wind(self, instant: int) -> float:
        return quantize(8.0 * stable_unit(self.reference, "wind", instant))

    def as_service(self) -> Service:
        def read_weather(inputs, instant):
            return [
                {"temperature": self.temperature(instant), "wind": self.wind(instant)}
            ]

        return Service(
            self.reference,
            {READ_WEATHER: read_weather},
            description=f"weather station in zone {self.zone}",
            properties={"zone": self.zone},
        )

    def __repr__(self) -> str:
        return f"WeatherStation({self.reference!r} @ {self.zone!r})"


@dataclass(frozen=True)
class Alert:
    """One overload alert accepted by a sink."""

    instant: int
    sink: str
    zone: str
    load: float


@dataclass
class AlertLog:
    """Shared, inspectable record of every raised alert (the city
    analogue of the messengers' :class:`~repro.devices.messengers.Outbox`)."""

    alerts: list[Alert] = field(default_factory=list)

    def record(self, alert: Alert) -> None:
        self.alerts.append(alert)

    def for_zone(self, zone: str) -> list[Alert]:
        return [a for a in self.alerts if a.zone == zone]

    def __len__(self) -> int:
        return len(self.alerts)


class AlertSink:
    """An operations-center gateway implementing active ``raiseAlert``."""

    def __init__(self, reference: str, log: AlertLog | None = None):
        self.reference = reference
        self.log = log if log is not None else AlertLog()

    def as_service(self) -> Service:
        def raise_alert(inputs, instant):
            self.log.record(
                Alert(instant, self.reference, str(inputs["zone"]), inputs["load"])
            )
            return [{"ack": True}]

        return Service(
            self.reference,
            {RAISE_ALERT: raise_alert},
            description="operations alert sink",
            properties={},
        )

    def __repr__(self) -> str:
        return f"AlertSink({self.reference!r}, {len(self.log)} alerts)"


class FleetTelemetryFeeder:
    """Per-tick producer of one telemetry stream for one prototype.

    Invokes ``prototype`` on every currently registered provider and
    inserts one row per result via ``build_row(service, outputs,
    instant)``.  It reads through the service registry, so:

    * a churned-out or quarantined device silently stops feeding (one
      flaky device never silences the fleet — its reading is simply
      absent that instant),
    * a crashed-but-substituted device keeps flowing: the registry's
      failover table serves the substitute's projected reading, from
      the crash instant itself (zero missed readings),
    * every failure is *recorded* on the per-tick path, so health
      transitions (and therefore substitution sweeps) are identical on
      every engine — they never depend on how a query engine schedules
      its invocations.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        prototype: "Prototype",
        insert,
        build_row,
        period: int = 1,
    ):
        self.registry = registry
        self.prototype = prototype
        self.insert = insert
        self.build_row = build_row
        self.period = period

    def __call__(self, instant: int) -> None:
        if instant % self.period != 0:
            return
        rows = []
        for service in self.registry.providers(self.prototype):
            try:
                results = self.registry.invoke(
                    self.prototype, service.reference, {}, instant
                )
            except ServiceError:
                continue
            for outputs in results:
                rows.append(self.build_row(service, outputs, instant))
        if rows:
            self.insert(rows)


def load_row(service: Service, outputs, instant: int) -> dict:
    (load,) = outputs
    return {
        "meter": service.reference,
        "zone": str(service.properties.get("zone", "unknown")),
        "feeder": str(service.properties.get("feeder", "")),
        "load": load,
        "at": instant,
    }


def station_row(service: Service, outputs, instant: int) -> dict:
    capacity, utilization = outputs
    return {
        "station": service.reference,
        "zone": str(service.properties.get("zone", "unknown")),
        "capacity": capacity,
        "utilization": utilization,
        "at": instant,
    }


def relay_row(service: Service, outputs, instant: int) -> dict:
    status, throughput = outputs
    return {
        "relay": service.reference,
        "zone": str(service.properties.get("zone", "unknown")),
        "status": status,
        "throughput": throughput,
        "at": instant,
    }


def weather_row(service: Service, outputs, instant: int) -> dict:
    temperature, wind = outputs
    return {
        "station": service.reference,
        "zone": str(service.properties.get("zone", "unknown")),
        "temperature": temperature,
        "wind": wind,
        "at": instant,
    }
