"""The city declaration: a plain-dict (or TOML/JSON file) config.

A :class:`CityConfig` is the *entire* input to the generator — zones,
device counts per prototype, load distributions, substitution spares,
churn rates and the optional cascade spec.  Two configs that compare
equal generate byte-identical cities (see ``CityConfig.digest`` and the
determinism tests), which is what lets the differential harness pin
every engine on the same sampled city.

Configs load from plain dicts (:meth:`CityConfig.from_dict`), JSON
files, or TOML files where the interpreter ships ``tomllib`` (Python
3.11+; the CI matrix still runs 3.10, so the TOML path is gated and
JSON is the portable interchange format).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.city.cascade import CascadeSpec
from repro.errors import SerenaError

__all__ = ["CityConfig", "SMALL_CITY", "DEMO_CITY"]


def _zone_names(zones: int | list | tuple) -> tuple[str, ...]:
    if isinstance(zones, int):
        if zones < 1:
            raise SerenaError("a city needs at least one zone")
        return tuple(f"z{i}" for i in range(zones))
    names = tuple(str(z) for z in zones)
    if len(set(names)) != len(names):
        raise SerenaError(f"duplicate zone names in {names}")
    return names


@dataclass(frozen=True)
class CityConfig:
    """Declarative description of one generated city.

    Parameters
    ----------
    name:
        Scenario family name (labels digests, bench rows, CLI output).
    seed:
        Root of every deterministic draw — device attributes, churn
        faults, cascade stagger.  Same config + same seed ⇒ the same
        city, byte for byte, in any process.
    zones:
        Zone count (named ``z0`` … ``zN``) or explicit zone names.  On
        the federated engines each zone name becomes a shard and the
        partitioned relations route rows by their ``zone`` attribute.
    meters_per_zone / relays_per_zone / stations_per_zone /
    weather_per_zone:
        Device counts per prototype per zone.
    alert_sinks:
        City-wide alert gateways (active ``raiseAlert`` services).
    spare_stations_per_zone:
        Hot spares per zone: richer ``readGridNode`` stations that never
        join the ``stations`` discovery table but are declared as
        ``specializes`` substitutes for every station in their zone.
    base_load / load_spread:
        Per-meter nominal draw (kW): each meter's base is drawn
        uniformly from ``[base_load - load_spread, base_load +
        load_spread]`` at generation time.
    surge_factor / surge_period / surge_width:
        The deterministic demand surge: a zone ``i`` multiplies its
        meters' load by ``1 + surge_factor`` whenever ``(instant + 7·i)
        % surge_period < surge_width`` — staggered rush hours that push
        zone averages over the overload threshold.
    overload_threshold:
        Per-zone average load (kW) above which the ``overloads`` query
        raises an alert.
    churn_rate:
        Probability that a meter's reading fails at a given instant
        (deterministic per ``(seed, meter, instant)``) — background
        device flakiness independent of any cascade.
    cascade:
        Optional :class:`~repro.city.cascade.CascadeSpec` — the scripted
        cascading failure the compiler expands lazily.
    """

    name: str = "city"
    seed: str = "city-0"
    zones: tuple[str, ...] = ("z0", "z1")
    meters_per_zone: int = 8
    relays_per_zone: int = 2
    stations_per_zone: int = 1
    weather_per_zone: int = 1
    alert_sinks: int = 1
    spare_stations_per_zone: int = 1
    base_load: float = 40.0
    load_spread: float = 10.0
    surge_factor: float = 1.0
    surge_period: int = 20
    surge_width: int = 6
    overload_threshold: float = 70.0
    churn_rate: float = 0.0
    cascade: CascadeSpec | None = None

    def __post_init__(self):
        object.__setattr__(self, "zones", _zone_names(self.zones))
        for name in (
            "meters_per_zone",
            "relays_per_zone",
            "stations_per_zone",
            "weather_per_zone",
            "alert_sinks",
            "spare_stations_per_zone",
        ):
            if getattr(self, name) < 0:
                raise SerenaError(f"{name} must be >= 0")
        if not 0.0 <= self.churn_rate <= 1.0:
            raise SerenaError(f"churn_rate must be within [0, 1], got {self.churn_rate}")
        if self.cascade is not None and self.cascade.zone >= len(self.zones):
            raise SerenaError(
                f"cascade targets zone index {self.cascade.zone} but the city "
                f"has only {len(self.zones)} zones"
            )

    # -- derived ------------------------------------------------------------

    @property
    def device_count(self) -> int:
        """Total generated devices (spares and sinks included)."""
        per_zone = (
            self.meters_per_zone
            + self.relays_per_zone
            + self.stations_per_zone
            + self.weather_per_zone
            + self.spare_stations_per_zone
        )
        return per_zone * len(self.zones) + self.alert_sinks

    def digest(self) -> str:
        """Stable content hash of the declaration (hex)."""
        return hashlib.sha256(
            json.dumps(self.to_dict(), sort_keys=True).encode("utf-8")
        ).hexdigest()

    # -- interchange --------------------------------------------------------

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["zones"] = list(self.zones)
        if self.cascade is not None:
            payload["cascade"] = asdict(self.cascade)
        return payload

    @classmethod
    def from_dict(cls, raw: dict) -> "CityConfig":
        """Build a config from a plain dict (TOML/JSON decode output)."""
        if not isinstance(raw, dict):
            raise SerenaError(
                f"city config must be a table/object, got {type(raw).__name__}"
            )
        known = set(cls.__dataclass_fields__)
        unknown = set(raw) - known
        if unknown:
            raise SerenaError(
                f"unknown city config keys {sorted(unknown)}; known: {sorted(known)}"
            )
        payload = dict(raw)
        cascade = payload.get("cascade")
        if isinstance(cascade, dict):
            payload["cascade"] = CascadeSpec(**cascade)
        if "zones" in payload and isinstance(payload["zones"], list):
            payload["zones"] = tuple(payload["zones"])
        return cls(**payload)

    @classmethod
    def load(cls, path: str | Path) -> "CityConfig":
        """Load a config file — ``.toml`` (Python 3.11+) or ``.json``."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".toml":
            try:
                import tomllib
            except ImportError as error:  # pragma: no cover - 3.10 CI lane
                raise SerenaError(
                    "TOML city configs need Python 3.11+ (tomllib); "
                    "use the JSON form on this interpreter"
                ) from error
            return cls.from_dict(tomllib.loads(text))
        if path.suffix == ".json":
            return cls.from_dict(json.loads(text))
        raise SerenaError(
            f"unsupported city config extension {path.suffix!r} (want .toml/.json)"
        )


#: The differential-sized sample: 2 zones, ~30 devices, one cascade.
#: Small enough for four engines × 55 ticks in CI, big enough that every
#: query in the pack does real work through the scripted cascade.
SMALL_CITY = CityConfig(
    name="small-city",
    seed="small-city-1",
    zones=("north", "south"),
    meters_per_zone=6,
    relays_per_zone=2,
    stations_per_zone=2,
    weather_per_zone=1,
    alert_sinks=1,
    spare_stations_per_zone=1,
    churn_rate=0.05,
    cascade=CascadeSpec(zone=0, crash_at=20, flicker_ticks=8, stagger=2),
)

#: The CLI demo city: 4 zones, a few hundred devices.
DEMO_CITY = CityConfig(
    name="demo-city",
    seed="demo-city-1",
    zones=("north", "south", "east", "west"),
    meters_per_zone=40,
    relays_per_zone=6,
    stations_per_zone=3,
    weather_per_zone=2,
    alert_sinks=2,
    spare_stations_per_zone=1,
    churn_rate=0.02,
    cascade=CascadeSpec(zone=1, crash_at=15, flicker_ticks=10, stagger=1),
)
