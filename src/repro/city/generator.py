"""Seed-driven expansion of a :class:`CityConfig` into a topology.

``generate_topology`` turns the declarative config into a concrete
device list: every generated attribute (a meter's base draw, a
station's capacity, which relay feeds which meter) is drawn through
:mod:`repro.devices.determinism` from ``(config.seed, reference, tag)``
— no RNG state, no ordering sensitivity — so the same config yields a
byte-identical topology in any process (``CityTopology.digest`` pins
this across process boundaries in the determinism tests).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.city.config import CityConfig
from repro.city.devices import quantize
from repro.devices.determinism import stable_unit

__all__ = ["DeviceSpec", "CityTopology", "generate_topology"]


@dataclass(frozen=True)
class DeviceSpec:
    """One generated device: everything needed to instantiate it."""

    kind: str  # "meter" | "relay" | "station" | "spare" | "weather" | "sink"
    reference: str
    zone: str
    attrs: tuple[tuple[str, float | str], ...] = ()

    def attr(self, name: str):
        for key, value in self.attrs:
            if key == name:
                return value
        raise KeyError(name)

    def line(self) -> str:
        """Canonical one-line form (the digest input)."""
        attrs = ",".join(f"{k}={v!r}" for k, v in self.attrs)
        return f"{self.kind} {self.reference} zone={self.zone} {attrs}"


@dataclass(frozen=True)
class CityTopology:
    """The generated city: device specs grouped by kind."""

    config: CityConfig
    meters: tuple[DeviceSpec, ...] = ()
    relays: tuple[DeviceSpec, ...] = ()
    stations: tuple[DeviceSpec, ...] = ()
    spares: tuple[DeviceSpec, ...] = ()
    weather: tuple[DeviceSpec, ...] = ()
    sinks: tuple[DeviceSpec, ...] = ()
    thresholds: tuple[tuple[str, float], ...] = ()  # (zone, overload threshold)

    def devices(self):
        yield from self.meters
        yield from self.relays
        yield from self.stations
        yield from self.spares
        yield from self.weather
        yield from self.sinks

    def __len__(self) -> int:
        return sum(1 for _ in self.devices())

    def digest(self) -> str:
        """Stable content hash over every generated device and threshold."""
        blob = hashlib.sha256()
        blob.update(self.config.digest().encode("ascii"))
        for spec in self.devices():
            blob.update(spec.line().encode("utf-8"))
            blob.update(b"\n")
        for zone, threshold in self.thresholds:
            blob.update(f"threshold {zone} {threshold!r}\n".encode("utf-8"))
        return blob.hexdigest()


def _draw(seed: str, reference: str, tag: str, low: float, high: float) -> float:
    """A quantized uniform draw in [low, high] — generation-time only."""
    return quantize(low + (high - low) * stable_unit(seed, reference, tag))


def generate_topology(config: CityConfig) -> CityTopology:
    """Expand ``config`` into a concrete :class:`CityTopology`."""
    seed = config.seed
    meters: list[DeviceSpec] = []
    relays: list[DeviceSpec] = []
    stations: list[DeviceSpec] = []
    spares: list[DeviceSpec] = []
    weather: list[DeviceSpec] = []
    for zi, zone in enumerate(config.zones):
        zone_relays = []
        for ri in range(config.relays_per_zone):
            ref = f"relay-{zone}-{ri}"
            rating = _draw(seed, ref, "rating", 150.0, 300.0)
            zone_relays.append(ref)
            relays.append(DeviceSpec("relay", ref, zone, (("rating", rating),)))
        for mi in range(config.meters_per_zone):
            ref = f"meter-{zone}-{mi}"
            base = _draw(
                seed,
                ref,
                "base",
                config.base_load - config.load_spread,
                config.base_load + config.load_spread,
            )
            # Which relay feeds this meter: a deterministic draw, not
            # round-robin, so relay fan-out is uneven like a real feeder.
            if zone_relays:
                pick = int(
                    stable_unit(seed, ref, "feeder") * len(zone_relays)
                ) % len(zone_relays)
                feeder = zone_relays[pick]
            else:
                feeder = ""
            meters.append(
                DeviceSpec(
                    "meter",
                    ref,
                    zone,
                    (("base", base), ("relay", feeder), ("phase", 7 * zi)),
                )
            )
        for si in range(config.stations_per_zone):
            ref = f"station-{zone}-{si}"
            capacity = _draw(seed, ref, "capacity", 400.0, 800.0)
            stations.append(DeviceSpec("station", ref, zone, (("capacity", capacity),)))
        for pi in range(config.spare_stations_per_zone):
            ref = f"spare-{zone}-{pi}"
            capacity = _draw(seed, ref, "capacity", 400.0, 800.0)
            spares.append(DeviceSpec("spare", ref, zone, (("capacity", capacity),)))
        for wi in range(config.weather_per_zone):
            ref = f"weather-{zone}-{wi}"
            base_temp = _draw(seed, ref, "temp", 5.0, 25.0)
            weather.append(
                DeviceSpec("weather", ref, zone, (("base_temp", base_temp),))
            )
    sinks = tuple(
        DeviceSpec("sink", f"sink-{i}", "") for i in range(config.alert_sinks)
    )
    thresholds = tuple(
        (zone, quantize(config.overload_threshold)) for zone in config.zones
    )
    return CityTopology(
        config=config,
        meters=tuple(meters),
        relays=tuple(relays),
        stations=tuple(stations),
        spares=tuple(spares),
        weather=tuple(weather),
        sinks=sinks,
        thresholds=thresholds,
    )
