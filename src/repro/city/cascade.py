"""The cascading-failure script compiler.

A :class:`CascadeSpec` is the declarative form of a grid cascade:
"substation *k* of zone *i* crashes for good at τ, the relays downstream
go intermittent in staggered episodes over the next few ticks, and the
zone's spare absorbs the station's load through the substitution
registry".  A :class:`CascadeSchedule` compiles the spec against a
generated topology into per-device :class:`~repro.devices.faults.
FaultScript`\\ s.

The compilation is **lazy**: the schedule keeps only the spec, the
crashed station's reference and a per-zone relay index — O(affected
devices) memory however long the run.  ``script_for(reference)``
synthesizes the (frozen, cached-by-construction-cheapness) script on
demand; nothing ever materializes a ``(device, tick)`` pair.  An earlier
draft precomputed the full device × tick fault matrix up front, which
at 4096 devices × a 55-tick run allocated hundreds of thousands of
entries before the first tick ran; the regression test
``tests/city/test_cascade.py::test_schedule_memory_bound`` pins the lazy
behaviour.  :meth:`CascadeSchedule.expand` still offers the eager map
for debugging, behind an explicit entry cap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.devices.faults import FaultScript
from repro.errors import SerenaError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.city.generator import CityTopology

__all__ = ["CascadeSpec", "CascadeSchedule"]


@dataclass(frozen=True)
class CascadeSpec:
    """One scripted cascade, resolved against a topology at build time.

    Parameters
    ----------
    zone:
        Index into the config's zone tuple: the zone whose station dies.
    station:
        Which of the zone's stations crashes (index).
    crash_at:
        The instant of the permanent crash (``FaultScript(crash_at=…)``
        — the device never recovers, which is what drives the semantic
        substitution path).
    flicker_ticks:
        Length of each downstream relay's intermittent episode.
    stagger:
        Instants between successive relays' episode starts — the
        cascade propagates outward rather than failing everything at
        once.
    failure_rate:
        Intermittent failure probability inside a relay's episode
        (deterministic per ``(seed, relay, instant)``).
    """

    zone: int = 0
    station: int = 0
    crash_at: int = 20
    flicker_ticks: int = 8
    stagger: int = 1
    failure_rate: float = 0.6

    def __post_init__(self):
        if self.zone < 0 or self.station < 0:
            raise SerenaError("cascade zone/station indices must be >= 0")
        if self.crash_at < 0:
            raise SerenaError(f"crash_at must be >= 0, got {self.crash_at}")
        if self.flicker_ticks < 1:
            raise SerenaError("flicker_ticks must be >= 1")
        if self.stagger < 0:
            raise SerenaError("stagger must be >= 0")
        if not 0.0 < self.failure_rate <= 1.0:
            raise SerenaError(
                f"failure_rate must be within (0, 1], got {self.failure_rate}"
            )


class CascadeSchedule:
    """A compiled cascade: per-device fault scripts, synthesized lazily.

    ``script_for(reference)`` is the whole interface the scenario
    builder needs: it returns the :class:`FaultScript` the cascade
    assigns to ``reference`` (or ``None`` for the unaffected fleet).
    """

    def __init__(self, spec: CascadeSpec, topology: "CityTopology"):
        zones = topology.config.zones
        if spec.zone >= len(zones):
            raise SerenaError(
                f"cascade zone index {spec.zone} out of range for {zones}"
            )
        self.spec = spec
        self.zone = zones[spec.zone]
        stations = [d.reference for d in topology.stations if d.zone == self.zone]
        if spec.station >= len(stations):
            raise SerenaError(
                f"cascade station index {spec.station} out of range: zone "
                f"{self.zone!r} has {len(stations)} stations"
            )
        #: The permanently-crashed station.
        self.crashed_station: str = stations[spec.station]
        # Episode start per downstream relay — the only per-device state
        # the schedule holds (O(relays in the affected zone), never
        # (device, tick) pairs).
        self._relay_rank: dict[str, int] = {
            d.reference: rank
            for rank, d in enumerate(
                d for d in topology.relays if d.zone == self.zone
            )
        }

    def affected(self) -> Iterator[str]:
        """References the cascade touches (station first, then relays)."""
        yield self.crashed_station
        yield from self._relay_rank

    def script_for(self, reference: str) -> FaultScript | None:
        """The fault script the cascade assigns to ``reference``."""
        if reference == self.crashed_station:
            return FaultScript(crash_at=self.spec.crash_at)
        rank = self._relay_rank.get(reference)
        if rank is None:
            return None
        start = self.spec.crash_at + 1 + self.spec.stagger * rank
        return FaultScript(
            failure_rate=self.spec.failure_rate,
            intermittent_windows=((start, start + self.spec.flicker_ticks),),
        )

    def expand(self, limit: int = 4096) -> dict[str, FaultScript]:
        """Debug helper: the eager reference → script map, capped.

        The cap is a guard against reintroducing the up-front
        materialization this module exists to avoid — a cascade whose
        affected set exceeds ``limit`` refuses to expand eagerly.
        """
        affected = list(self.affected())
        if len(affected) > limit:
            raise SerenaError(
                f"refusing to materialize {len(affected)} cascade scripts "
                f"(limit {limit}); use script_for(reference) lazily"
            )
        return {
            reference: script
            for reference in affected
            if (script := self.script_for(reference)) is not None
        }
