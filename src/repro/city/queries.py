"""The city's XD-Relation schemas and standing query pack.

The relations cover the fleet two ways:

* ``meters`` / ``relays`` / ``stations`` / ``weather_stations`` /
  ``alert_sinks`` — discovery-maintained service tables (Section 5.1),
  their real columns filled from each service's discovery properties;
* ``load_readings`` / ``station_telemetry`` / ``relay_telemetry`` /
  ``weather_telemetry`` — the infinite streams the
  :class:`~repro.city.devices.FleetTelemetryFeeder` instances push each
  tick *through the service registry* — so every invocation failure is
  recorded on a per-tick path, quarantine and the substitution failover
  engage identically on every engine, and a crashed-but-substituted
  station keeps flowing (zero missed readings);
* ``zone_thresholds`` — the static per-zone overload limits.

The standing pack exercises every operator family the engines were
built for, fleet-wide:

``zone-load``
    Per-zone α aggregation over the metered load window.
``overloads``
    σ/⋈ alert correlation: zone averages joined with thresholds,
    filtered, then an **active** β invocation raising alerts at every
    registered sink.
``station-health`` / ``relay-health`` / ``storm-watch``
    W(1) sweeps over the telemetry streams (with σ on top for the
    latter two) — the rows the cascade and the substitution registry
    have to keep flowing.
``station-capacity``
    A one-shot β invocation sweep over the ``stations`` discovery
    table: under the delta contract a β over an unchanged input is
    *not* re-invoked, so this reads each station's nameplate capacity
    once at discovery and carries it.
``zone-load:<zone>``
    Optional per-zone pinned aggregations: a σ on the partition
    attribute above the scan, which the federation's scatter planner
    prunes to a single shard.
"""

from __future__ import annotations

from repro.algebra.builder import scan
from repro.algebra.formula import col
from repro.algebra.query import Query
from repro.city.devices import (
    CHECK_RELAY,
    RAISE_ALERT,
    READ_LOAD,
    READ_STATION,
    READ_WEATHER,
)
from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema

__all__ = [
    "meters_schema",
    "relays_schema",
    "stations_schema",
    "weather_schema",
    "alert_sinks_schema",
    "load_readings_schema",
    "station_telemetry_schema",
    "relay_telemetry_schema",
    "weather_telemetry_schema",
    "zone_thresholds_schema",
    "CITY_PARTITION_BY",
    "build_query_pack",
]


def meters_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "meters",
        [
            Attribute("meter", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("feeder", DataType.STRING),
            Attribute("load", DataType.REAL),
        ],
        virtual={"load"},
        binding_patterns=[BindingPattern(READ_LOAD, "meter")],
    )


def relays_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "relays",
        [
            Attribute("relay", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("status", DataType.STRING),
            Attribute("throughput", DataType.REAL),
        ],
        virtual={"status", "throughput"},
        binding_patterns=[BindingPattern(CHECK_RELAY, "relay")],
    )


def stations_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "stations",
        [
            Attribute("station", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("capacity", DataType.REAL),
            Attribute("utilization", DataType.REAL),
        ],
        virtual={"capacity", "utilization"},
        binding_patterns=[BindingPattern(READ_STATION, "station")],
    )


def weather_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "weather_stations",
        [
            Attribute("station", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("temperature", DataType.REAL),
            Attribute("wind", DataType.REAL),
        ],
        virtual={"temperature", "wind"},
        binding_patterns=[BindingPattern(READ_WEATHER, "station")],
    )


def alert_sinks_schema() -> ExtendedRelationSchema:
    """Alert gateways.  ``zone`` and ``load`` are *virtual* here — the
    §5.2 "photo with a message" idiom: joining with the overload rows
    (real ``zone``/``load``) realizes them, which is what enables the
    ``raiseAlert`` binding pattern."""
    return ExtendedRelationSchema(
        "alert_sinks",
        [
            Attribute("sink", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("load", DataType.REAL),
            Attribute("ack", DataType.BOOLEAN),
        ],
        virtual={"zone", "load", "ack"},
        binding_patterns=[BindingPattern(RAISE_ALERT, "sink")],
    )


def load_readings_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "load_readings",
        [
            Attribute("meter", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("feeder", DataType.STRING),
            Attribute("load", DataType.REAL),
            Attribute("at", DataType.TIMESTAMP),
        ],
    )


def station_telemetry_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "station_telemetry",
        [
            Attribute("station", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("capacity", DataType.REAL),
            Attribute("utilization", DataType.REAL),
            Attribute("at", DataType.TIMESTAMP),
        ],
    )


def relay_telemetry_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "relay_telemetry",
        [
            Attribute("relay", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("status", DataType.STRING),
            Attribute("throughput", DataType.REAL),
            Attribute("at", DataType.TIMESTAMP),
        ],
    )


def weather_telemetry_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "weather_telemetry",
        [
            Attribute("station", DataType.SERVICE),
            Attribute("zone", DataType.STRING),
            Attribute("temperature", DataType.REAL),
            Attribute("wind", DataType.REAL),
            Attribute("at", DataType.TIMESTAMP),
        ],
    )


def zone_thresholds_schema() -> ExtendedRelationSchema:
    return ExtendedRelationSchema(
        "zone_thresholds",
        [
            Attribute("zone", DataType.STRING),
            Attribute("threshold", DataType.REAL),
        ],
    )


#: Relation → partition attribute for the federated engines: rows route
#: to shards by their ``zone`` value, so a σ pinning ``zone`` above a
#: finite scan prunes the scatter to a single shard.  (Services still
#: hash to zones by reference — only *rows* follow the zone attribute.)
CITY_PARTITION_BY = {
    "meters": "zone",
    "relays": "zone",
    "stations": "zone",
    "weather_stations": "zone",
    "load_readings": "zone",
    "station_telemetry": "zone",
    "relay_telemetry": "zone",
    "weather_telemetry": "zone",
    "zone_thresholds": "zone",
}


def build_query_pack(
    env, zones: tuple[str, ...] = (), per_zone: bool = True
) -> dict[str, Query]:
    """The standing fleet-wide queries over an environment holding the
    city relations.  ``zones`` (with ``per_zone=True``) adds the pinned
    per-zone aggregations the federation can prune."""
    pack: dict[str, Query] = {}
    pack["zone-load"] = (
        scan(env, "load_readings")
        .window(1)
        .aggregate(
            ["zone"], ("avg", "load", "avg_load"), ("count", None, "readings")
        )
        .query("zone-load")
    )
    pack["overloads"] = (
        scan(env, "load_readings")
        .window(1)
        .aggregate(["zone"], ("avg", "load", "avg_load"))
        .join(scan(env, "zone_thresholds"))
        .select(col("avg_load").gt(col("threshold")))
        .rename("avg_load", "load")
        .project("zone", "load")
        .join(scan(env, "alert_sinks"))
        .invoke("raiseAlert", "sink", on_error="skip")
        .query("overloads")
    )
    pack["station-health"] = (
        scan(env, "station_telemetry")
        .window(1)
        .project("station", "zone", "capacity", "utilization")
        .query("station-health")
    )
    pack["relay-health"] = (
        scan(env, "relay_telemetry")
        .window(1)
        .select(col("status").eq("closed"))
        .project("relay", "zone", "throughput")
        .query("relay-health")
    )
    pack["storm-watch"] = (
        scan(env, "weather_telemetry")
        .window(1)
        .select(col("wind").ge(6.0))
        .project("station", "zone", "temperature", "wind")
        .query("storm-watch")
    )
    pack["station-capacity"] = (
        scan(env, "stations")
        .invoke("readStation", "station", on_error="skip")
        .project("station", "zone", "capacity")
        .query("station-capacity")
    )
    if per_zone:
        for zone in zones:
            # σ/π over a finite zone-partitioned scan: on the federated
            # engines this scatters and prunes to the zone's shard.
            pack[f"zone-meters:{zone}"] = (
                scan(env, "meters")
                .select(col("zone").eq(zone))
                .project("meter", "zone", "feeder")
                .query(f"zone-meters:{zone}")
            )
            pack[f"zone-load:{zone}"] = (
                scan(env, "load_readings")
                .window(1)
                .select(col("zone").eq(zone))
                .aggregate(
                    ["zone"], ("avg", "load", "avg_load"), ("count", None, "readings")
                )
                .query(f"zone-load:{zone}")
            )
    return pack
