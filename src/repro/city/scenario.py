"""Assemble a generated city on any engine (or the federation).

``build_city`` is the city analogue of
:func:`repro.devices.scenario.build_temperature_surveillance`: one call
expands the config into a topology, instantiates and registers every
device (wrapping churned and cascade-affected ones in
:class:`~repro.devices.faults.FaultInjector`), declares the spare
substitution rules, creates the relations, wires the per-prototype
telemetry streams and registers the standing query pack.  The returned :class:`CityScenario`
drives the clock and exposes everything worth asserting on.

On the ``federated*`` engines the config's zones map one-to-one onto
federation shards and the partitioned relations route rows by their
``zone`` attribute (:data:`~repro.city.queries.CITY_PARTITION_BY`), so
the per-zone pinned queries prune to single shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.city.cascade import CascadeSchedule
from repro.city.config import CityConfig
from repro.city.devices import (
    CHECK_RELAY,
    CITY_PROTOTYPES,
    READ_LOAD,
    READ_STATION,
    READ_WEATHER,
    AlertLog,
    AlertSink,
    FleetTelemetryFeeder,
    GridRelay,
    SmartMeter,
    SpareStation,
    Substation,
    WeatherStation,
    load_row,
    relay_row,
    station_row,
    weather_row,
)
from repro.city.generator import CityTopology, generate_topology
from repro.city.queries import (
    CITY_PARTITION_BY,
    alert_sinks_schema,
    build_query_pack,
    load_readings_schema,
    meters_schema,
    relay_telemetry_schema,
    relays_schema,
    station_telemetry_schema,
    stations_schema,
    weather_schema,
    weather_telemetry_schema,
    zone_thresholds_schema,
)
from repro.continuous.continuous_query import ContinuousQuery
from repro.devices.faults import FaultInjector, FaultScript
from repro.model.invocation_policy import InvocationPolicy
from repro.model.substitution import SubstitutionRule
from repro.pems.pems import PEMS

__all__ = ["CityScenario", "build_city", "city_policy"]


def city_policy() -> InvocationPolicy:
    """The default fault-tolerance policy for cities with chaos: one
    failure suspends a device, the quarantine backoff leaves room for a
    substitution rebind inside a 55-tick run."""
    return InvocationPolicy(failure_threshold=1, quarantine_backoff=8)


def _make_pems(config: CityConfig, engine: str, policy, observe, backend: str) -> PEMS:
    if engine.startswith("federated"):
        from repro.fed.pems import FederatedPEMS  # fed layers on city's deps

        parallelism = {
            "federated": None,
            "federated-threads": "threads",
            "federated-processes": "processes",
        }[engine]
        return FederatedPEMS(
            zones=list(config.zones),
            policy=policy,
            observe=observe,
            backend=backend,
            parallelism=parallelism,
            partition_by=CITY_PARTITION_BY,
        )
    return PEMS(engine=engine, policy=policy, observe=observe, backend=backend)


@dataclass
class CityScenario:
    """A built city: the PEMS plus everything worth inspecting."""

    pems: PEMS
    config: CityConfig
    topology: CityTopology
    alerts: AlertLog
    queries: dict[str, ContinuousQuery] = field(default_factory=dict)
    devices: dict[str, object] = field(default_factory=dict)
    injectors: dict[str, FaultInjector] = field(default_factory=dict)
    cascade: CascadeSchedule | None = None

    @property
    def environment(self):
        return self.pems.environment

    @property
    def clock(self):
        return self.pems.clock

    def run(self, instants: int) -> int:
        """Advance the city clock."""
        return self.pems.run(instants)


def build_city(
    config: CityConfig,
    engine: str = "incremental",
    policy: InvocationPolicy | None = None,
    observe: object = None,
    backend: str = "row",
    with_queries: bool = True,
    per_zone_queries: bool = True,
) -> CityScenario:
    """Expand ``config`` and assemble the full city environment.

    ``engine`` is any query-engine name (``naive`` / ``incremental`` /
    ``shared`` / ``columnar``) or a federation mode (``federated`` /
    ``federated-threads`` / ``federated-processes`` — zones become
    shards).  ``backend`` selects the physical delta representation
    (``row`` / ``columnar``).  ``policy`` defaults to
    :func:`city_policy` whenever the config scripts chaos (churn or a
    cascade) so quarantine and substitution actually engage; pass an
    explicit policy to override.
    """
    if policy is None and (config.churn_rate > 0.0 or config.cascade is not None):
        policy = city_policy()
    pems = _make_pems(config, engine, policy, observe, backend)
    env = pems.environment
    for prototype in CITY_PROTOTYPES:
        env.declare_prototype(prototype)

    topology = generate_topology(config)
    alerts = AlertLog()
    scenario = CityScenario(pems, config, topology, alerts)
    cascade = (
        CascadeSchedule(config.cascade, topology)
        if config.cascade is not None
        else None
    )
    scenario.cascade = cascade
    churn_script = (
        FaultScript(failure_rate=config.churn_rate) if config.churn_rate else None
    )

    def register(erm, device, spec):
        scenario.devices[spec.reference] = device
        registered = device.as_service()
        script = cascade.script_for(spec.reference) if cascade is not None else None
        if script is None and spec.kind == "meter":
            script = churn_script
        if script is not None:
            injector = FaultInjector(registered, script, seed=config.seed)
            scenario.injectors[spec.reference] = injector
            registered = injector.as_service()
        erm.register(registered)

    # One Local ERM per zone (its bus segment on the federation), one
    # for the city-wide operations center.
    for zone in config.zones:
        erm = pems.create_local_erm(f"grid-{zone}")
        for spec in topology.meters:
            if spec.zone != zone:
                continue
            meter = SmartMeter(
                spec.reference,
                zone,
                relay=str(spec.attr("relay")),
                base=float(spec.attr("base")),
                surge_factor=config.surge_factor,
                surge_period=config.surge_period,
                surge_width=config.surge_width,
                phase=int(spec.attr("phase")),
            )
            register(erm, meter, spec)
        for spec in topology.relays:
            if spec.zone == zone:
                register(
                    erm,
                    GridRelay(spec.reference, zone, rating=float(spec.attr("rating"))),
                    spec,
                )
        for spec in topology.stations:
            if spec.zone == zone:
                register(
                    erm,
                    Substation(
                        spec.reference, zone, capacity=float(spec.attr("capacity"))
                    ),
                    spec,
                )
        for spec in topology.spares:
            if spec.zone == zone:
                register(
                    erm,
                    SpareStation(
                        spec.reference, zone, capacity=float(spec.attr("capacity"))
                    ),
                    spec,
                )
        for spec in topology.weather:
            if spec.zone == zone:
                register(
                    erm,
                    WeatherStation(
                        spec.reference, zone, base_temp=float(spec.attr("base_temp"))
                    ),
                    spec,
                )
    ops_erm = pems.create_local_erm("ops")
    for spec in topology.sinks:
        register(ops_erm, AlertSink(spec.reference, alerts), spec)

    # Every station in a zone can fail over to every spare in its zone;
    # ranking (and the reference tie-break) picks the same spare on
    # every engine.
    for station in topology.stations:
        for spare in topology.spares:
            if spare.zone == station.zone:
                pems.declare_substitution(
                    SubstitutionRule.specializes(
                        "readStation",
                        spare.reference,
                        "readGridNode",
                        reference=station.reference,
                    )
                )

    tables = pems.tables
    tables.create_relation(meters_schema())
    tables.create_relation(relays_schema())
    tables.create_relation(stations_schema())
    tables.create_relation(weather_schema())
    tables.create_relation(alert_sinks_schema())
    tables.create_relation(zone_thresholds_schema())
    tables.create_relation(load_readings_schema(), infinite=True)
    tables.create_relation(station_telemetry_schema(), infinite=True)
    tables.create_relation(relay_telemetry_schema(), infinite=True)
    tables.create_relation(weather_telemetry_schema(), infinite=True)
    tables.insert(
        "zone_thresholds",
        [{"zone": zone, "threshold": t} for zone, t in topology.thresholds],
    )

    # Discovery keeps the service tables synchronized with the fleet.
    pems.queries.register_discovery("readLoad", "meters", "meter")
    pems.queries.register_discovery("checkRelay", "relays", "relay")
    pems.queries.register_discovery("readStation", "stations", "station")
    pems.queries.register_discovery("readWeather", "weather_stations", "station")
    pems.queries.register_discovery("raiseAlert", "alert_sinks", "sink")

    # The telemetry feeders poll every registered provider each tick
    # *through the registry*: failures are recorded (so the cascade's
    # crash quarantines and rebinds), substituted devices keep flowing,
    # and quarantined ones drop out of the stream for the episode.
    def feed(prototype, relation, build_row):
        pems.add_stream_source(
            FleetTelemetryFeeder(
                env.registry,
                prototype,
                lambda rows, _relation=relation: tables.insert(_relation, rows),
                build_row,
            )
        )

    feed(READ_LOAD, "load_readings", load_row)
    feed(READ_STATION, "station_telemetry", station_row)
    feed(CHECK_RELAY, "relay_telemetry", relay_row)
    feed(READ_WEATHER, "weather_telemetry", weather_row)

    if with_queries:
        pack = build_query_pack(env, config.zones, per_zone=per_zone_queries)
        for name, query in pack.items():
            scenario.queries[name] = pems.queries.register_continuous(query)

    return scenario
