"""Serena conjunctive calculus: a Datalog-style front-end (Section 7).

The paper's future work includes "studying the equivalence of the Serena
algebra with some logic-based query languages in order to define a
corresponding calculus".  This module realizes the *conjunctive fragment*
of that calculus and its translation into the algebra::

    ans(s, t) :- sensors(s, 'office', t), t > 25.0.

A rule has a head ``ans(x1, …, xn)`` and a body of:

* **relational atoms** ``rel(term, …)`` — one term per attribute of the
  relation's *full* schema (virtual attributes included), each term a
  variable, a constant, or ``_`` (anonymous);
* **comparison atoms** ``x > 5``, ``x != y``, ``title contains 'war'`` —
  over variables and constants.

Semantics, by translation to the algebra (each step is a Table 3
operator, so the calculus inherits the algebra's semantics exactly):

1. each relational atom compiles to a scan with constants filtered (σ)
   and attributes renamed to variable names (ρ);
2. a variable bound to a **virtual** attribute forces its *realization*:
   the translator inserts the invocation (β) of the binding pattern whose
   outputs cover it — this is how service calls enter the calculus: using
   a virtual position in a rule *is* asking for the invocation;
3. atoms are combined by natural join (⋈) — repeated variables across
   atoms become join predicates;
4. comparison atoms compile to selections (σ) over the join;
5. the head compiles to a projection (π) onto the head variables.

Safety (checked before translation): every head variable and every
variable in a comparison must occur in some relational atom
(range-restriction), and a virtual attribute can only be realized if its
binding pattern's *input* attributes are bound in the same atom.

Active binding patterns are rejected: a logic rule has no evaluation
order, so the action set of an active invocation would be
implementation-defined — the calculus covers the passive (side-effect
free) fragment, which is also the fragment where algebraic equivalence is
meaningful without action sets (Definition 9 degenerates to result
equality).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.formula import Comparison
from repro.algebra.operators.base import Operator
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.query import Query
from repro.errors import ParseError
from repro.lang.lexer import Token, TokenStream, tokenize
from repro.model.environment import PervasiveEnvironment

__all__ = ["parse_rule", "compile_rule", "ConjunctiveRule"]

_COMPARATORS = ("=", "!=", "<=", ">=", "<", ">")


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """A term of a relational atom: variable, constant or anonymous."""

    kind: str  # "var" | "const" | "any"
    value: object = None


@dataclass(frozen=True)
class RelationAtom:
    relation: str
    terms: tuple[Term, ...]


@dataclass(frozen=True)
class ComparisonAtom:
    left: Term
    op: str
    right: Term


@dataclass(frozen=True)
class ConjunctiveRule:
    """``head(vars) :- atoms.``"""

    head_name: str
    head_vars: tuple[str, ...]
    atoms: tuple[RelationAtom, ...]
    comparisons: tuple[ComparisonAtom, ...]


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def parse_rule(text: str) -> ConjunctiveRule:
    """Parse ``head(x, y) :- atom, …, comparison, … .``"""
    stream = TokenStream(tokenize(text))
    head_name = stream.expect_ident().value
    stream.expect_punct("(")
    head_vars: list[str] = []
    if not stream.current.is_punct(")"):
        while True:
            head_vars.append(stream.expect_ident().value)
            if not stream.accept_punct(","):
                break
    stream.expect_punct(")")
    stream.expect_punct(":")
    stream.expect_punct("-")
    atoms: list[RelationAtom] = []
    comparisons: list[ComparisonAtom] = []
    while True:
        item = _parse_body_item(stream)
        if isinstance(item, RelationAtom):
            atoms.append(item)
        else:
            comparisons.append(item)
        if not stream.accept_punct(","):
            break
    stream.accept_punct(";")
    if not stream.at_end():
        raise stream.error("unexpected trailing input")
    if not atoms:
        raise ParseError("a rule needs at least one relational atom")
    return ConjunctiveRule(
        head_name, tuple(head_vars), tuple(atoms), tuple(comparisons)
    )


def _parse_body_item(stream: TokenStream) -> RelationAtom | ComparisonAtom:
    # relational atom: ident '(' ... ')'; comparison: term op term
    if stream.current.kind == "ident" and stream.peek().is_punct("("):
        name = stream.expect_ident().value
        stream.expect_punct("(")
        terms: list[Term] = []
        if not stream.current.is_punct(")"):
            while True:
                terms.append(_parse_term(stream))
                if not stream.accept_punct(","):
                    break
        stream.expect_punct(")")
        return RelationAtom(name, tuple(terms))
    left = _parse_term(stream)
    token = stream.current
    if token.kind == "punct" and token.value in _COMPARATORS:
        op = token.value
        stream.advance()
    elif token.is_keyword("contains"):
        op = "contains"
        stream.advance()
    else:
        raise stream.error("expected a comparison operator")
    right = _parse_term(stream)
    if left.kind == "any" or right.kind == "any":
        raise ParseError("'_' cannot appear in comparisons")
    return ComparisonAtom(left, op, right)


def _parse_term(stream: TokenStream) -> Term:
    token = stream.current
    if token.kind == "string":
        stream.advance()
        return Term("const", token.value)
    if token.kind == "number":
        stream.advance()
        return Term("const", _number(token))
    if token.kind == "ident":
        stream.advance()
        if token.value == "_":
            return Term("any")
        if token.value.lower() == "true":
            return Term("const", True)
        if token.value.lower() == "false":
            return Term("const", False)
        return Term("var", token.value)
    raise stream.error("expected a variable, constant or '_'")


def _number(token: Token) -> object:
    if any(ch in token.value for ch in ".eE"):
        return float(token.value)
    return int(token.value)


# ---------------------------------------------------------------------------
# Translation to the algebra
# ---------------------------------------------------------------------------


def compile_rule(
    text_or_rule: str | ConjunctiveRule,
    environment: PervasiveEnvironment,
) -> Query:
    """Compile a conjunctive rule into an algebra :class:`Query`."""
    rule = (
        parse_rule(text_or_rule)
        if isinstance(text_or_rule, str)
        else text_or_rule
    )
    _check_safety(rule)

    plan: Operator | None = None
    for index, atom in enumerate(rule.atoms):
        node = _compile_atom(atom, index, rule, environment)
        plan = node if plan is None else NaturalJoin(plan, node)
    assert plan is not None

    for comparison in rule.comparisons:
        plan = Selection(plan, _comparison_formula(comparison))

    return Query(Projection(plan, rule.head_vars), rule.head_name)


def _check_safety(rule: ConjunctiveRule) -> None:
    bound = {
        term.value
        for atom in rule.atoms
        for term in atom.terms
        if term.kind == "var"
    }
    for variable in rule.head_vars:
        if variable not in bound:
            raise ParseError(
                f"unsafe rule: head variable {variable!r} does not occur "
                "in any relational atom"
            )
    seen = set()
    for variable in rule.head_vars:
        if variable in seen:
            raise ParseError(
                f"head variable {variable!r} repeated; project once"
            )
        seen.add(variable)
    for comparison in rule.comparisons:
        for term in (comparison.left, comparison.right):
            if term.kind == "var" and term.value not in bound:
                raise ParseError(
                    f"unsafe rule: comparison variable {term.value!r} does "
                    "not occur in any relational atom"
                )
            if term.kind == "any":
                raise ParseError("'_' cannot appear in comparisons")


def _compile_atom(
    atom: RelationAtom,
    index: int,
    rule: ConjunctiveRule,
    environment: PervasiveEnvironment,
) -> Operator:
    """scan → (β for used virtual positions) → σ constants → ρ to vars →
    π used positions."""
    stored = environment.relation(atom.relation)
    schema = environment.schema(atom.relation).with_name(atom.relation)
    if bool(getattr(stored, "infinite", False)):
        raise ParseError(
            f"atom {atom.relation!r}: streams cannot appear in rules "
            "(window them into a finite relation first)"
        )
    names = schema.names
    if len(atom.terms) != len(names):
        raise ParseError(
            f"atom {atom.relation!r} has {len(atom.terms)} terms but the "
            f"schema has {len(names)} attributes {names}"
        )

    node: Operator = Scan(atom.relation, schema)

    # Which attribute positions does the rule actually use?
    used: dict[str, Term] = {}
    for name, term in zip(names, atom.terms):
        if term.kind != "any":
            used[name] = term

    # Realize used virtual attributes by invoking their binding patterns.
    # Needs close transitively: a pattern whose output we need may itself
    # take virtual inputs (e.g. takePhoto needs the quality that
    # checkPhoto realizes), so those inputs become needed too.
    needed = {name for name in used if name in schema.virtual_names}
    changed = True
    while changed:
        changed = False
        for bp in schema.binding_patterns:
            if bp.output_names & needed:
                for input_name in bp.input_names:
                    if input_name in schema.virtual_names and input_name not in needed:
                        needed.add(input_name)
                        changed = True
    needed_virtual = sorted(needed)
    while needed_virtual:
        progressed = False
        for bp in node.schema.binding_patterns:
            covered = set(needed_virtual) & bp.output_names
            if not covered:
                continue
            if bp.active:
                raise ParseError(
                    f"atom {atom.relation!r}: virtual attribute(s) "
                    f"{sorted(covered)} belong to the ACTIVE pattern "
                    f"{bp.prototype.name!r}; the calculus covers the "
                    "passive fragment only"
                )
            if not bp.input_names <= node.schema.real_names:
                continue  # inputs not realizable here
            node = Invocation(node, bp)
            needed_virtual = [
                name for name in needed_virtual if name not in bp.output_names
            ]
            progressed = True
            break
        if not progressed:
            raise ParseError(
                f"atom {atom.relation!r}: cannot realize virtual "
                f"attribute(s) {sorted(needed_virtual)} — no passive "
                "binding pattern with bound inputs covers them"
            )

    # Constants become selections.
    for name, term in used.items():
        if term.kind == "const":
            node = Selection(
                node, Comparison(name, "=", term.value, True, False)
            )

    # Variables become renamings (attribute → variable name); a variable
    # repeated inside ONE atom is expressed by an extra selection first.
    renames: list[tuple[str, str]] = []
    variable_first: dict[str, str] = {}
    for name, term in used.items():
        if term.kind != "var":
            continue
        variable = str(term.value)
        if variable in variable_first:
            node = Selection(
                node,
                Comparison(variable_first[variable], "=", name, True, True),
            )
        else:
            variable_first[variable] = name
            renames.append((name, variable))

    # Project onto the used variable positions, then rename to variables —
    # in two phases via temporaries, since a target variable name may
    # collide with an attribute that is itself about to be renamed
    # (e.g. rule variables swapping two attribute names).
    keep = [name for name, _ in renames]
    if not keep:
        raise ParseError(
            f"atom {atom.relation!r} binds no variables; use at least one"
        )
    node = Projection(node, keep)
    temporaries: list[tuple[str, str]] = []
    for position, (name, variable) in enumerate(renames):
        if name == variable:
            temporaries.append((name, variable))
            continue
        temp = f"__v{index}_{position}"
        node = Renaming(node, name, temp)
        temporaries.append((temp, variable))
    for temp, variable in temporaries:
        if temp != variable:
            node = Renaming(node, temp, variable)
    return node


def _comparison_formula(comparison: ComparisonAtom) -> Comparison:
    left, right = comparison.left, comparison.right
    return Comparison(
        left.value if left.kind == "var" else left.value,
        comparison.op,
        right.value if right.kind == "var" else right.value,
        left.kind == "var",
        right.kind == "var",
    )
