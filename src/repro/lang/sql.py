"""Serena SQL: a SQL-like front-end over the Serena algebra.

Section 1.1 of the paper mentions "the definition of a SQL-like language
based on the Serena algebra, namely the Serena SQL", but does not present
it.  This module defines a concrete Serena SQL — our concretization,
documented here and in DESIGN.md — that compiles to the algebra:

::

    SELECT sensor, temperature
    FROM sensors
    WHERE location = 'office'
    USING getTemperature

    SELECT location, avg(temperature) AS mean_temp
    FROM temperatures [1] NATURAL JOIN surveillance
    WHERE temperature > threshold
    GROUP BY location

    SELECT name, sent
    FROM contacts
    SET text := 'Hot!'
    USING sendMessage
    AS STREAM OF INSERTION

Clause order **is** evaluation order — each clause compiles to the next
algebra operator on top of the previous ones:

========  =====================================================
FROM      scans; ``rel [n]`` applies ``W[n]`` to a stream; the
          relations are combined with natural joins (⋈)
SET       assignments (α), in declared order
WHERE     selection (σ) applied **before** the USING invocations
          — it may only reference attributes real at that point
USING     invocations (β), in declared order; ``STREAMING p
          [AT ts]`` uses a streaming binding pattern (β∞) instead
GROUP BY  grouping (γ) with the aggregate items of SELECT
HAVING    selection (σ) applied **after** invocations/grouping
SELECT    projection (π) unless ``*``
AS STREAM streaming operator (S[insertion] by default)
========  =====================================================

The WHERE/HAVING split is Serena SQL's answer to the paper's equivalence
rules: WHERE filters *before* service invocations (fewer calls, and the
action set of an active ``USING`` prototype reflects the filter — like
Q1), HAVING filters the realized results (like Q1′).  The optimizer can
still move selections across *passive* invocations afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.formula import Formula
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import Aggregate, AggregateFunction, AggregateSpec
from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.scan import Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.streaming import Streaming, StreamType
from repro.algebra.operators.window import Window
from repro.algebra.query import Query
from repro.errors import ParseError
from repro.lang.lexer import TokenStream, tokenize
from repro.lang.sal import _parse_assign_value, _parse_or
from repro.model.environment import PervasiveEnvironment

__all__ = ["parse_sql", "compile_sql"]

#: SELECT-list function names recognized as aggregates.
AGGREGATE_NAMES = frozenset(f.value for f in AggregateFunction)


@dataclass
class _SelectItem:
    """One SELECT list entry: a plain attribute or an aggregate."""

    name: str                      # output attribute name
    function: str | None = None    # aggregate function, if any
    argument: str | None = None    # aggregate argument (None = '*')


@dataclass
class _SqlQuery:
    """Parsed Serena SQL, before compilation."""

    select: list[_SelectItem] | None   # None means '*'
    tables: list[tuple[str, int | None]]  # (name, window period or None)
    assignments: list[tuple[str, object, bool]]  # (attr, value, from_attr)
    invocations: list[tuple[str, bool, str | None]]  # (proto, streaming, ts)
    where: Formula | None
    group_by: list[str]
    having: Formula | None
    as_stream: StreamType | None


def parse_sql(text: str) -> _SqlQuery:
    """Parse a Serena SQL query into its clause structure."""
    stream = TokenStream(tokenize(text))
    stream.expect_keyword("SELECT")
    select = _parse_select_list(stream)

    stream.expect_keyword("FROM")
    tables = [_parse_table_ref(stream)]
    while True:
        if stream.current.is_keyword("NATURAL"):
            stream.advance()
            stream.expect_keyword("JOIN")
            tables.append(_parse_table_ref(stream))
        elif stream.accept_punct(","):
            tables.append(_parse_table_ref(stream))
        else:
            break

    assignments: list[tuple[str, object, bool]] = []
    if stream.accept_keyword("SET"):
        while True:
            attribute = stream.expect_ident().value
            stream.expect_punct(":=")
            value, from_attribute = _parse_assign_value(stream)
            assignments.append((attribute, value, from_attribute))
            if not stream.accept_punct(","):
                break

    where = None
    if stream.accept_keyword("WHERE"):
        where = _parse_or(stream)

    invocations: list[tuple[str, bool, str | None]] = []
    if stream.accept_keyword("USING"):
        while True:
            streaming = stream.accept_keyword("STREAMING")
            prototype = stream.expect_ident().value
            timestamp = None
            if streaming and stream.accept_keyword("AT"):
                timestamp = stream.expect_ident().value
            invocations.append((prototype, streaming, timestamp))
            if not stream.accept_punct(","):
                break

    group_by: list[str] = []
    if stream.accept_keyword("GROUP"):
        stream.expect_keyword("BY")
        group_by.append(stream.expect_ident().value)
        while stream.accept_punct(","):
            group_by.append(stream.expect_ident().value)

    having = None
    if stream.accept_keyword("HAVING"):
        having = _parse_or(stream)

    as_stream = None
    if stream.accept_keyword("AS"):
        stream.expect_keyword("STREAM")
        kind = "insertion"
        if stream.accept_keyword("OF"):
            kind = stream.expect_ident().value
        as_stream = StreamType.from_name(kind)

    stream.accept_punct(";")
    if not stream.at_end():
        raise stream.error("unexpected trailing input")
    return _SqlQuery(
        select, tables, assignments, invocations, where, group_by, having, as_stream
    )


def _parse_select_list(stream: TokenStream) -> list[_SelectItem] | None:
    if stream.accept_punct("*"):
        return None
    items = [_parse_select_item(stream)]
    while stream.accept_punct(","):
        items.append(_parse_select_item(stream))
    return items


def _parse_select_item(stream: TokenStream) -> _SelectItem:
    ident = stream.expect_ident()
    if ident.value.lower() in AGGREGATE_NAMES and stream.current.is_punct("("):
        stream.advance()
        if stream.accept_punct("*"):
            argument = None
        else:
            argument = stream.expect_ident().value
        stream.expect_punct(")")
        stream.expect_keyword("AS")
        name = stream.expect_ident().value
        return _SelectItem(name, ident.value.lower(), argument)
    return _SelectItem(ident.value)


def _parse_table_ref(stream: TokenStream) -> tuple[str, int | None]:
    name = stream.expect_ident().value
    period = None
    if stream.accept_punct("["):
        token = stream.current
        if token.kind != "number":
            raise stream.error("expected a window period")
        stream.advance()
        try:
            period = int(token.value)
        except ValueError:
            raise ParseError(
                "window period must be an integer", token.line, token.column
            ) from None
        stream.expect_punct("]")
    return name, period


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def compile_sql(
    text: str, environment: PervasiveEnvironment, name: str | None = None
) -> Query:
    """Parse and compile a Serena SQL query against ``environment``."""
    parsed = parse_sql(text)

    # FROM: scans (+ windows on streams), combined with natural joins.
    plan: Operator | None = None
    for table_name, period in parsed.tables:
        stored = environment.relation(table_name)
        schema = environment.schema(table_name).with_name(table_name)
        node: Operator = Scan(
            table_name, schema, bool(getattr(stored, "infinite", False))
        )
        if period is not None:
            node = Window(node, period)
        elif node.is_stream:
            raise ParseError(
                f"relation {table_name!r} is a stream: give it a window, "
                f"e.g. {table_name}[1]"
            )
        plan = node if plan is None else NaturalJoin(plan, node)
    assert plan is not None

    # SET: assignments in declared order.
    for attribute, value, from_attribute in parsed.assignments:
        plan = Assignment(plan, attribute, value, from_attribute)

    # WHERE: pre-invocation selection.
    if parsed.where is not None:
        plan = Selection(plan, parsed.where)

    # USING: invocations in declared order.
    for prototype_name, streaming, timestamp in parsed.invocations:
        bp = plan.schema.binding_pattern(prototype_name)
        if streaming:
            plan = StreamingInvocation(plan, bp, timestamp_attribute=timestamp)
        else:
            plan = Invocation(plan, bp)

    # GROUP BY + aggregate select items.
    aggregates = [
        AggregateSpec(item.function, item.argument, item.name)
        for item in (parsed.select or [])
        if item.function is not None
    ]
    if parsed.group_by or aggregates:
        if parsed.select is None:
            raise ParseError("SELECT * cannot be combined with aggregates")
        plain = [i.name for i in parsed.select if i.function is None]
        stray = set(plain) - set(parsed.group_by)
        if stray:
            raise ParseError(
                f"non-aggregated SELECT attributes {sorted(stray)} must "
                "appear in GROUP BY"
            )
        plan = Aggregate(plan, parsed.group_by, aggregates)

    # HAVING: post-invocation / post-group selection.
    if parsed.having is not None:
        plan = Selection(plan, parsed.having)

    # SELECT projection (unless '*' or the aggregate already shaped it).
    if parsed.select is not None:
        names = [item.name for item in parsed.select]
        if tuple(names) != plan.schema.names:
            plan = Projection(plan, names)

    if parsed.as_stream is not None:
        plan = Streaming(plan, parsed.as_stream)
    return Query(plan, name)
