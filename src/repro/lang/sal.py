"""The Serena Algebra Language (SAL, Section 5.1).

The paper registers continuous queries through "a query language
representing Serena algebra expressions".  SAL is that language: a textual,
compositional form of the algebra where every operator of Table 3 (and the
continuous operators of Section 4.2) appears under its own name::

    invoke[sendMessage, messenger](
        assign[text := 'Bonjour!'](
            select[name != 'Carla'](contacts)))

The grammar (roughly)::

    expr     := IDENT                                  -- relation scan
              | unary '[' params ']' '(' expr ')'
              | binary '(' expr ',' expr ')'
    unary    := project | select | rename | assign | invoke
              | window | stream | aggregate
    binary   := join | union | intersection | difference

Formulas use ``and`` / ``or`` / ``not``, the comparators ``= != < <= > >=
contains``, single-quoted strings, numbers and ``true`` / ``false``.
Plans rendered by :meth:`Operator.render` parse back to equal plans
(round-tripping is property-tested).
"""

from __future__ import annotations

from repro.algebra.formula import And, Comparison, Formula, Not, Or, TrueFormula
from repro.algebra.operators.assignment import Assignment
from repro.algebra.operators.base import Operator
from repro.algebra.operators.extensions import Aggregate, AggregateSpec
from repro.algebra.operators.invocation import Invocation
from repro.algebra.operators.join import NaturalJoin
from repro.algebra.operators.projection import Projection
from repro.algebra.operators.renaming import Renaming
from repro.algebra.operators.scan import Scan
from repro.algebra.operators.selection import Selection
from repro.algebra.operators.setops import Difference, Intersection, Union
from repro.algebra.operators.stream_invocation import StreamingInvocation
from repro.algebra.operators.streaming import Streaming
from repro.algebra.operators.window import Window
from repro.algebra.query import Query
from repro.errors import ParseError
from repro.lang.lexer import Token, TokenStream, tokenize
from repro.model.environment import PervasiveEnvironment

__all__ = ["parse_query", "parse_formula"]

_COMPARATORS = ("=", "!=", "<=", ">=", "<", ">")


def parse_query(
    text: str, environment: PervasiveEnvironment, name: str | None = None
) -> Query:
    """Parse a SAL expression into a :class:`Query` bound to
    ``environment`` (relation names resolve against its catalog)."""
    stream = TokenStream(tokenize(text))
    root = _parse_expr(stream, environment)
    if not stream.at_end():
        raise stream.error("unexpected trailing input")
    return Query(root, name)


def parse_formula(text: str) -> Formula:
    """Parse a standalone selection formula."""
    stream = TokenStream(tokenize(text))
    formula = _parse_or(stream)
    if not stream.at_end():
        raise stream.error("unexpected trailing input")
    return formula


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

_UNARY = frozenset(
    {
        "project",
        "select",
        "rename",
        "assign",
        "invoke",
        "bindstream",
        "window",
        "stream",
        "aggregate",
    }
)
_BINARY = frozenset({"join", "union", "intersection", "difference"})


def _parse_expr(stream: TokenStream, environment: PervasiveEnvironment) -> Operator:
    token = stream.current
    if token.kind != "ident":
        raise stream.error("expected an operator or a relation name")
    word = token.value.lower()
    if word in _UNARY and stream.peek().is_punct("["):
        return _parse_unary(stream, environment, word)
    if word in _BINARY and stream.peek().is_punct("("):
        return _parse_binary(stream, environment, word)
    # A bare identifier: scan of an environment relation.
    stream.advance()
    stored = environment.relation(token.value)
    schema = environment.schema(token.value).with_name(token.value)
    return Scan(token.value, schema, bool(getattr(stored, "infinite", False)))


def _parse_binary(
    stream: TokenStream, environment: PervasiveEnvironment, word: str
) -> Operator:
    stream.advance()  # operator name
    stream.expect_punct("(")
    left = _parse_expr(stream, environment)
    stream.expect_punct(",")
    right = _parse_expr(stream, environment)
    stream.expect_punct(")")
    if word == "join":
        return NaturalJoin(left, right)
    if word == "union":
        return Union(left, right)
    if word == "intersection":
        return Intersection(left, right)
    return Difference(left, right)


def _parse_unary(
    stream: TokenStream, environment: PervasiveEnvironment, word: str
) -> Operator:
    stream.advance()  # operator name
    stream.expect_punct("[")
    params = _Params(stream)
    if word == "project":
        names = params.name_list()
    elif word == "select":
        formula = _parse_or(stream)
    elif word == "rename":
        old = stream.expect_ident().value
        stream.expect_punct("->")
        new = stream.expect_ident().value
    elif word == "assign":
        attribute = stream.expect_ident().value
        stream.expect_punct(":=")
        value, from_attribute = _parse_assign_value(stream)
    elif word == "invoke":
        prototype_name = stream.expect_ident().value
        service_attribute = None
        delay = 0
        if stream.accept_punct(","):
            service_attribute = stream.expect_ident().value
        if stream.accept_punct(","):
            delay_token = stream.current
            if delay_token.kind != "number":
                raise stream.error("expected an invocation delay")
            stream.advance()
            delay = int(delay_token.value)
    elif word == "bindstream":
        prototype_name = stream.expect_ident().value
        service_attribute = None
        timestamp_attribute = None
        if stream.accept_punct(","):
            service_attribute = stream.expect_ident().value
        if stream.accept_punct(","):
            timestamp_attribute = stream.expect_ident().value
    elif word == "window":
        period_token = stream.current
        if period_token.kind != "number":
            raise stream.error("expected a window period")
        stream.advance()
        try:
            period = int(period_token.value)
        except ValueError:
            raise ParseError(
                "window period must be an integer",
                period_token.line,
                period_token.column,
            ) from None
    elif word == "stream":
        kind = stream.expect_ident().value
    else:  # aggregate
        group_by, aggregates = _parse_aggregate_params(stream)
    stream.expect_punct("]")
    stream.expect_punct("(")
    child = _parse_expr(stream, environment)
    stream.expect_punct(")")

    if word == "project":
        return Projection(child, names)
    if word == "select":
        return Selection(child, formula)
    if word == "rename":
        return Renaming(child, old, new)
    if word == "assign":
        return Assignment(child, attribute, value, from_attribute)
    if word == "invoke":
        bp = child.schema.binding_pattern(prototype_name, service_attribute)
        return Invocation(child, bp, delay=delay)
    if word == "bindstream":
        bp = child.schema.binding_pattern(prototype_name, service_attribute)
        return StreamingInvocation(
            child, bp, timestamp_attribute=timestamp_attribute
        )
    if word == "window":
        return Window(child, period)
    if word == "stream":
        return Streaming(child, kind)
    return Aggregate(child, group_by, aggregates)


class _Params:
    """Helper namespace for simple parameter shapes."""

    def __init__(self, stream: TokenStream):
        self.stream = stream

    def name_list(self) -> list[str]:
        names = [self.stream.expect_ident().value]
        while self.stream.accept_punct(","):
            names.append(self.stream.expect_ident().value)
        return names


def _parse_assign_value(stream: TokenStream) -> tuple[object, bool]:
    """The right-hand side of ``attr := ...``: a literal or an attribute."""
    token = stream.current
    if token.kind == "string":
        stream.advance()
        return token.value, False
    if token.kind == "number":
        stream.advance()
        return _number(token), False
    if token.kind == "ident":
        if token.is_keyword("true"):
            stream.advance()
            return True, False
        if token.is_keyword("false"):
            stream.advance()
            return False, False
        stream.advance()
        return token.value, True  # attribute reference
    raise stream.error("expected a literal or an attribute name")


def _parse_aggregate_params(
    stream: TokenStream,
) -> tuple[list[str], list[AggregateSpec]]:
    """``g1, g2 ; func(attr) as name, ...`` (group list may be empty)."""
    group_by: list[str] = []
    if not stream.current.is_punct(";"):
        group_by.append(stream.expect_ident().value)
        while stream.accept_punct(","):
            group_by.append(stream.expect_ident().value)
    stream.expect_punct(";")
    aggregates = [_parse_aggregate_spec(stream)]
    while stream.accept_punct(","):
        aggregates.append(_parse_aggregate_spec(stream))
    return group_by, aggregates


def _parse_aggregate_spec(stream: TokenStream) -> AggregateSpec:
    function = stream.expect_ident().value
    stream.expect_punct("(")
    attribute: str | None
    if stream.accept_punct("*"):
        attribute = None
    else:
        attribute = stream.expect_ident().value
    stream.expect_punct(")")
    stream.expect_keyword("as")
    result_name = stream.expect_ident().value
    return AggregateSpec(function, attribute, result_name)


# ---------------------------------------------------------------------------
# Formulas
# ---------------------------------------------------------------------------


def _parse_or(stream: TokenStream) -> Formula:
    left = _parse_and(stream)
    while stream.current.is_keyword("or"):
        stream.advance()
        left = Or(left, _parse_and(stream))
    return left


def _parse_and(stream: TokenStream) -> Formula:
    left = _parse_unary_formula(stream)
    while stream.current.is_keyword("and"):
        stream.advance()
        left = And(left, _parse_unary_formula(stream))
    return left


def _parse_unary_formula(stream: TokenStream) -> Formula:
    if stream.current.is_keyword("not"):
        stream.advance()
        return Not(_parse_unary_formula(stream))
    if stream.accept_punct("("):
        inner = _parse_or(stream)
        stream.expect_punct(")")
        return inner
    if stream.current.is_keyword("true") and _is_bare_true(stream):
        stream.advance()
        return TrueFormula()
    return _parse_comparison(stream)


def _is_bare_true(stream: TokenStream) -> bool:
    """``true`` is the constant formula only when not part of a comparison
    (``sent = true`` uses it as a literal)."""
    follower = stream.peek()
    if follower.kind == "punct" and follower.value in _COMPARATORS:
        return False
    return not follower.is_keyword("contains")


def _parse_comparison(stream: TokenStream) -> Formula:
    left, left_is_attr = _parse_operand(stream)
    token = stream.current
    if token.kind == "punct" and token.value in _COMPARATORS:
        op = token.value
        stream.advance()
    elif token.is_keyword("contains"):
        op = "contains"
        stream.advance()
    else:
        raise stream.error("expected a comparison operator")
    right, right_is_attr = _parse_operand(stream)
    return Comparison(left, op, right, left_is_attr, right_is_attr)


def _parse_operand(stream: TokenStream) -> tuple[object, bool]:
    token = stream.current
    if token.kind == "string":
        stream.advance()
        return token.value, False
    if token.kind == "number":
        stream.advance()
        return _number(token), False
    if token.kind == "ident":
        if token.is_keyword("true"):
            stream.advance()
            return True, False
        if token.is_keyword("false"):
            stream.advance()
            return False, False
        stream.advance()
        return token.value, True
    raise stream.error("expected an attribute, number, string or boolean")


def _number(token: Token) -> object:
    text = token.value
    try:
        if any(ch in text for ch in ".eE"):
            return float(text)
        return int(text)
    except ValueError:
        raise ParseError(f"bad number literal {text!r}", token.line, token.column) from None
