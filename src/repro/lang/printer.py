"""Pretty-printers for Serena plans.

Two renderings:

* :func:`to_sal` — the Serena Algebra Language text (identical to
  :meth:`Operator.render`; re-exported here for symmetry with the parser);
* :func:`to_math` — compact mathematical notation in the style of Table 4,
  e.g. ``π[photo](σ[quality >= 5](β[takePhoto[camera]](cameras)))``;
* :func:`explain` — a multi-line, indented operator tree annotated with
  each node's output schema (virtual attributes starred) — the
  EXPLAIN-style output used in examples and docs;
* :func:`explain_physical` — the *lowered* physical plan of a logical
  query: executor classes plus shared/private markers against a
  shared-plan registry;
* :func:`explain_analyze` — EXPLAIN ANALYZE: a registered continuous
  query's physical plan annotated with the cumulative per-executor run
  statistics (delta cardinalities, rows scanned, invocation outcomes,
  shared refcounts — see :mod:`repro.obs.analyze`);
* :func:`to_dot` — a Graphviz digraph of the plan (one node per operator,
  labeled with its symbol and output schema) for papers and slides.
"""

from __future__ import annotations

from repro.algebra.operators.base import Operator
from repro.algebra.query import Query

__all__ = [
    "to_sal",
    "to_math",
    "explain",
    "explain_analyze",
    "explain_federated",
    "explain_physical",
    "to_dot",
]


def _root(plan: Operator | Query) -> Operator:
    return plan.root if isinstance(plan, Query) else plan


def to_sal(plan: Operator | Query) -> str:
    """The plan in the Serena Algebra Language (parseable back)."""
    return _root(plan).render()


def to_math(plan: Operator | Query) -> str:
    """The plan in Table 4's mathematical notation."""
    node = _root(plan)
    if not node.children:
        return node.render()
    inner = ", ".join(to_math(child) for child in node.children)
    return f"{node.symbol()}({inner})"


def explain(plan: Operator | Query) -> str:
    """Indented tree with per-node schemas."""
    lines: list[str] = []
    _explain(_root(plan), 0, lines)
    return "\n".join(lines)


def explain_analyze(continuous) -> str:
    """EXPLAIN ANALYZE of a registered
    :class:`~repro.continuous.continuous_query.ContinuousQuery`: its
    physical plan with cumulative per-executor statistics."""
    from repro.obs.analyze import render_analyze  # obs layers under lang

    return render_analyze(continuous)


def explain_physical(
    plan: Operator | Query, registry=None, backend: str | None = None
) -> str:
    """The lowered physical plan of a logical query: executor classes and
    backends, with subtrees marked shared when ``registry`` (a
    :class:`~repro.exec.shared.SharedPlanRegistry`) already runs them.
    ``backend`` ("row"/"columnar") selects the physical representation to
    lower to; it defaults to the registry's backend."""
    from repro.obs.analyze import render_physical

    return render_physical(plan, registry, backend=backend)


def explain_federated(plan: Operator | Query, registry) -> str:
    """The federated execution plan: scattered subtrees with their routed
    zones (and pruning), coordinator-side nodes marked as such.
    ``registry`` is a
    :class:`~repro.fed.registry.FederatedPlanRegistry`."""
    from repro.obs.analyze import render_federated

    return render_federated(plan, registry)


def to_dot(plan: Operator | Query, name: str = "plan") -> str:
    """A Graphviz ``digraph`` of the plan, edges child → parent (dataflow).

    Render with ``dot -Tsvg``; labels show each operator's symbol and the
    schema it produces (virtual attributes starred).
    """
    root = _root(plan)
    lines = [f"digraph {name} {{", "  rankdir=BT;", '  node [shape=box, fontname="monospace"];']
    ids: dict[int, str] = {}
    for position, node in enumerate(root.walk()):
        ids[node.uid] = f"n{position}"
        schema = node.schema
        columns = ", ".join(
            a.name + ("*" if a.name in schema.virtual_names else "")
            for a in schema.attributes
        )
        label = f"{node.symbol()}\\n({columns})".replace('"', "'")
        lines.append(f'  {ids[node.uid]} [label="{label}"];')
    for node in root.walk():
        for child in node.children:
            lines.append(f"  {ids[child.uid]} -> {ids[node.uid]};")
    lines.append("}")
    return "\n".join(lines)


def _explain(node: Operator, depth: int, lines: list[str]) -> None:
    schema = node.schema
    columns = ", ".join(
        a.name + ("*" if a.name in schema.virtual_names else "")
        for a in schema.attributes
    )
    bps = len(schema.binding_patterns)
    stream = " [stream]" if node.is_stream else ""
    lines.append(
        f"{'  ' * depth}{node.symbol()}  →  ({columns})"
        + (f"  BP×{bps}" if bps else "")
        + stream
    )
    for child in node.children:
        _explain(child, depth + 1, lines)
