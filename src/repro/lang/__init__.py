"""Language layer: the Serena DDL (Tables 1–2), the Serena Algebra
Language (Section 5.1) and plan pretty-printers."""

from repro.lang.datalog import ConjunctiveRule, compile_rule, parse_rule
from repro.lang.ddl import ServiceDeclaration, execute_ddl, parse_ddl
from repro.lang.printer import explain, to_dot, to_math, to_sal
from repro.lang.sal import parse_formula, parse_query
from repro.lang.sql import compile_sql

__all__ = [
    "ConjunctiveRule",
    "ServiceDeclaration",
    "compile_rule",
    "compile_sql",
    "parse_rule",
    "execute_ddl",
    "explain",
    "parse_ddl",
    "parse_formula",
    "parse_query",
    "to_dot",
    "to_math",
    "to_sal",
]
