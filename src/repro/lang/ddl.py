"""The Serena Data Description Language (Tables 1 and 2).

Supported statements, mirroring the paper's pseudo-DDL::

    PROTOTYPE sendMessage( address STRING, text STRING )
        : ( sent BOOLEAN ) ACTIVE;

    SERVICE email IMPLEMENTS sendMessage;

    EXTENDED RELATION contacts (
        name STRING,
        address STRING,
        text STRING VIRTUAL,
        messenger SERVICE,
        sent BOOLEAN VIRTUAL
    ) USING BINDING PATTERNS (
        sendMessage[messenger] ( address, text ) : ( sent )
    );

    EXTENDED STREAM temperatures (            -- our extension: an infinite
        sensor SERVICE, ...                   -- XD-Relation (Section 4.1)
    );

    INSERT INTO contacts VALUES               -- data statements (extension):
        ('Nicolas', 'nicolas@elysee.fr', 'email'),
        ('Carla', 'carla@elysee.fr', 'email');
    DELETE FROM contacts VALUES ('Carla', 'carla@elysee.fr', 'email');

``PROTOTYPE`` declares a prototype in the environment; ``EXTENDED
RELATION``/``EXTENDED STREAM`` create XD-Relations through the table
manager; ``INSERT INTO``/``DELETE FROM`` write value tuples (real
attributes only, in schema order) at the current instant; ``SERVICE``
statements are *declarations* — the DDL cannot carry an implementation, so
:func:`execute_ddl` checks the referenced prototypes and returns a
:class:`ServiceDeclaration` that the caller binds to handlers (or to a
simulated device's :meth:`as_service`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError
from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.prototypes import Prototype
from repro.model.schema import RelationSchema
from repro.model.types import DataType
from repro.model.xschema import ExtendedRelationSchema
from repro.lang.lexer import TokenStream, tokenize

__all__ = ["ServiceDeclaration", "parse_ddl", "execute_ddl"]


@dataclass(frozen=True)
class ServiceDeclaration:
    """A ``SERVICE ref IMPLEMENTS p1, p2`` statement, awaiting binding."""

    reference: str
    prototype_names: tuple[str, ...]


# Statements produced by the parser before execution.


@dataclass(frozen=True)
class _PrototypeStmt:
    prototype: Prototype


@dataclass(frozen=True)
class _RelationStmt:
    schema: ExtendedRelationSchema
    infinite: bool
    # binding patterns are resolved at execution time (prototypes may be
    # declared earlier in the same script)
    patterns: tuple[tuple[str, str, tuple[str, ...], tuple[str, ...]], ...]


@dataclass(frozen=True)
class _ServiceStmt:
    declaration: ServiceDeclaration


@dataclass(frozen=True)
class _DataStmt:
    relation_name: str
    rows: tuple[tuple, ...]
    delete: bool


def parse_ddl(text: str) -> list[object]:
    """Parse a DDL script into statement objects (no side effects)."""
    stream = TokenStream(tokenize(text))
    statements: list[object] = []
    while not stream.at_end():
        if stream.current.is_keyword("PROTOTYPE"):
            statements.append(_parse_prototype(stream))
        elif stream.current.is_keyword("SERVICE"):
            statements.append(_parse_service(stream))
        elif stream.current.is_keyword("EXTENDED"):
            statements.append(_parse_relation(stream))
        elif stream.current.is_keyword("INSERT"):
            statements.append(_parse_data(stream, delete=False))
        elif stream.current.is_keyword("DELETE"):
            statements.append(_parse_data(stream, delete=True))
        else:
            raise stream.error(
                "expected PROTOTYPE, SERVICE, EXTENDED RELATION/STREAM, "
                "INSERT INTO or DELETE FROM"
            )
    return statements


def execute_ddl(text: str, table_manager) -> list[object]:
    """Parse and execute a DDL script against a table manager.

    Returns, in statement order: declared :class:`Prototype` objects,
    created :class:`repro.continuous.xdrelation.XDRelation` objects, and
    :class:`ServiceDeclaration` objects for the caller to bind.
    """
    environment = table_manager.environment
    results: list[object] = []
    for statement in parse_ddl(text):
        if isinstance(statement, _PrototypeStmt):
            results.append(environment.declare_prototype(statement.prototype))
        elif isinstance(statement, _ServiceStmt):
            for name in statement.declaration.prototype_names:
                environment.prototype(name)  # must already be declared
            results.append(statement.declaration)
        elif isinstance(statement, _RelationStmt):
            schema = _resolve_patterns(statement, environment)
            results.append(
                table_manager.create_relation(schema, infinite=statement.infinite)
            )
        elif isinstance(statement, _DataStmt):
            if statement.delete:
                results.append(
                    table_manager.delete_tuples(statement.relation_name, statement.rows)
                )
            else:
                results.append(
                    table_manager.insert_tuples(statement.relation_name, statement.rows)
                )
        else:  # pragma: no cover - parser produces only the above
            raise ParseError(f"unknown statement {statement!r}")
    return results


# ---------------------------------------------------------------------------
# Statement parsers
# ---------------------------------------------------------------------------


def _parse_attribute_list(stream: TokenStream) -> RelationSchema:
    """``( name TYPE, name TYPE, ... )`` — possibly empty."""
    stream.expect_punct("(")
    attributes: list[Attribute] = []
    if not stream.current.is_punct(")"):
        while True:
            name = stream.expect_ident().value
            dtype = DataType.from_name(stream.expect_ident().value)
            attributes.append(Attribute(name, dtype))
            if not stream.accept_punct(","):
                break
    stream.expect_punct(")")
    return RelationSchema(attributes)


def _parse_prototype(stream: TokenStream) -> _PrototypeStmt:
    stream.expect_keyword("PROTOTYPE")
    name = stream.expect_ident().value
    input_schema = _parse_attribute_list(stream)
    stream.expect_punct(":")
    output_schema = _parse_attribute_list(stream)
    active = stream.accept_keyword("ACTIVE")
    if not active:
        stream.accept_keyword("PASSIVE")
    stream.expect_punct(";")
    return _PrototypeStmt(Prototype(name, input_schema, output_schema, active))


def _parse_service(stream: TokenStream) -> _ServiceStmt:
    stream.expect_keyword("SERVICE")
    reference = stream.expect_ident().value
    stream.expect_keyword("IMPLEMENTS")
    names = [stream.expect_ident().value]
    while stream.accept_punct(","):
        names.append(stream.expect_ident().value)
    stream.expect_punct(";")
    return _ServiceStmt(ServiceDeclaration(reference, tuple(names)))


def _parse_relation(stream: TokenStream) -> _RelationStmt:
    stream.expect_keyword("EXTENDED")
    if stream.accept_keyword("STREAM"):
        infinite = True
    else:
        stream.expect_keyword("RELATION")
        infinite = False
    name = stream.expect_ident().value

    stream.expect_punct("(")
    attributes: list[Attribute] = []
    virtual: set[str] = set()
    while True:
        attr_name = stream.expect_ident().value
        dtype = DataType.from_name(stream.expect_ident().value)
        attributes.append(Attribute(attr_name, dtype))
        if stream.accept_keyword("VIRTUAL"):
            virtual.add(attr_name)
        if not stream.accept_punct(","):
            break
    stream.expect_punct(")")

    patterns: list[tuple[str, str, tuple[str, ...], tuple[str, ...]]] = []
    if stream.accept_keyword("USING"):
        stream.expect_keyword("BINDING")
        stream.expect_keyword("PATTERNS")
        stream.expect_punct("(")
        while True:
            prototype_name = stream.expect_ident().value
            stream.expect_punct("[")
            service_attribute = stream.expect_ident().value
            stream.expect_punct("]")
            inputs = _parse_name_list(stream)
            stream.expect_punct(":")
            outputs = _parse_name_list(stream)
            patterns.append((prototype_name, service_attribute, inputs, outputs))
            if not stream.accept_punct(","):
                break
        stream.expect_punct(")")
    stream.expect_punct(";")

    schema = ExtendedRelationSchema(name, attributes, virtual)
    return _RelationStmt(schema, infinite, tuple(patterns))


def _parse_data(stream: TokenStream, delete: bool) -> _DataStmt:
    if delete:
        stream.expect_keyword("DELETE")
        stream.expect_keyword("FROM")
    else:
        stream.expect_keyword("INSERT")
        stream.expect_keyword("INTO")
    name = stream.expect_ident().value
    stream.expect_keyword("VALUES")
    rows = [_parse_value_tuple(stream)]
    while stream.accept_punct(","):
        rows.append(_parse_value_tuple(stream))
    stream.expect_punct(";")
    return _DataStmt(name, tuple(rows), delete)


def _parse_value_tuple(stream: TokenStream) -> tuple:
    stream.expect_punct("(")
    values: list[object] = []
    if not stream.current.is_punct(")"):
        while True:
            values.append(_parse_literal(stream))
            if not stream.accept_punct(","):
                break
    stream.expect_punct(")")
    return tuple(values)


def _parse_literal(stream: TokenStream) -> object:
    token = stream.current
    if token.kind == "string":
        stream.advance()
        return token.value
    if token.kind == "number":
        stream.advance()
        try:
            if any(ch in token.value for ch in ".eE"):
                return float(token.value)
            return int(token.value)
        except ValueError:
            raise ParseError(
                f"bad number literal {token.value!r}", token.line, token.column
            ) from None
    if token.is_keyword("true"):
        stream.advance()
        return True
    if token.is_keyword("false"):
        stream.advance()
        return False
    raise stream.error("expected a literal value")


def _parse_name_list(stream: TokenStream) -> tuple[str, ...]:
    """``( a, b, ... )`` — possibly empty."""
    stream.expect_punct("(")
    names: list[str] = []
    if not stream.current.is_punct(")"):
        while True:
            names.append(stream.expect_ident().value)
            if not stream.accept_punct(","):
                break
    stream.expect_punct(")")
    return tuple(names)


def _resolve_patterns(statement: _RelationStmt, environment) -> ExtendedRelationSchema:
    """Attach the declared binding patterns, checking them against the
    prototype declarations."""
    schema = statement.schema
    bps: list[BindingPattern] = []
    for prototype_name, service_attribute, inputs, outputs in statement.patterns:
        prototype = environment.prototype(prototype_name)
        declared_inputs = set(inputs)
        declared_outputs = set(outputs)
        if declared_inputs != set(prototype.input_schema.names):
            raise ParseError(
                f"binding pattern {prototype_name}[{service_attribute}] of "
                f"{schema.name!r}: declared inputs {sorted(declared_inputs)} do "
                f"not match the prototype's {sorted(prototype.input_schema.names)}"
            )
        if declared_outputs != set(prototype.output_schema.names):
            raise ParseError(
                f"binding pattern {prototype_name}[{service_attribute}] of "
                f"{schema.name!r}: declared outputs {sorted(declared_outputs)} "
                f"do not match the prototype's {sorted(prototype.output_schema.names)}"
            )
        bps.append(BindingPattern(prototype, service_attribute))
    return ExtendedRelationSchema(
        schema.name, schema.attributes, schema.virtual_names, bps
    )
