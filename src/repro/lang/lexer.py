"""Shared tokenizer for the Serena DDL and the Serena Algebra Language.

A small hand-rolled lexer: identifiers, integer/real literals,
single-quoted strings (with ``''`` escaping), and the punctuation used by
the two languages.  Tokens carry line/column for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

__all__ = ["Token", "TokenStream", "tokenize"]

_PUNCTUATION = (
    ":=",
    "->",
    "<=",
    ">=",
    "!=",
    "(",
    ")",
    "[",
    "]",
    ",",
    ";",
    ":",
    "=",
    "<",
    ">",
    "*",
    "-",  # only reachable when not starting a number (see tokenize)
)


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str  # "ident" | "number" | "string" | "punct" | "eof"
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        """Case-insensitive keyword match (identifiers only)."""
        return self.kind == "ident" and self.value.upper() == word.upper()

    def is_punct(self, symbol: str) -> bool:
        return self.kind == "punct" and self.value == symbol


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on illegal input."""
    tokens: list[Token] = []
    line, column = 1, 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            column = 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if text.startswith("--", i):  # line comment
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            value, consumed = _scan_string(text, i, line, column)
            tokens.append(Token("string", value, line, column))
            i += consumed
            column += consumed
            continue
        if ch.isdigit() or (
            ch in "+-" and i + 1 < n and (text[i + 1].isdigit() or text[i + 1] == ".")
        ):
            start = i
            i += 1
            seen_dot = text[start] == "."
            while i < n:
                nxt = text[i]
                if nxt.isdigit() or nxt in "eE" or (nxt in "+-" and text[i - 1] in "eE"):
                    i += 1
                elif nxt == "." and not seen_dot and i + 1 < n and text[i + 1].isdigit():
                    seen_dot = True
                    i += 1
                else:
                    break
            literal = text[start:i]
            tokens.append(Token("number", literal, line, column))
            column += i - start
            continue
        if ch.isalpha() or ch == "_":
            start = i
            i += 1
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            tokens.append(Token("ident", text[start:i], line, column))
            column += i - start
            continue
        for symbol in _PUNCTUATION:
            if text.startswith(symbol, i):
                tokens.append(Token("punct", symbol, line, column))
                i += len(symbol)
                column += len(symbol)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token("eof", "", line, column))
    return tokens


def _scan_string(text: str, start: int, line: int, column: int) -> tuple[str, int]:
    """Scan a single-quoted string starting at ``start``; returns
    (unescaped value, characters consumed)."""
    i = start + 1
    n = len(text)
    out: list[str] = []
    while i < n:
        ch = text[i]
        if ch == "'":
            if i + 1 < n and text[i + 1] == "'":
                out.append("'")
                i += 2
                continue
            return "".join(out), i + 1 - start
        if ch == "\n":
            break
        out.append(ch)
        i += 1
    raise ParseError("unterminated string literal", line, column)


class TokenStream:
    """Cursor over a token list with expectation helpers."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self._index += 1
        return token

    def at_end(self) -> bool:
        return self.current.kind == "eof"

    # -- expectation helpers ------------------------------------------------------

    def error(self, message: str) -> ParseError:
        token = self.current
        found = token.value or "<end of input>"
        return ParseError(f"{message}, found {found!r}", token.line, token.column)

    def expect_punct(self, symbol: str) -> Token:
        if not self.current.is_punct(symbol):
            raise self.error(f"expected {symbol!r}")
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.error(f"expected keyword {word}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            raise self.error("expected an identifier")
        return self.advance()

    def accept_punct(self, symbol: str) -> bool:
        if self.current.is_punct(symbol):
            self.advance()
            return True
        return False

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False
