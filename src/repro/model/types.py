"""Attribute data types for relational pervasive environments.

The paper's pseudo-DDL (Tables 1 and 2) uses the types ``STRING``,
``INTEGER``, ``REAL``, ``BOOLEAN``, ``BLOB`` and ``SERVICE``.  ``SERVICE``
is the type of *service reference* attributes: plain data values (strings
here, as in Example 1) that identify services.  We add ``TIMESTAMP`` for
the continuous extension (Section 4), where tuples of XD-Relations may
carry the instant at which they were produced.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import TypingError

__all__ = ["DataType", "validate_value", "coerce_value"]


class DataType(enum.Enum):
    """Data types of attributes, as used by the Serena DDL."""

    STRING = "STRING"
    INTEGER = "INTEGER"
    REAL = "REAL"
    BOOLEAN = "BOOLEAN"
    BLOB = "BLOB"
    SERVICE = "SERVICE"
    TIMESTAMP = "TIMESTAMP"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def from_name(cls, name: str) -> "DataType":
        """Resolve a DDL type keyword (case-insensitive) to a member."""
        try:
            return cls[name.upper()]
        except KeyError:
            raise TypingError(f"unknown data type {name!r}") from None


_PYTHON_TYPES: dict[DataType, tuple[type, ...]] = {
    DataType.STRING: (str,),
    DataType.INTEGER: (int,),
    DataType.REAL: (float, int),
    DataType.BOOLEAN: (bool,),
    DataType.BLOB: (bytes,),
    DataType.SERVICE: (str,),
    DataType.TIMESTAMP: (int,),
}


def validate_value(value: Any, dtype: DataType) -> bool:
    """Return True iff ``value`` belongs to the domain of ``dtype``.

    ``bool`` is excluded from INTEGER/REAL (a Python quirk: ``bool`` is a
    subclass of ``int``), so ``True`` is only a valid BOOLEAN.
    """
    if isinstance(value, bool) and dtype is not DataType.BOOLEAN:
        return False
    return isinstance(value, _PYTHON_TYPES[dtype])


def coerce_value(value: Any, dtype: DataType) -> Any:
    """Coerce ``value`` into the domain of ``dtype`` or raise TypingError.

    The only lossless coercion performed is ``int`` → ``float`` for REAL
    attributes; anything else must already validate.
    """
    if dtype is DataType.REAL and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    if validate_value(value, dtype):
        return value
    raise TypingError(f"value {value!r} is not a valid {dtype.value}")
