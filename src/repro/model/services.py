"""Services: implementations of prototypes (Sections 2.1 and 2.3.1).

A service ``omega`` is defined by the finite set of prototypes it implements
and by its *service reference* ``id(omega)``, a plain data value (a string
here, as in Example 1: ``email``, ``camera01``, ``sensor22``...).  Methods
provided by services remain implicit (Section 2.1): a prototype is invoked
*on* a service and the service's method is transparently called.

The invocation function of Definition 1 is realized by
:meth:`ServiceRegistry.invoke`: given a prototype, a service reference and
an input tuple, it returns a relation (a list of tuples) over the prototype
output schema.  Invocations take the current time instant as a parameter so
that services can be *deterministic at a given instant* (Section 3.2): the
same invocation at the same instant always returns the same result,
regardless of invocation order.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import (
    InvocationError,
    PrototypeNotImplementedError,
    SchemaError,
    ServiceError,
    ServiceUnavailableError,
    UnknownServiceError,
)
from repro.model.invocation_policy import HealthState, HealthTracker, InvocationPolicy
from repro.model.prototypes import Prototype
from repro.model.substitution import (
    ResolvedBinding,
    SubstitutionPolicy,
    SubstitutionState,
)
from repro.obs.metrics import Ewma
from repro.obs.observe import Observability

__all__ = ["Service", "MethodHandler", "ServiceRegistry"]

# A method takes the input parameters (by attribute name) and the current
# time instant, and returns 0..n output tuples as mappings.
MethodHandler = Callable[[Mapping[str, object], int], Sequence[Mapping[str, object]]]


class Service:
    """A registered service: a reference plus implemented prototypes.

    Parameters
    ----------
    reference:
        The service reference ``id(omega)``, a plain data value.
    methods:
        Mapping from :class:`Prototype` to the handler implementing it.
        ``prototypes(omega)`` is the key set of this mapping.
    description:
        Optional human-readable description (shown by PEMS catalogs).
    properties:
        Static service metadata announced at discovery time (e.g. a
        sensor's ``location`` or a camera's ``area``) — the values that
        service discovery queries copy into X-Relations like the paper's
        ``sensors`` and ``cameras`` tables.
    """

    __slots__ = ("reference", "_methods", "description", "properties")

    def __init__(
        self,
        reference: str,
        methods: Mapping[Prototype, MethodHandler],
        description: str = "",
        properties: Mapping[str, object] | None = None,
    ):
        if not isinstance(reference, str) or not reference:
            raise SchemaError(f"invalid service reference {reference!r}")
        self.reference = reference
        self._methods = dict(methods)
        self.description = description
        self.properties = dict(properties) if properties else {}

    @property
    def prototypes(self) -> frozenset[Prototype]:
        """``prototypes(omega)``: the prototypes this service implements."""
        return frozenset(self._methods)

    @property
    def prototype_names(self) -> frozenset[str]:
        return frozenset(p.name for p in self._methods)

    def implements(self, prototype: Prototype) -> bool:
        """True iff this service implements ``prototype``."""
        return prototype in self._methods

    def handler(self, prototype: Prototype) -> MethodHandler:
        try:
            return self._methods[prototype]
        except KeyError:
            raise PrototypeNotImplementedError(self.reference, prototype.name) from None

    def __repr__(self) -> str:
        names = ", ".join(sorted(self.prototype_names))
        return f"Service({self.reference!r} IMPLEMENTS {names})"


class ServiceRegistry:
    """The set of currently available services, keyed by reference.

    In the full PEMS (see :mod:`repro.pems`), this registry is maintained by
    the core Environment Resource Manager from discovery announcements; at
    the model level it is a plain dynamic dictionary, reflecting that the
    set of available services changes over time.
    """

    def __init__(
        self,
        services: Iterable[Service] = (),
        policy: InvocationPolicy | None = None,
        observe: "Observability | str | None" = None,
        substitution: SubstitutionPolicy | None = None,
    ):
        self._services: dict[str, Service] = {}
        #: Bumped on every register/unregister — a cheap invalidation key
        #: for caches derived from the membership (the ERM failover table).
        self.topology_version = 0
        for service in services:
            self.register(service)
        #: Observability facade: a standalone registry defaults to the
        #: "off" mode (the migrated legacy counters — invocation count,
        #: memo hits — still record); PEMS rebinds the registry onto its
        #: environment-wide facade via :meth:`bind_observability`.
        self.obs = (
            Observability.disabled()
            if observe is None
            else Observability.coerce(observe)
        )
        self._init_instruments()
        #: Per-service health (retry/backoff/quarantine enforcement): fed
        #: by :meth:`invoke`, consumed by the core ERM's quarantine sweep.
        #: With the default (permissive) policy no gate ever closes and
        #: invocation behaviour is identical to a policy-free registry.
        self.health = HealthTracker(policy)
        #: Substitution relation + active binding/failover tables.  Declared
        #: rules are consulted by :meth:`invoke` (binding routing before the
        #: health gates, failover on the failure path); the tables are only
        #: ever rewritten by the core ERM's tick sweep, so they are frozen
        #: for the duration of an instant.
        self.substitutions = SubstitutionState(substitution)
        # Per-service invocation-latency EWMAs (seconds): the observed
        # "latency histogram" signal the substitution scorer folds in when
        # the policy is latency_aware.  Always-on and registry-internal —
        # deliberately *not* part of the health snapshot, which the
        # differential suites compare across engines.
        self._latency: dict[str, Ewma] = {}
        self._chain_depth = 0
        # Per-instant invocation memo (see begin_instant_memo): active only
        # inside a PEMS tick, where identical (prototype, service, inputs)
        # calls from different continuous queries are deterministic
        # duplicates (Section 3.2) and hit the device once.
        self._memo: dict[tuple, list[tuple]] | None = None
        self._memo_instant: int | None = None

    def _init_instruments(self) -> None:
        metrics = self.obs.metrics
        self._invocations_total = metrics.counter(
            "serena_invocations_total",
            "Device invocations issued (memo hits and fast failures excluded)",
        )
        self._memo_hits_total = metrics.counter(
            "serena_invocation_memo_hits_total",
            "Invocations answered from the per-instant memo instead of the device",
        )
        outcome_help = "Invocation attempts by outcome"
        self._outcome_success = metrics.counter(
            "serena_invocation_outcomes_total", outcome_help, outcome="success"
        )
        self._outcome_memo_hit = metrics.counter(
            "serena_invocation_outcomes_total", outcome_help, outcome="memo_hit"
        )
        self._outcome_fast_failed = metrics.counter(
            "serena_invocation_outcomes_total", outcome_help, outcome="fast_failed"
        )
        self._outcome_failed = metrics.counter(
            "serena_invocation_outcomes_total", outcome_help, outcome="failed"
        )
        self._outcome_substituted = metrics.counter(
            "serena_invocation_outcomes_total", outcome_help, outcome="substituted"
        )
        self._failovers_total = metrics.counter(
            "serena_substitution_failovers_total",
            "Failed invocations answered by a pre-scored failover plan",
        )

    def bind_observability(self, observe: "Observability | str | None") -> None:
        """Re-home this registry's instruments onto another facade (PEMS
        binds the environment registry onto the PEMS-wide observability).
        Accumulated legacy counts carry over; outcome series start fresh
        on the new facade."""
        invocations = self._invocations_total.value
        memo_hits = self._memo_hits_total.value
        self.obs = Observability.coerce(observe)
        self._init_instruments()
        if invocations:
            self._invocations_total.inc(invocations)
        if memo_hits:
            self._memo_hits_total.inc(memo_hits)

    # -- registration (dynamic discovery feeds these) -----------------------

    def register(self, service: Service) -> None:
        """Add or replace a service (idempotent on the reference)."""
        if self._services.get(service.reference) is not service:
            self.topology_version += 1
        self._services[service.reference] = service

    def unregister(self, reference: str) -> None:
        """Remove a service; unknown references are ignored (a service may
        disappear and be reaped twice in a dynamic environment)."""
        if self._services.pop(reference, None) is not None:
            self.topology_version += 1

    def get(self, reference: str) -> Service:
        try:
            return self._services[reference]
        except KeyError:
            raise UnknownServiceError(reference) from None

    def __contains__(self, reference: object) -> bool:
        return reference in self._services

    def __len__(self) -> int:
        return len(self._services)

    def __iter__(self):
        return iter(self._services.values())

    @property
    def references(self) -> frozenset[str]:
        return frozenset(self._services)

    def providers(self, prototype: Prototype) -> list[Service]:
        """All registered services implementing ``prototype``, sorted by
        reference (deterministic order for discovery queries)."""
        return sorted(
            (s for s in self._services.values() if s.implements(prototype)),
            key=lambda s: s.reference,
        )

    # -- invocation (Definition 1) -------------------------------------------

    @property
    def invocation_count(self) -> int:
        """Total number of invocations performed through this registry.

        Used by benchmarks to measure rewriting savings (Section 3.3).
        Backed by the ``serena_invocations_total`` counter of :attr:`obs`.
        """
        return int(self._invocations_total.value)

    def reset_invocation_count(self) -> None:
        self._invocations_total.reset()

    # -- per-instant memoization (multi-query sharing) -----------------------

    @property
    def memo_hits(self) -> int:
        """Invocations answered from the per-instant memo instead of the
        device (not counted in :attr:`invocation_count`).  Backed by the
        ``serena_invocation_memo_hits_total`` counter of :attr:`obs`."""
        return int(self._memo_hits_total.value)

    def begin_instant_memo(self, instant: int) -> None:
        """Start memoizing successful invocations for ``instant``.

        Services are deterministic at a given instant (Section 3.2): the
        same invocation at the same instant always returns the same
        result, regardless of invocation order — so within one instant a
        repeated ``(prototype, service, inputs)`` call may be answered
        from cache.  The memo is scoped by the caller (the query
        processor's tick loop) via :meth:`end_instant_memo`; outside that
        scope every invocation reaches the device, keeping one-shot
        evaluation and invocation-count benchmarks unaffected.
        """
        if self._memo_instant != instant:
            self._memo = {}
            self._memo_instant = instant
        elif self._memo is None:
            self._memo = {}

    def end_instant_memo(self) -> None:
        """Stop memoizing; cached results for the instant are discarded."""
        self._memo = None

    def invoke(
        self,
        prototype: Prototype,
        reference: str,
        inputs: Mapping[str, object],
        instant: int,
    ) -> list[tuple]:
        """``invoke_psi(s, t)``: invoke ``prototype`` on the service
        referenced by ``reference`` with input tuple ``inputs``.

        Returns a list of value tuples over ``prototype.output_schema``
        (0, 1 or several tuples, Section 2.1).  Raises
        :class:`UnknownServiceError`, :class:`PrototypeNotImplementedError`
        or :class:`InvocationError` on failure.
        """
        service = self.get(reference)
        handler = service.handler(prototype)
        expected = prototype.input_schema.name_set
        provided = frozenset(inputs)
        if provided != expected:
            raise InvocationError(
                f"invocation of {prototype.name!r} on {reference!r}: input "
                f"attributes {sorted(provided)} do not match prototype input "
                f"schema {sorted(expected)}"
            )
        obs = self.obs
        key: tuple | None = None
        if self._memo is not None and instant == self._memo_instant:
            try:
                key = (prototype.name, reference, tuple(sorted(inputs.items())))
            except TypeError:
                key = None  # unhashable input value: bypass the memo
            if key is not None:
                cached = self._memo.get(key)
                if cached is not None:
                    self._memo_hits_total.inc()
                    if obs.metrics_on:
                        self._outcome_memo_hit.inc()
                    if obs.tracing_on:
                        obs.tracer.event(
                            "service.invoke",
                            instant,
                            service=reference,
                            prototype=prototype.name,
                            outcome="memo_hit",
                        )
                    return list(cached)
        subs = self.substitutions
        if subs.bindings:
            binding = subs.bindings.get((prototype.name, reference))
            if binding is not None:
                # Durable reroute installed by the ERM sweep: the dead
                # device is never contacted, its health never probed, and
                # the result is memoized under the *original* key (the
                # binding is frozen for the instant, so the §3.2
                # determinism argument carries over unchanged).
                results = self._invoke_binding(binding, prototype, inputs, instant)
                if obs.metrics_on:
                    self._outcome_substituted.inc()
                if obs.tracing_on:
                    obs.tracer.event(
                        "service.invoke",
                        instant,
                        service=reference,
                        prototype=prototype.name,
                        outcome="substituted",
                        via=binding.describe(),
                    )
                if key is not None and self._memo is not None:
                    self._memo[key] = list(results)
                return results
        refused = self.health.check(reference, instant)
        if refused is not None:
            # The policy fails the invocation fast: the device is not
            # contacted and the health state machine does not move.
            reason, retry_at = refused
            self.health.record_fast_failure(reference)
            if obs.metrics_on:
                self._outcome_fast_failed.inc()
            if obs.tracing_on:
                obs.tracer.event(
                    "service.invoke",
                    instant,
                    service=reference,
                    prototype=prototype.name,
                    outcome="fast_failed",
                    reason=reason,
                )
            fallback = self._failover(prototype, reference, inputs, instant, key)
            if fallback is not None:
                return fallback
            raise ServiceUnavailableError(reference, reason, retry_at)
        state_before = self.health.state(reference) if obs.metrics_on else None
        self._invocations_total.inc()
        started = perf_counter()
        try:
            rows = handler(dict(inputs), instant)
        except Exception as exc:
            self.health.record_failure(reference, instant)
            self._invoke_failed(prototype, reference, instant, state_before)
            fallback = self._failover(prototype, reference, inputs, instant, key)
            if fallback is not None:
                return fallback
            raise InvocationError(
                f"invocation of {prototype.name!r} on {reference!r} failed: {exc}"
            ) from exc
        results = []
        for row in rows:
            try:
                results.append(prototype.output_schema.tuple_from_mapping(row))
            except SchemaError as exc:
                self.health.record_failure(reference, instant)
                self._invoke_failed(prototype, reference, instant, state_before)
                fallback = self._failover(prototype, reference, inputs, instant, key)
                if fallback is not None:
                    return fallback
                raise InvocationError(
                    f"invocation of {prototype.name!r} on {reference!r} "
                    f"returned an invalid output tuple {row!r}: {exc}"
                ) from exc
        self._observe_latency(reference, perf_counter() - started)
        self.health.record_success(reference, instant)
        if state_before is not None:
            self._health_transition(reference, state_before)
        if obs.metrics_on:
            self._outcome_success.inc()
        if obs.tracing_on:
            obs.tracer.event(
                "service.invoke",
                instant,
                service=reference,
                prototype=prototype.name,
                outcome="success",
                rows=len(results),
            )
        if key is not None and self._memo is not None:
            self._memo[key] = list(results)  # successes only
        return results

    # -- substitution (semantic rebinding) -----------------------------------

    def _invoke_binding(
        self,
        plan: ResolvedBinding,
        prototype: Prototype,
        inputs: Mapping[str, object],
        instant: int,
    ) -> list[tuple]:
        """Execute a substitution plan in place of ``(prototype, reference)``.

        Nested :meth:`invoke` calls do all the usual work — gates, health
        bookkeeping, memoization — against the *substitute* references, so
        a substitute that itself fails is observed and re-ranked by the
        next ERM sweep.  Routing through a service that is itself bound
        recurses; ``max_chain`` bounds the depth (cycle guard of last
        resort — the ERM refuses to install cyclic bindings up front).
        """
        if self._chain_depth >= self.substitutions.policy.max_chain:
            raise InvocationError(
                f"substitution chain for {prototype.name!r} on "
                f"{plan.reference!r} exceeded max_chain="
                f"{self.substitutions.policy.max_chain}"
            )
        self._chain_depth += 1
        try:
            if plan.rule.kind == "equivalent_to":
                _, target = plan.targets[0]
                return self.invoke(prototype, target, inputs, instant)
            if plan.rule.kind == "specializes":
                via, target = plan.targets[0]
                narrowed = {name: inputs[name] for name in via.input_names}
                rows = self.invoke(via, target, narrowed, instant)
                projection = plan.projection or ()
                return [tuple(row[i] for i in projection) for row in rows]
            # composed_of: thread an attribute environment through the steps
            # with Cartesian semantics over multi-row step outputs.
            envs: list[dict[str, object]] = [dict(inputs)]
            for step_proto, target in plan.targets:
                step_names = step_proto.input_schema.names
                out_names = step_proto.output_schema.names
                merged: list[dict[str, object]] = []
                for env in envs:
                    step_inputs = {name: env[name] for name in step_names}
                    for row in self.invoke(step_proto, target, step_inputs, instant):
                        extended = dict(env)
                        extended.update(zip(out_names, row))
                        merged.append(extended)
                envs = merged
            names = prototype.output_schema.names
            return [tuple(env[name] for name in names) for env in envs]
        finally:
            self._chain_depth -= 1

    def _failover(
        self,
        prototype: Prototype,
        reference: str,
        inputs: Mapping[str, object],
        instant: int,
        key: tuple | None,
    ) -> list[tuple] | None:
        """Answer a failed invocation from the pre-scored failover table.

        The table is computed once per tick by the ERM sweep from
        strictly-earlier health stamps, so the plan order tried here is
        identical across engines and invocation orders — this is what
        serves the crash instant itself with zero missed ticks.  Returns
        None when no plan exists or every plan also failed (the original
        error propagates).
        """
        subs = self.substitutions
        if not subs.failover or not subs.policy.failover:
            return None
        plans = subs.failover.get((prototype.name, reference))
        if not plans:
            return None
        obs = self.obs
        for plan in plans:
            try:
                results = self._invoke_binding(plan, prototype, inputs, instant)
            except ServiceError:
                continue
            self._failovers_total.inc()
            if obs.tracing_on:
                obs.tracer.event(
                    "substitution.failover",
                    instant,
                    service=reference,
                    prototype=prototype.name,
                    via=plan.describe(),
                )
            if key is not None and self._memo is not None:
                self._memo[key] = list(results)
            return results
        return None

    def _observe_latency(self, reference: str, seconds: float) -> None:
        ewma = self._latency.get(reference)
        if ewma is None:
            ewma = self._latency[reference] = Ewma()
        ewma.observe(seconds)

    def latency_decile(self, reference: str) -> int:
        """Coarse latency bucket (0-10) of ``reference``'s EWMA relative to
        the slowest observed service — the optional ``latency_aware``
        scoring term.  Coarse on purpose: scores must be stable under the
        small run-to-run jitter of wall-clock timings."""
        ewma = self._latency.get(reference)
        if ewma is None or not ewma.count:
            return 0
        slowest = max(e.value for e in self._latency.values())
        if slowest <= 0:
            return 0
        return min(10, int(10 * ewma.value / slowest))

    def latency_snapshot(self) -> dict[str, float]:
        """Reference → latency EWMA seconds (diagnostics; not compared by
        the differential suites)."""
        return {
            reference: ewma.value
            for reference, ewma in sorted(self._latency.items())
        }

    # -- invocation observability helpers ------------------------------------

    def _health_transition(self, reference: str, before: HealthState) -> None:
        after = self.health.state(reference)
        if after is not before:
            self.obs.metrics.counter(
                "serena_service_health_transitions_total",
                "Service health state changes seen at invocation time",
                from_state=before.value,
                to_state=after.value,
            ).inc()

    def _invoke_failed(
        self,
        prototype: Prototype,
        reference: str,
        instant: int,
        state_before: HealthState | None,
    ) -> None:
        obs = self.obs
        if state_before is not None:
            self._health_transition(reference, state_before)
        if obs.metrics_on:
            self._outcome_failed.inc()
        if obs.tracing_on:
            obs.tracer.event(
                "service.invoke",
                instant,
                service=reference,
                prototype=prototype.name,
                outcome="failed",
            )
