"""Data-model substrate: relational pervasive environments (Section 2).

Public names::

    DataType, Attribute, RelationSchema, ExtendedRelationSchema,
    XRelation, Prototype, Service, ServiceRegistry, BindingPattern,
    PervasiveEnvironment
"""

from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.environment import PervasiveEnvironment
from repro.model.prototypes import Prototype
from repro.model.relation import XRelation
from repro.model.schema import RelationSchema
from repro.model.services import MethodHandler, Service, ServiceRegistry
from repro.model.types import DataType, coerce_value, validate_value
from repro.model.xschema import ExtendedRelationSchema

__all__ = [
    "Attribute",
    "BindingPattern",
    "DataType",
    "ExtendedRelationSchema",
    "MethodHandler",
    "PervasiveEnvironment",
    "Prototype",
    "RelationSchema",
    "Service",
    "ServiceRegistry",
    "XRelation",
    "coerce_value",
    "validate_value",
]
