"""Data-model substrate: relational pervasive environments (Section 2).

Public names::

    DataType, Attribute, RelationSchema, ExtendedRelationSchema,
    XRelation, Prototype, Service, ServiceRegistry, BindingPattern,
    PervasiveEnvironment, InvocationPolicy, HealthTracker, HealthState
"""

from repro.model.attributes import Attribute
from repro.model.binding import BindingPattern
from repro.model.environment import PervasiveEnvironment
from repro.model.invocation_policy import (
    PERMISSIVE_POLICY,
    HealthState,
    HealthTracker,
    InvocationPolicy,
    ServiceHealth,
)
from repro.model.prototypes import Prototype
from repro.model.relation import XRelation
from repro.model.schema import RelationSchema
from repro.model.services import MethodHandler, Service, ServiceRegistry
from repro.model.types import DataType, coerce_value, validate_value
from repro.model.xschema import ExtendedRelationSchema

__all__ = [
    "Attribute",
    "BindingPattern",
    "DataType",
    "ExtendedRelationSchema",
    "HealthState",
    "HealthTracker",
    "InvocationPolicy",
    "MethodHandler",
    "PERMISSIVE_POLICY",
    "PervasiveEnvironment",
    "Prototype",
    "RelationSchema",
    "Service",
    "ServiceHealth",
    "ServiceRegistry",
    "XRelation",
    "coerce_value",
    "validate_value",
]
